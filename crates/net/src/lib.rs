//! `koko-net` — deterministic, zero-dependency readiness polling for the
//! KOKO serving layer, in the spirit of `koko-par`: one small primitive,
//! `std`-only, no crates.io dependencies.
//!
//! The serving event loop needs exactly one capability the standard
//! library does not expose: *sleep until any of these sockets is readable
//! or writable, and tell me which*. This crate provides that as
//! [`Poller`] — backed by `epoll(7)` on Linux and portable `poll(2)` on
//! other unix platforms — plus a [`Waker`] (a self-pipe) so other threads
//! can interrupt a sleeping poll.
//!
//! The syscall bindings are declared locally with `extern "C"`; every
//! unix Rust program already links libc, so this adds no dependency. The
//! API is deliberately tiny and level-triggered:
//!
//! * [`Poller::register`] / [`Poller::modify`] / [`Poller::deregister`]
//!   associate a file descriptor with a caller-chosen `token` and an
//!   [`Interest`] (readable and/or writable).
//! * [`Poller::poll`] blocks up to a timeout and appends [`Event`]s —
//!   `(token, readable, writable, hangup)` tuples — to a caller buffer.
//! * [`Waker::wake`] makes the current (or next) `poll` return
//!   immediately, surfacing an event on the waker's own token.
//!
//! Level-triggered means a socket that still has unread input (or free
//! write space while write interest is registered) keeps reporting ready
//! — the loop can process a bounded amount per wakeup without losing
//! edges, which keeps one greedy connection from starving the rest.

#![deny(missing_docs)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness states a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has data to read (or a peer hangup to observe).
    pub readable: bool,
    /// Wake when the fd can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification from [`Poller::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// The fd is readable (includes EOF — a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd errored; the fd should be drained and
    /// closed. Reported even when only read interest was registered.
    pub hangup: bool,
}

// ---------------------------------------------------------------------------
// Raw syscall bindings (libc is always linked on unix targets).
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::os::fd::RawFd;

    extern "C" {
        pub fn close(fd: RawFd) -> i32;
        pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
        pub fn pipe(fds: *mut RawFd) -> i32;
        pub fn fcntl(fd: RawFd, cmd: i32, arg: i32) -> i32;
    }

    #[cfg(not(target_os = "linux"))]
    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }

    /// `struct pollfd` — identical layout on every unix.
    #[cfg(not(target_os = "linux"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(not(target_os = "linux"))]
    pub const POLLIN: i16 = 0x001;
    #[cfg(not(target_os = "linux"))]
    pub const POLLOUT: i16 = 0x004;
    #[cfg(not(target_os = "linux"))]
    pub const POLLERR: i16 = 0x008;
    #[cfg(not(target_os = "linux"))]
    pub const POLLHUP: i16 = 0x010;

    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    pub const O_NONBLOCK: i32 = 0o4000;

    /// Make `fd` nonblocking (used for the waker pipe; sockets go through
    /// `TcpStream::set_nonblocking`).
    pub fn set_nonblocking(fd: RawFd) -> std::io::Result<()> {
        // SAFETY: plain fcntl on an owned fd.
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 {
                return Err(std::io::Error::last_os_error());
            }
            if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                return Err(std::io::Error::last_os_error());
            }
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    use std::os::fd::RawFd;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> RawFd;
        pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(
            epfd: RawFd,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout: i32,
        ) -> i32;
    }

    /// `struct epoll_event`. The kernel declares it packed on x86, so the
    /// layout attribute must match the architecture.
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
}

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

/// A readiness poller: register fds with tokens, then [`Poller::poll`]
/// for events. Level-triggered; not `Sync` — exactly one thread (the
/// reactor) drives it, which is the serving architecture's contract.
pub struct Poller {
    backend: Backend,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    /// Portable fallback: the registration table is kept in user space
    /// and rebuilt into a `pollfd` array per call. O(n) per poll, which
    /// is fine for the scales the fallback serves (non-Linux dev boxes).
    #[cfg(not(target_os = "linux"))]
    Poll {
        slots: Vec<(RawFd, usize, Interest)>,
    },
}

impl Poller {
    /// Create a poller (epoll instance on Linux).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            // SAFETY: epoll_create1 allocates a new fd; checked below.
            let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                backend: Backend::Epoll { epfd },
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Poller {
                backend: Backend::Poll { slots: Vec::new() },
            })
        }
    }

    /// Start watching `fd` under `token`. One registration per fd; the
    /// token comes back verbatim in every [`Event`].
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_ADD, fd, token, interest)
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Poll { slots } => {
                if slots.iter().any(|(f, _, _)| *f == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                slots.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Change the interest (and/or token) of an already-registered fd.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_MOD, fd, token, interest)
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Poll { slots } => {
                for slot in slots.iter_mut() {
                    if slot.0 == fd {
                        *slot = (fd, token, interest);
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    /// Stop watching `fd`. Closing an fd also removes it from an epoll
    /// set, but deregistering explicitly keeps the fallback table exact.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_DEL, fd, 0, Interest::READ)
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Poll { slots } => {
                slots.retain(|(f, _, _)| *f != fd);
                Ok(())
            }
        }
    }

    /// Wait up to `timeout` (`None` = forever) for readiness, appending
    /// events to `events` (cleared first). Returns the number of events.
    /// A timeout with nothing ready returns `Ok(0)`; EINTR retries.
    pub fn poll(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0 < t < 1ms timeout does not spin.
            Some(t) => i32::try_from(t.as_millis().max(if t.is_zero() { 0 } else { 1 }))
                .unwrap_or(i32::MAX),
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut buf = [epoll_sys::EpollEvent { events: 0, data: 0 }; 128];
                let n = loop {
                    // SAFETY: buf outlives the call; maxevents matches.
                    let n = unsafe {
                        epoll_sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &buf[..n] {
                    let bits = ev.events;
                    events.push(Event {
                        token: ev.data as usize,
                        readable: bits & (epoll_sys::EPOLLIN | epoll_sys::EPOLLRDHUP) != 0,
                        writable: bits & epoll_sys::EPOLLOUT != 0,
                        hangup: bits & (epoll_sys::EPOLLHUP | epoll_sys::EPOLLERR) != 0,
                    });
                }
                Ok(events.len())
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Poll { slots } => {
                let mut fds: Vec<sys::PollFd> = slots
                    .iter()
                    .map(|(fd, _, interest)| sys::PollFd {
                        fd: *fd,
                        events: (if interest.readable { sys::POLLIN } else { 0 })
                            | (if interest.writable { sys::POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                let n = loop {
                    // SAFETY: fds is a live, correctly-sized pollfd array.
                    let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n > 0 {
                    for (pfd, (_, token, _)) in fds.iter().zip(slots.iter()) {
                        if pfd.revents != 0 {
                            events.push(Event {
                                token: *token,
                                readable: pfd.revents & sys::POLLIN != 0,
                                writable: pfd.revents & sys::POLLOUT != 0,
                                hangup: pfd.revents & (sys::POLLHUP | sys::POLLERR) != 0,
                            });
                        }
                    }
                }
                Ok(events.len())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        {
            let Backend::Epoll { epfd } = self.backend;
            // SAFETY: epfd is owned by this poller.
            unsafe { sys::close(epfd) };
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
    let mut ev = epoll_sys::EpollEvent {
        events: (if interest.readable {
            epoll_sys::EPOLLIN | epoll_sys::EPOLLRDHUP
        } else {
            0
        }) | (if interest.writable {
            epoll_sys::EPOLLOUT
        } else {
            0
        }),
        data: token as u64,
    };
    // SAFETY: ev is live for the call; DEL ignores it on modern kernels
    // but a valid pointer is passed anyway (required before Linux 2.6.9).
    let rc = unsafe { epoll_sys::epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// Wakes a sleeping [`Poller`] from another thread: a nonblocking
/// self-pipe whose read end is registered with the poller. `wake()`
/// writes one byte; the reactor sees a readable event on the waker's
/// token and calls [`Waker::drain`].
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// The fds are plain ints used with atomic syscalls; writing one byte from
// several threads concurrently is safe (pipe writes ≤ PIPE_BUF are atomic).
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Create the pipe pair (both ends nonblocking and process-private).
    pub fn new() -> io::Result<Waker> {
        let mut fds: [RawFd; 2] = [0; 2];
        // SAFETY: pipe fills the 2-element array; checked below.
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let (read_fd, write_fd) = (fds[0], fds[1]);
        sys::set_nonblocking(read_fd)?;
        sys::set_nonblocking(write_fd)?;
        Ok(Waker { read_fd, write_fd })
    }

    /// The fd to register with the poller under a reserved token
    /// ([`Interest::READ`]).
    pub fn poll_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Interrupt the poller. Nonblocking: if the pipe is already full the
    /// reactor has wakeups pending anyway, so a short write is success.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: one-byte write to an owned fd; failure (EAGAIN on a
        // full pipe) means a wakeup is already pending.
        unsafe { sys::write(self.write_fd, byte.as_ptr(), 1) };
    }

    /// Drain pending wakeup bytes (call when the waker token fires, or
    /// the level-triggered poller will keep reporting it readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        // SAFETY: reads into a stack buffer until the nonblocking pipe
        // is empty.
        while unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by this waker.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_times_out_empty() {
        let mut poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let t = std::time::Instant::now();
        let n = poller
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(
            t.elapsed() >= Duration::from_millis(10),
            "{:?}",
            t.elapsed()
        );
    }

    #[test]
    fn tcp_readability_and_tokens() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server_side.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        // Nothing to read yet.
        let mut events = Vec::new();
        assert_eq!(
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        client.write_all(b"hello").unwrap();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: still readable until drained.
        let n = poller
            .poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 1, "level-triggered readiness persists");

        let mut buf = [0u8; 16];
        let mut stream_ref = &server_side;
        assert_eq!(stream_ref.read(&mut buf).unwrap(), 5);
        assert_eq!(
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0,
            "drained socket is quiet"
        );
    }

    #[test]
    fn write_interest_and_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let _server_side = listener.accept().unwrap();

        let mut poller = Poller::new().unwrap();
        // An idle connected socket is writable immediately.
        poller
            .register(client.as_raw_fd(), 3, Interest::WRITE)
            .unwrap();
        let mut events = Vec::new();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable && !events[0].readable);

        // Drop write interest: silence.
        poller
            .modify(client.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        assert_eq!(
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        poller.deregister(client.as_raw_fd()).unwrap();
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server_side.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        drop(client); // full close → readable EOF (and usually hangup)
        let mut events = Vec::new();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable || events[0].hangup);
    }

    #[test]
    fn waker_wakes_across_threads() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        const WAKER_TOKEN: usize = usize::MAX;
        poller
            .register(waker.poll_fd(), WAKER_TOKEN, Interest::READ)
            .unwrap();

        let other = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            other.wake();
        });
        let mut events = Vec::new();
        let t = std::time::Instant::now();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, WAKER_TOKEN);
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "woke early, not at timeout"
        );
        waker.drain();
        // Drained: quiet again.
        assert_eq!(
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        handle.join().unwrap();

        // Many wakes collapse into (at least) one event, never an error.
        for _ in 0..100_000 {
            waker.wake();
        }
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        waker.drain();
    }

    #[test]
    fn listener_accept_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 0, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        assert_eq!(
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        let _client = TcpStream::connect(addr).unwrap();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1, "pending accept reported as readable");
        assert!(events[0].readable);
    }
}
