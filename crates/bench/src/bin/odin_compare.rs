//! §6.3's Odin comparison: the three scale-up queries translated to an
//! Odin-style cascade (no index, full-corpus scans per rule per pass,
//! iterated to fixpoint) vs KOKO.
//!
//! Expected shape (paper, 5000 documents): Odin 40× slower on the highly
//! selective Chocolate query, 23× on Title, and only ≈1.3× on DateOfBirth —
//! an index can't help a query that touches almost every document.
//!
//! ```text
//! cargo run --release -p koko-bench --bin odin_compare [-- --articles=400]
//! ```

use koko_baselines::odin::translations;
use koko_bench::{arg_usize, header, row, secs};
use koko_core::Koko;
use koko_lang::queries;
use koko_nlp::Pipeline;
use std::time::Instant;

fn main() {
    let n = arg_usize("articles", 400);
    let texts = koko_corpus::wiki::generate(n, 4242);
    let corpus = Pipeline::new().parse_corpus(&texts);
    let koko = Koko::from_corpus(corpus.clone());

    println!("\n## Odin vs KOKO ({n} articles)\n");
    header(&[
        "query",
        "KOKO (s)",
        "Odin (s)",
        "Odin slowdown",
        "KOKO rows",
        "Odin matches",
    ]);
    for (name, qtext, odin) in [
        ("Chocolate", queries::CHOCOLATE, translations::chocolate()),
        ("Title", queries::TITLE, translations::title()),
        (
            "DateOfBirth",
            queries::DATE_OF_BIRTH,
            translations::date_of_birth(),
        ),
    ] {
        let t = Instant::now();
        let out = koko.query(qtext).expect("query runs");
        let koko_time = t.elapsed();

        let t = Instant::now();
        let matches = odin.run(&corpus);
        let odin_time = t.elapsed();

        row(&[
            name.to_string(),
            secs(koko_time),
            secs(odin_time),
            format!(
                "{:.1}x",
                odin_time.as_secs_f64() / koko_time.as_secs_f64().max(1e-9)
            ),
            out.rows.len().to_string(),
            matches.len().to_string(),
        ]);
    }
    println!("\n(paper: 40x / 23x / 1.3x slower — the gap tracks query selectivity)");
}
