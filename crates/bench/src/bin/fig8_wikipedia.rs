//! Figure 8: index performance on the Wikipedia-like corpus — the same
//! four-scheme comparison as Figure 7 on longer, deeper articles, where
//! INVERTED's unfiltered intermediate results blow up fastest.
//!
//! ```text
//! cargo run --release -p koko-bench --bin fig8_wikipedia [-- --scale=1]
//! ```

use koko_bench::{arg_usize, run_index_experiment};
use koko_nlp::Pipeline;

fn main() {
    let scale = arg_usize("scale", 1);
    let sizes: Vec<usize> = [50, 100, 250, 500].iter().map(|s| s * scale).collect();
    let pipeline = Pipeline::new();
    let corpora: Vec<(String, koko_nlp::Corpus)> = sizes
        .iter()
        .map(|&n| {
            let texts = koko_corpus::wiki::generate(n, 1234);
            (format!("{n} articles"), pipeline.parse_corpus(&texts))
        })
        .collect();
    run_index_experiment("Figure 8 (Wikipedia)", &corpora, 32);
}
