//! Figure 6: index construction time (a) and index size (b) as the
//! Wikipedia-like corpus grows, for INVERTED, ADVINVERTED, SUBTREE and
//! KOKO. Expected shape: KOKO builds slower than the two inverted schemes
//! (it also builds hierarchy indices) but ≥2× faster than SUBTREE, and
//! KOKO's footprint is the smallest while SUBTREE's is the largest.
//!
//! ```text
//! cargo run --release -p koko-bench --bin fig6_index_build [-- --scale=1]
//! ```

use koko_bench::{arg_usize, header, row, secs};
use koko_index::{AdvInvertedIndex, CandidateIndex, InvertedIndex, KokoIndex, SubtreeIndex};
use koko_nlp::Pipeline;
use std::time::Instant;

fn main() {
    let scale = arg_usize("scale", 1);
    let sizes: Vec<usize> = [50, 100, 250, 500].iter().map(|s| s * scale).collect();
    println!("\n## Figure 6(a): index build time (seconds) vs #articles\n");
    header(&[
        "articles",
        "sentences",
        "tokens",
        "INVERTED",
        "ADVINVERTED",
        "SUBTREE",
        "KOKO",
    ]);
    let mut size_rows = Vec::new();
    for &n in &sizes {
        let texts = koko_corpus::wiki::generate(n, 4242);
        let corpus = Pipeline::new().parse_corpus(&texts);

        let t = Instant::now();
        let inv = InvertedIndex::build(&corpus);
        let t_inv = t.elapsed();
        let t = Instant::now();
        let adv = AdvInvertedIndex::build(&corpus);
        let t_adv = t.elapsed();
        let t = Instant::now();
        let sub = SubtreeIndex::build(&corpus);
        let t_sub = t.elapsed();
        let t = Instant::now();
        let koko = KokoIndex::build(&corpus);
        let t_koko = t.elapsed();

        row(&[
            n.to_string(),
            corpus.num_sentences().to_string(),
            corpus.num_tokens().to_string(),
            secs(t_inv),
            secs(t_adv),
            secs(t_sub),
            secs(t_koko),
        ]);
        size_rows.push((
            n,
            inv.approx_bytes(),
            adv.approx_bytes(),
            sub.approx_bytes(),
            CandidateIndex::approx_bytes(&koko),
            koko.pl_index().compression_ratio(),
        ));
    }
    println!("\n## Figure 6(b): index size (KiB) vs #articles\n");
    header(&[
        "articles",
        "INVERTED",
        "ADVINVERTED",
        "SUBTREE",
        "KOKO",
        "PL-merge",
    ]);
    for (n, inv, adv, sub, koko, merge) in size_rows {
        row(&[
            n.to_string(),
            (inv / 1024).to_string(),
            (adv / 1024).to_string(),
            (sub / 1024).to_string(),
            (koko / 1024).to_string(),
            format!("{:.2}%", 100.0 * merge),
        ]);
    }
    println!("\n(paper: KOKO smallest, SUBTREE largest and ≥2× slower to build; hierarchy merging removes >99% of nodes at scale)");
}
