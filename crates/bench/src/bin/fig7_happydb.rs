//! Figure 7: index performance on the HappyDB-like corpus — lookup time and
//! effectiveness vs corpus size and vs number of extractions, for all four
//! indexing schemes over the 350-query SyntheticTree benchmark.
//!
//! ```text
//! cargo run --release -p koko-bench --bin fig7_happydb [-- --scale=1]
//! ```

use koko_bench::{arg_usize, run_index_experiment};
use koko_nlp::Pipeline;

fn main() {
    let scale = arg_usize("scale", 1);
    let sizes: Vec<usize> = [500, 1000, 2500, 5000].iter().map(|s| s * scale).collect();
    let pipeline = Pipeline::new();
    let corpora: Vec<(String, koko_nlp::Corpus)> = sizes
        .iter()
        .map(|&n| {
            let texts = koko_corpus::happydb::generate(n, 99);
            (format!("{n} moments"), pipeline.parse_corpus(&texts))
        })
        .collect();
    run_index_experiment("Figure 7 (HappyDB)", &corpora, 31);
}
