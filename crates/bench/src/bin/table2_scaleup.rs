//! Table 2: KOKO execution time for the three §6.3 extraction queries
//! (Chocolate — low selectivity, Title — medium, DateOfBirth — high) with
//! growing Wikipedia-like corpora, broken down by stage: Normalize, DPLI,
//! LoadArticle, GSP, extract, satisfying.
//!
//! Expected shape (paper): total time linear in the number of articles;
//! LoadArticle dominates (>50%); Normalize/GSP negligible (<2%); the DPLI
//! share falls as query selectivity rises.
//!
//! ```text
//! cargo run --release -p koko-bench --bin table2_scaleup [-- --scale=1]
//! ```

use koko_bench::{arg_usize, header, row, secs};
use koko_core::Koko;
use koko_lang::queries;
use koko_nlp::Pipeline;

fn main() {
    let scale = arg_usize("scale", 1);
    let sizes: Vec<usize> = [100, 200, 400, 800].iter().map(|s| s * scale).collect();
    let pipeline = Pipeline::new();

    println!("\n## Table 2: KOKO execution time (seconds) by stage\n");
    header(&[
        "query", "articles", "candidates", "Normalize", "DPLI", "LoadArticle", "GSP", "extract",
        "satisfying", "total", "selectivity",
    ]);
    for (qname, qtext) in [
        ("Chocolate (C)", queries::CHOCOLATE),
        ("Title (T)", queries::TITLE),
        ("DateOfBirth (D)", queries::DATE_OF_BIRTH),
    ] {
        for &n in &sizes {
            let texts = koko_corpus::wiki::generate(n, 4242);
            let koko = Koko::from_corpus(pipeline.parse_corpus(&texts));
            let out = koko.query(qtext).expect("scaleup query runs");
            let p = out.profile;
            // Selectivity: articles with ≥1 extraction / articles.
            let mut docs: Vec<u32> = out.rows.iter().map(|r| r.doc).collect();
            docs.sort_unstable();
            docs.dedup();
            row(&[
                qname.to_string(),
                n.to_string(),
                p.candidate_sentences.to_string(),
                secs(p.normalize),
                secs(p.dpli),
                secs(p.load_article),
                secs(p.gsp),
                secs(p.extract),
                secs(p.satisfying),
                secs(p.total()),
                format!("{:.1}%", 100.0 * docs.len() as f64 / n as f64),
            ]);
        }
        println!("|  |  |  |  |  |  |  |  |  |  |  |");
    }
    println!("(paper: linear scale-up; LoadArticle >50% of time; Normalize + GSP <2%)");
}
