//! Table 2: KOKO execution time for the three §6.3 extraction queries
//! (Chocolate — low selectivity, Title — medium, DateOfBirth — high) with
//! growing Wikipedia-like corpora, broken down by stage: Normalize, DPLI,
//! LoadArticle, GSP, extract, satisfying.
//!
//! Expected shape (paper): total time linear in the number of articles;
//! LoadArticle dominates (>50%); Normalize/GSP negligible (<2%); the DPLI
//! share falls as query selectivity rises.
//!
//! On top of the paper's table, this harness measures the sharded parallel
//! engine against the sequential single-shard evaluator — end-to-end
//! ingest (parse + index build) and query wall-clock — and emits a JSON
//! record per corpus size so the perf trajectory can be tracked across
//! commits.
//!
//! It also establishes the persistence numbers for the build-once /
//! query-many workflow: per corpus scale, the cost of saving a snapshot,
//! its `.koko` file size, and the cost of loading it back versus
//! rebuilding from raw text (`build_vs_load` = ingest time / load time).
//!
//! Finally it measures the serve-many layer: an in-process `koko-serve`
//! server over the same snapshot, driven closed-loop by the protocol
//! client — cold (every request evaluates) vs warm (result-cache hits),
//! 1 vs N client threads — reported as queries/second.
//!
//! ```text
//! cargo run --release -p koko-bench --bin table2_scaleup \
//!     [-- --scale=1 --shards=0 --articles=0 --json=table2.json]
//! ```
//!
//! `--shards=0` (default) uses one shard per available core.
//! `--articles=N` replaces the scale ladder with the single corpus size
//! `N` — the CI smoke configuration.

use koko_bench::{arg_usize, header, row, secs};
use koko_core::{EngineOpts, Koko, Order, QueryRequest};
use koko_lang::queries;
use koko_nlp::Pipeline;
use std::time::{Duration, Instant};

struct ScalePoint {
    articles: usize,
    shards: usize,
    ingest_seq: Duration,
    ingest_par: Duration,
    query_seq: Duration,
    query_par: Duration,
    save: Duration,
    load: Duration,
    /// O(sections) mmap open of the same file (`Snapshot::open_mmap`,
    /// the default): header + section-table validation only, no shard
    /// decode. `load` above is the eager open it replaces.
    cold_open_mmap: Duration,
    /// First query after the eager open — every shard already decoded.
    first_query_cold_eager: Duration,
    /// First query after the mmap open — pays the lazy materialization
    /// of the shards the query touches.
    first_query_cold_mmap: Duration,
    file_bytes: u64,
    served_clients: usize,
    served_cold_qps: f64,
    served_warm_1_qps: f64,
    served_warm_n_qps: f64,
    /// Open-loop (fixed-arrival-rate) section: the offered rate…
    served_open_rate_rps: f64,
    /// …the rate actually achieved…
    served_open_achieved_rps: f64,
    /// …and the latency distribution measured from the arrival schedule
    /// (coordinated-omission-free), in milliseconds.
    served_open_p50_ms: f64,
    served_open_p95_ms: f64,
    served_open_p99_ms: f64,
    /// Cluster serving: the same corpus split across this many workers
    /// behind a coordinator (`docs/CLUSTER.md`), driven by the same
    /// query mix over real sockets.
    cluster_workers: usize,
    /// Warm closed-loop QPS through the coordinator — fan-out, merge and
    /// the extra network hop included.
    cluster_qps: f64,
    /// Open-loop p99 through the coordinator at ~60% of the warm rate,
    /// measured from the arrival schedule like `served_open_p99_ms`.
    cluster_p99_ms: f64,
    /// Incremental ingest: documents added via `add_texts` in one wave.
    add_docs: usize,
    /// Wall-clock of that `add_texts` wave.
    add: Duration,
    /// Wall-clock of the full rebuild the add replaces (parse + index the
    /// whole corpus including the new documents).
    rebuild: Duration,
    /// 3-query wall-clock with the delta shard still live.
    query_delta: Duration,
    /// 3-query wall-clock after `compact()`.
    query_compacted: Duration,
    /// 3-query wall-clock, unlimited, warm compiled cache (the fair
    /// baseline for the top-k comparison below).
    query_full_warm: Duration,
    /// 3-query wall-clock with `QueryRequest::limit(10)` — top-k early
    /// termination engaged.
    query_limit10: Duration,
    /// Candidate documents the limit(10) runs never loaded/extracted
    /// (summed over the three queries; proof the speedup is skipped work,
    /// not post-filtering).
    limit10_docs_skipped: usize,
    /// 3-query wall-clock with `ScoreDesc` + `limit(10)` — bounded-heap
    /// ranked top-k driven by WAND-style per-shard score bounds.
    query_scoredesc10: Duration,
    /// Candidate documents the ranked runs skipped because their shard's
    /// score bound could not beat the top-k heap floor (summed over the
    /// three queries; proof the pruning engaged).
    scoredesc_bound_skipped: usize,
    /// Block-max workload: unlimited `ScoreDesc` wall-clock of the cafe
    /// extraction over the block-clustered corpus (the force-materialized
    /// ranked baseline).
    query_blockmax_full: Duration,
    /// Same query with `limit(10)` on the engine whose shards carry block
    /// statistics — per-block bounds prune inside the shard.
    query_blockmax10: Duration,
    /// Same request against a copy of the snapshot with its `SEC_BLOCKS`
    /// sections stripped: shard-wide bounds only (the PR 6 pruning).
    query_blockmax10_shardonly: Duration,
    /// Candidate documents the block bounds skipped (the shard bound
    /// skipped none on this workload — its vocabulary is feasible).
    blockmax_block_skipped: usize,
    /// Candidate sentences the galloping DPLI stream yielded during the
    /// block-max `limit(10)` run.
    candidates_streamed: usize,
    /// Time in the DPLI stage (stream construction + galloping
    /// intersection pulls) during that run.
    dpli_intersect: Duration,
}

impl ScalePoint {
    fn json(&self) -> String {
        format!(
            "{{\"articles\":{},\"shards\":{},\"ingest_seq_s\":{:.6},\"ingest_par_s\":{:.6},\"query_seq_s\":{:.6},\"query_par_s\":{:.6},\"ingest_speedup\":{:.3},\"query_speedup\":{:.3},\"e2e_speedup\":{:.3},\"save_s\":{:.6},\"load_s\":{:.6},\"cold_open_eager_s\":{:.6},\"cold_open_mmap_s\":{:.6},\"mmap_open_speedup\":{:.3},\"first_query_cold_eager_s\":{:.6},\"first_query_cold_mmap_s\":{:.6},\"file_bytes\":{},\"build_vs_load\":{:.3},\"served_clients\":{},\"served_cold_qps\":{:.1},\"served_warm_1_qps\":{:.1},\"served_warm_n_qps\":{:.1},\"served_open_rate_rps\":{:.1},\"served_open_achieved_rps\":{:.1},\"served_open_p50_ms\":{:.3},\"served_open_p95_ms\":{:.3},\"served_open_p99_ms\":{:.3},\"cluster_workers\":{},\"cluster_qps\":{:.1},\"cluster_p99_ms\":{:.3},\"add_docs\":{},\"add_s\":{:.6},\"rebuild_s\":{:.6},\"add_vs_rebuild\":{:.3},\"add_docs_per_s\":{:.1},\"rebuild_docs_per_s\":{:.1},\"query_delta_s\":{:.6},\"query_compacted_s\":{:.6},\"query_full_warm_s\":{:.6},\"query_limit10_s\":{:.6},\"topk_speedup\":{:.3},\"limit10_docs_skipped\":{},\"query_scoredesc_limit10_s\":{:.6},\"scoredesc_topk_speedup\":{:.3},\"bound_skipped_docs\":{},\"query_blockmax_full_s\":{:.6},\"query_blockmax_limit10_s\":{:.6},\"query_blockmax_shardonly_s\":{:.6},\"blockmax_topk_speedup\":{:.3},\"blockmax_shardonly_topk_speedup\":{:.3},\"block_bound_skipped_docs\":{},\"candidates_streamed\":{},\"dpli_intersect_s\":{:.6}}}",
            self.articles,
            self.shards,
            self.ingest_seq.as_secs_f64(),
            self.ingest_par.as_secs_f64(),
            self.query_seq.as_secs_f64(),
            self.query_par.as_secs_f64(),
            ratio(self.ingest_seq, self.ingest_par),
            ratio(self.query_seq, self.query_par),
            ratio(
                self.ingest_seq + self.query_seq,
                self.ingest_par + self.query_par
            ),
            self.save.as_secs_f64(),
            self.load.as_secs_f64(),
            self.load.as_secs_f64(),
            self.cold_open_mmap.as_secs_f64(),
            ratio(self.load, self.cold_open_mmap),
            self.first_query_cold_eager.as_secs_f64(),
            self.first_query_cold_mmap.as_secs_f64(),
            self.file_bytes,
            ratio(self.ingest_par, self.load),
            self.served_clients,
            self.served_cold_qps,
            self.served_warm_1_qps,
            self.served_warm_n_qps,
            self.served_open_rate_rps,
            self.served_open_achieved_rps,
            self.served_open_p50_ms,
            self.served_open_p95_ms,
            self.served_open_p99_ms,
            self.cluster_workers,
            self.cluster_qps,
            self.cluster_p99_ms,
            self.add_docs,
            self.add.as_secs_f64(),
            self.rebuild.as_secs_f64(),
            ratio(self.rebuild, self.add),
            self.add_docs as f64 / self.add.as_secs_f64().max(1e-9),
            (self.articles + self.add_docs) as f64 / self.rebuild.as_secs_f64().max(1e-9),
            self.query_delta.as_secs_f64(),
            self.query_compacted.as_secs_f64(),
            self.query_full_warm.as_secs_f64(),
            self.query_limit10.as_secs_f64(),
            ratio(self.query_full_warm, self.query_limit10),
            self.limit10_docs_skipped,
            self.query_scoredesc10.as_secs_f64(),
            ratio(self.query_full_warm, self.query_scoredesc10),
            self.scoredesc_bound_skipped,
            self.query_blockmax_full.as_secs_f64(),
            self.query_blockmax10.as_secs_f64(),
            self.query_blockmax10_shardonly.as_secs_f64(),
            ratio(self.query_blockmax_full, self.query_blockmax10),
            ratio(self.query_blockmax_full, self.query_blockmax10_shardonly),
            self.blockmax_block_skipped,
            self.candidates_streamed,
            self.dpli_intersect.as_secs_f64(),
        )
    }
}

fn ratio(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-9)
}

/// Copy the snapshot at `src` to `dst` with every `BLOCKS` section
/// dropped — the shape a pre-block-stats writer produced, so the open
/// falls back to shard-wide bounds only.
fn strip_block_sections(src: &std::path::Path, dst: &std::path::Path) {
    use koko_storage::{write_sectioned_file, SectionWriter, SectionedFile, SEC_BLOCKS};
    let sf = SectionedFile::open_mmap(src).expect("open block-max snapshot");
    let entries = sf.table().entries.clone();
    let mut w = SectionWriter::new();
    for e in &entries {
        if e.kind == SEC_BLOCKS {
            continue;
        }
        let bytes = sf.section_bytes(e).expect("section bytes");
        w.add_section(e.kind, e.index, bytes.as_slice());
    }
    write_sectioned_file(dst, &w.finish()).expect("write stripped snapshot");
}

/// Measure served throughput over one engine: cold (first pass fills the
/// caches), then warm with 1 client, then warm with `clients` concurrent
/// client threads. Returns `(cold_qps, warm_1_qps, warm_n_qps)`.
fn serve_section(
    koko: Koko,
    queries: &[&str],
    clients: usize,
) -> (f64, f64, f64, koko_serve::OpenLoadReport) {
    const WARM_REPEAT: usize = 50;
    let queries: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
    // Workers auto-size to the cores (0 = auto): the event-loop server
    // multiplexes any number of connections over one reactor, so the pool
    // tracks the hardware, not the client count.
    let server = koko_serve::Server::bind(koko, "127.0.0.1:0", 0).expect("bind server");
    let addr = server.local_addr().to_string();

    // Cold: every query evaluates (and fills both caches).
    let cold = koko_serve::run_load(&addr, &queries, 1, 1, true).expect("cold load");
    assert_eq!(cold.errors, 0, "cold responses all ok");
    // Warm, 1 client: repeat traffic served from the result cache.
    let warm1 = koko_serve::run_load(&addr, &queries, 1, WARM_REPEAT, true).expect("warm load");
    assert_eq!(warm1.errors, 0, "warm responses all ok");
    // Warm, N clients: the worker pool fans out.
    let warmn =
        koko_serve::run_load(&addr, &queries, clients, WARM_REPEAT, true).expect("warm N load");
    assert_eq!(warmn.errors, 0, "warm N responses all ok");

    // Open loop: fixed arrivals at ~60% of the warm closed-loop rate, so
    // the server runs loaded-but-unsaturated and the p50/p95/p99 measure
    // latency under offered load rather than queueing collapse. Latency
    // is taken from the arrival schedule (coordinated-omission-free).
    let open_rate = (warm1.qps * 0.6).max(50.0);
    let open_requests = ((open_rate * 0.5) as usize).clamp(100, 4000);
    let open = koko_serve::run_load_open(
        &addr,
        &queries,
        clients,
        open_requests,
        open_rate,
        true,
        None,
        None,
    )
    .expect("open loop load");
    assert_eq!(open.errors, 0, "open-loop responses all ok");

    server.shutdown();
    (cold.qps, warm1.qps, warmn.qps, open)
}

/// Serve the same corpus as a 2-worker cluster behind a coordinator
/// (`docs/CLUSTER.md`): contiguous document halves, sentence-id bases
/// from the worker snapshots, fan-out + merge on every request. Returns
/// `(workers, warm closed-loop QPS, open-loop p99 ms)` so the cost of
/// the extra hop and the merge shows up next to the single-node numbers.
fn cluster_section(
    texts: &[String],
    opts: EngineOpts,
    queries: &[&str],
    clients: usize,
) -> (usize, f64, f64) {
    use koko_cluster::{Coordinator, CoordinatorConfig, Mode, ShardMap, WorkerEntry};
    const WARM_REPEAT: usize = 50;
    let queries: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
    let mid = texts.len() / 2;
    let e0 = Koko::from_texts_with_opts(&texts[..mid], opts);
    let e1 = Koko::from_texts_with_opts(&texts[mid..], opts);
    // Sentence ids are corpus-global: the tail worker's rows are remapped
    // by the head worker's sentence count (see ShardMap::sid_base).
    let sid_split = e0.snapshot().num_sentences() as u32;
    let w0 = koko_serve::Server::bind(e0, "127.0.0.1:0", 0).expect("bind worker 0");
    let w1 = koko_serve::Server::bind(e1, "127.0.0.1:0", 0).expect("bind worker 1");
    let map = ShardMap {
        version: 1,
        epoch: 0,
        mode: Mode::Partial,
        workers: vec![
            WorkerEntry {
                name: "w0".into(),
                addr: w0.local_addr().to_string(),
                replicas: vec![],
                doc_base: 0,
                docs: mid as u32,
                sid_base: 0,
                snapshot: None,
            },
            WorkerEntry {
                name: "w1".into(),
                addr: w1.local_addr().to_string(),
                replicas: vec![],
                doc_base: mid as u32,
                docs: (texts.len() - mid) as u32,
                sid_base: sid_split,
                snapshot: None,
            },
        ],
    };
    let workers = map.workers.len();
    let coordinator =
        Coordinator::bind(map, "127.0.0.1:0", CoordinatorConfig::default()).expect("bind frontend");
    let addr = coordinator.local_addr().to_string();

    // Cold pass fills the workers' caches, then the measured warm run.
    let cold = koko_serve::run_load(&addr, &queries, 1, 1, true).expect("cold cluster load");
    assert_eq!(cold.errors, 0, "cold cluster responses all ok");
    let warm =
        koko_serve::run_load(&addr, &queries, clients, WARM_REPEAT, true).expect("warm cluster");
    assert_eq!(warm.errors, 0, "warm cluster responses all ok");

    // Open loop at ~60% of the warm rate, as in `serve_section`.
    let open_rate = (warm.qps * 0.6).max(50.0);
    let open_requests = ((open_rate * 0.5) as usize).clamp(100, 4000);
    let open = koko_serve::run_load_open(
        &addr,
        &queries,
        clients,
        open_requests,
        open_rate,
        true,
        None,
        None,
    )
    .expect("cluster open loop");
    assert_eq!(open.errors, 0, "cluster open-loop responses all ok");

    coordinator.shutdown();
    w0.shutdown();
    w1.shutdown();
    (workers, warm.qps, open.p99.as_secs_f64() * 1e3)
}

fn main() {
    let scale = arg_usize("scale", 1);
    let shards = arg_usize("shards", 0);
    let articles = arg_usize("articles", 0);
    let json_path = std::env::args().find_map(|a| a.strip_prefix("--json=").map(str::to_string));
    let sizes: Vec<usize> = if articles > 0 {
        vec![articles]
    } else {
        [100, 200, 400, 800].iter().map(|s| s * scale).collect()
    };
    let pipeline = Pipeline::new();

    let seq_opts = EngineOpts {
        num_shards: 1,
        parallel: false,
        ..EngineOpts::default()
    };
    let par_opts = EngineOpts {
        num_shards: shards,
        parallel: true,
        ..EngineOpts::default()
    };

    // ---- The paper's Table 2, per-stage breakdown (sequential engine) ----
    println!("\n## Table 2: KOKO execution time (seconds) by stage\n");
    header(&[
        "query",
        "articles",
        "candidates",
        "Normalize",
        "DPLI",
        "LoadArticle",
        "GSP",
        "extract",
        "satisfying",
        "total",
        "selectivity",
    ]);
    for (qname, qtext) in [
        ("Chocolate (C)", queries::CHOCOLATE),
        ("Title (T)", queries::TITLE),
        ("DateOfBirth (D)", queries::DATE_OF_BIRTH),
    ] {
        for &n in &sizes {
            let texts = koko_corpus::wiki::generate(n, 4242);
            let koko = Koko::from_corpus_with_opts(pipeline.parse_corpus(&texts), seq_opts);
            let out = koko.query(qtext).expect("scaleup query runs");
            let p = out.profile;
            // Selectivity: articles with ≥1 extraction / articles.
            let mut docs: Vec<u32> = out.rows.iter().map(|r| r.doc).collect();
            docs.sort_unstable();
            docs.dedup();
            row(&[
                qname.to_string(),
                n.to_string(),
                p.candidate_sentences.to_string(),
                secs(p.normalize),
                secs(p.dpli),
                secs(p.load_article),
                secs(p.gsp),
                secs(p.extract),
                secs(p.satisfying),
                secs(p.total()),
                format!("{:.1}%", 100.0 * docs.len() as f64 / n as f64),
            ]);
        }
        println!("|  |  |  |  |  |  |  |  |  |  |  |");
    }
    println!("(paper: linear scale-up; LoadArticle >50% of time; Normalize + GSP <2%)");

    // ---- Sequential vs sharded wall-clock (ingest + all three queries) ---
    let cores = koko_par::available_threads();
    println!(
        "\n## Sequential vs sharded wall-clock ({} cores, shards={})\n",
        cores,
        if shards == 0 {
            format!("auto={cores}")
        } else {
            shards.to_string()
        }
    );
    header(&[
        "articles",
        "ingest seq",
        "ingest shard",
        "speedup",
        "3-query seq",
        "3-query shard",
        "speedup",
        "e2e speedup",
    ]);
    let bench_queries = [queries::CHOCOLATE, queries::TITLE, queries::DATE_OF_BIRTH];
    let mut points = Vec::new();
    for &n in &sizes {
        let texts = koko_corpus::wiki::generate(n, 4242);

        // Ingest: raw text → snapshot (parse + shard index/store builds).
        let t = Instant::now();
        let seq = Koko::from_texts_with_opts(&texts, seq_opts);
        let ingest_seq = t.elapsed();
        let t = Instant::now();
        let par = Koko::from_texts_with_opts(&texts, par_opts);
        let ingest_par = t.elapsed();

        // Queries: the three Table 2 extractions as one batch.
        let t = Instant::now();
        for q in bench_queries {
            seq.query(q).expect("sequential query");
        }
        let query_seq = t.elapsed();
        let t = Instant::now();
        for out in par.query_batch(&bench_queries) {
            out.expect("sharded query");
        }
        let query_par = t.elapsed();

        // Top-k early termination: the three queries with limit(10)
        // versus unlimited, both with a warm compiled cache (the cold
        // front-end cost was paid by the runs above), so the delta is
        // evaluation work only. docs_skipped proves the limit skipped
        // extraction rather than post-filtering.
        let t = Instant::now();
        for q in bench_queries {
            par.query(q).expect("warm unlimited query");
        }
        let query_full_warm = t.elapsed();
        let mut limit10_docs_skipped = 0usize;
        let t = Instant::now();
        for q in bench_queries {
            let out = QueryRequest::new(q)
                .limit(10)
                .run(&par)
                .expect("limit(10) query");
            limit10_docs_skipped += out.profile.docs_skipped;
        }
        let query_limit10 = t.elapsed();

        // Ranked top-k: the same three queries ordered by score with
        // limit(10). The bounded heap plus per-shard score bounds keep
        // this near the DocOrder limit run instead of paying the full
        // scan a ranked order would naively require; bound_skipped_docs
        // proves the pruning engaged rather than post-sorting.
        let mut scoredesc_bound_skipped = 0usize;
        let t = Instant::now();
        for q in bench_queries {
            let out = QueryRequest::new(q)
                .order(Order::ScoreDesc)
                .limit(10)
                .run(&par)
                .expect("ScoreDesc limit(10) query");
            scoredesc_bound_skipped += out.profile.bound_skipped_docs;
        }
        let query_scoredesc10 = t.elapsed();

        // Block-max ranked top-k. The three Table 2 queries' satisfying
        // conditions are not vocabulary-gated (`~` similarity keeps the
        // 1.0 cap), so their shard and block bounds coincide and the
        // section above already measures everything pruning can do for
        // them. This section measures the workload per-block bounds
        // exist for: a vocabulary-gated extraction (the §2.3 cafe query
        // gates on "Cafe"/"Roasters"/", a cafe") over a corpus where
        // that vocabulary is clustered — mostly wiki articles with a
        // tail of cafe-blog articles. The shard-wide bound stays
        // feasible (the tokens exist somewhere in the shard), so
        // shard-level pruning skips nothing; block bounds prove the
        // wiki blocks row-free and skip their documents before any
        // LoadArticle/GSP work. The identical request also runs against
        // a copy of the snapshot with its BLOCKS sections stripped,
        // isolating the refinement on the same engine and corpus.
        let n_cafe = (n / 40).max(2);
        let mut mixed = koko_corpus::wiki::generate(n - n_cafe, 4242);
        mixed.extend(
            koko_corpus::cafe::generate(koko_corpus::cafe::Style::Barista, n_cafe, 99).texts,
        );
        let bm = Koko::from_texts_with_opts(&mixed, par_opts);
        let bm_query = queries::EXAMPLE_2_3;
        bm.query(bm_query).expect("warm block-max engine");
        let mut query_blockmax_full = Duration::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            QueryRequest::new(bm_query)
                .order(Order::ScoreDesc)
                .run(&bm)
                .expect("unlimited ranked baseline");
            query_blockmax_full = query_blockmax_full.min(t.elapsed());
        }
        let mut blockmax_block_skipped = 0usize;
        let mut candidates_streamed = 0usize;
        let mut dpli_intersect = Duration::ZERO;
        let mut query_blockmax10 = Duration::MAX;
        for rep in 0..3 {
            let t = Instant::now();
            let out = QueryRequest::new(bm_query)
                .order(Order::ScoreDesc)
                .limit(10)
                .run(&bm)
                .expect("block-max ranked query");
            query_blockmax10 = query_blockmax10.min(t.elapsed());
            if rep == 0 {
                blockmax_block_skipped = out.profile.block_bound_skipped_docs;
                candidates_streamed = out.profile.candidate_sentences;
                dpli_intersect = out.profile.dpli;
            }
        }
        let bm_path = std::env::temp_dir().join(format!("table2_blockmax_{n}.koko"));
        let bm_stripped_path = std::env::temp_dir().join(format!("table2_blockmax_{n}_nb.koko"));
        bm.save(&bm_path).expect("block-max snapshot save");
        strip_block_sections(&bm_path, &bm_stripped_path);
        let shardonly =
            Koko::open_with_opts(&bm_stripped_path, par_opts).expect("open stripped snapshot");
        shardonly.query(bm_query).expect("warm stripped engine");
        let mut query_blockmax10_shardonly = Duration::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            let out = QueryRequest::new(bm_query)
                .order(Order::ScoreDesc)
                .limit(10)
                .run(&shardonly)
                .expect("shard-bound-only ranked query");
            query_blockmax10_shardonly = query_blockmax10_shardonly.min(t.elapsed());
            assert_eq!(
                out.profile.block_bound_skipped_docs, 0,
                "stripped snapshot must carry no block statistics"
            );
        }
        drop(shardonly);
        drop(bm);
        std::fs::remove_file(&bm_path).ok();
        std::fs::remove_file(&bm_stripped_path).ok();

        // Persistence: save the sharded snapshot, load it back, and verify
        // the loaded engine still answers (first query of the set).
        let snap_path = std::env::temp_dir().join(format!("table2_scaleup_{n}.koko"));
        let t = Instant::now();
        let file_bytes = par.save(&snap_path).expect("snapshot save");
        let save = t.elapsed();
        // Cold start, eager vs mmap: the eager open decodes every shard
        // up front (the pre-v4 behavior); the mmap open validates the
        // header + section table in O(sections) and defers shard decode
        // to the first query. Both run against a process-warm page
        // cache, so the delta is decode work, not disk.
        let t = Instant::now();
        let eager_opts = EngineOpts {
            eager_load: true,
            ..par_opts
        };
        let loaded = Koko::open_with_opts(&snap_path, eager_opts).expect("snapshot load");
        let load = t.elapsed();
        let t = Instant::now();
        loaded.query(bench_queries[0]).expect("query after load");
        let first_query_cold_eager = t.elapsed();
        let t = Instant::now();
        let mapped = Koko::open_with_opts(&snap_path, par_opts).expect("mmap open");
        let cold_open_mmap = t.elapsed();
        let t = Instant::now();
        mapped
            .query(bench_queries[0])
            .expect("first query after mmap open");
        let first_query_cold_mmap = t.elapsed();
        drop(mapped);
        std::fs::remove_file(&snap_path).ok();

        // Incremental ingest: one 8-document wave through `add_texts` on
        // the live index versus the full rebuild it replaces, plus query
        // latency with the delta shard live and after compaction. The add
        // is sub-millisecond, so take the best of three runs (each on a
        // fresh base) to keep timer noise out of the committed ratio.
        const ADD_DOCS: usize = 8;
        let all_texts = koko_corpus::wiki::generate(n + ADD_DOCS, 4242);
        let mut add = Duration::MAX;
        let mut base = Koko::from_texts_with_opts(&all_texts[..n], par_opts);
        for rep in 0..3 {
            let t = Instant::now();
            base.add_texts(&all_texts[n..]);
            add = add.min(t.elapsed());
            if rep < 2 {
                base = Koko::from_texts_with_opts(&all_texts[..n], par_opts);
            }
        }
        let t = Instant::now();
        let rebuilt = Koko::from_texts_with_opts(&all_texts, par_opts);
        let rebuild = t.elapsed();
        drop(rebuilt);
        let t = Instant::now();
        for q in bench_queries {
            base.query(q).expect("query with live delta");
        }
        let query_delta = t.elapsed();
        base.compact();
        let t = Instant::now();
        for q in bench_queries {
            base.query(q).expect("query after compaction");
        }
        let query_compacted = t.elapsed();
        drop(base);

        // Served QPS: the loaded snapshot behind an in-process server.
        let served_clients = cores.max(2);
        let serve_opts = EngineOpts {
            result_cache: 4096,
            ..par_opts
        };
        let (served_cold_qps, served_warm_1_qps, served_warm_n_qps, open) =
            serve_section(loaded.with_opts(serve_opts), &bench_queries, served_clients);

        // Cluster serving: the same corpus split across two workers
        // behind a coordinator, same query mix, real sockets.
        let (cluster_workers, cluster_qps, cluster_p99_ms) =
            cluster_section(&texts, serve_opts, &bench_queries, served_clients);

        let point = ScalePoint {
            articles: n,
            shards: par.num_shards(),
            ingest_seq,
            ingest_par,
            query_seq,
            query_par,
            save,
            load,
            cold_open_mmap,
            first_query_cold_eager,
            first_query_cold_mmap,
            file_bytes,
            served_clients,
            served_cold_qps,
            served_warm_1_qps,
            served_warm_n_qps,
            served_open_rate_rps: open.offered_rps,
            served_open_achieved_rps: open.achieved_rps,
            served_open_p50_ms: open.p50.as_secs_f64() * 1e3,
            served_open_p95_ms: open.p95.as_secs_f64() * 1e3,
            served_open_p99_ms: open.p99.as_secs_f64() * 1e3,
            cluster_workers,
            cluster_qps,
            cluster_p99_ms,
            add_docs: ADD_DOCS,
            add,
            rebuild,
            query_delta,
            query_compacted,
            query_full_warm,
            query_limit10,
            limit10_docs_skipped,
            query_scoredesc10,
            scoredesc_bound_skipped,
            query_blockmax_full,
            query_blockmax10,
            query_blockmax10_shardonly,
            blockmax_block_skipped,
            candidates_streamed,
            dpli_intersect,
        };
        row(&[
            n.to_string(),
            secs(ingest_seq),
            secs(ingest_par),
            format!("{:.2}x", ratio(ingest_seq, ingest_par)),
            secs(query_seq),
            secs(query_par),
            format!("{:.2}x", ratio(query_seq, query_par)),
            format!(
                "{:.2}x",
                ratio(ingest_seq + query_seq, ingest_par + query_par)
            ),
        ]);
        points.push(point);
    }
    println!("(expected: ≥1.5x end-to-end on ≥4 cores; ~1.0x on a single core)");

    // ---- Persistence: build-once / query-many ---------------------------
    println!("\n## Snapshot persistence: build vs save vs load\n");
    header(&[
        "articles",
        "ingest (build)",
        "save",
        "load",
        "file size",
        "build/load",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            secs(p.ingest_par),
            secs(p.save),
            secs(p.load),
            format!("{:.1} KiB", p.file_bytes as f64 / 1024.0),
            format!("{:.2}x", ratio(p.ingest_par, p.load)),
        ]);
    }
    println!("(expected: loading a snapshot is several times faster than re-ingesting text)");

    // ---- Cold start: eager load vs mmap open ----------------------------
    println!("\n## Cold start: eager load vs mmap open (same file, warm page cache)\n");
    header(&[
        "articles",
        "eager open",
        "mmap open",
        "open speedup",
        "first query (eager)",
        "first query (mmap)",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            secs(p.load),
            secs(p.cold_open_mmap),
            format!("{:.0}x", ratio(p.load, p.cold_open_mmap)),
            secs(p.first_query_cold_eager),
            secs(p.first_query_cold_mmap),
        ]);
    }
    println!("(expected: the mmap open is O(sections) — orders of magnitude under the eager decode, widening with corpus size; the first mmap query repays part of the deferred decode for the shards it touches, and rows are byte-identical either way)");

    // ---- Incremental ingest: add_texts vs full rebuild ------------------
    println!("\n## Live index: incremental add vs full rebuild\n");
    header(&[
        "articles",
        "wave",
        "add (delta)",
        "full rebuild",
        "add speedup",
        "add docs/s",
        "3-query (delta)",
        "3-query (compacted)",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            format!("+{}", p.add_docs),
            secs(p.add),
            secs(p.rebuild),
            format!("{:.1}x", ratio(p.rebuild, p.add)),
            format!("{:.0}", p.add_docs as f64 / p.add.as_secs_f64().max(1e-9)),
            secs(p.query_delta),
            secs(p.query_compacted),
        ]);
    }
    println!("(expected: an incremental add is ≥10x faster than the rebuild it replaces, widening with corpus size; delta-shard query latency converges with the compacted layout as corpora grow — the smallest point is first-query warm-up noise)");

    // ---- Top-k: limit(10) vs unlimited ----------------------------------
    println!("\n## Top-k early termination: limit(10) vs unlimited (warm compiled cache)\n");
    header(&[
        "articles",
        "3-query full",
        "3-query limit=10",
        "speedup",
        "docs skipped",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            secs(p.query_full_warm),
            secs(p.query_limit10),
            format!("{:.2}x", ratio(p.query_full_warm, p.query_limit10)),
            p.limit10_docs_skipped.to_string(),
        ]);
    }
    println!("(expected: limit=10 skips most candidate documents — docs skipped grows with corpus size — and gets faster relative to the full run as corpora grow)");

    // ---- Ranked top-k: ScoreDesc limit(10) ------------------------------
    println!("\n## Ranked top-k: ScoreDesc limit=10 (bounded heap + score bounds)\n");
    header(&[
        "articles",
        "3-query full",
        "limit=10 doc order",
        "limit=10 score desc",
        "speedup vs full",
        "bound skipped docs",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            secs(p.query_full_warm),
            secs(p.query_limit10),
            secs(p.query_scoredesc10),
            format!("{:.2}x", ratio(p.query_full_warm, p.query_scoredesc10)),
            p.scoredesc_bound_skipped.to_string(),
        ]);
    }
    println!("(expected: ranked top-k stays within ~1.5x of the DocOrder limit run — far below the full-scan cost a sort would naively need — with bound-skipped documents growing with corpus size)");

    // ---- Block-max ranked top-k: per-block bounds vs shard-wide ---------
    println!(
        "\n## Block-max ranked top-k: §2.3 cafe query, ScoreDesc limit=10, clustered vocabulary\n"
    );
    header(&[
        "articles",
        "full ranked",
        "limit=10 (blocks)",
        "limit=10 (shard only)",
        "blockmax speedup",
        "shard-only speedup",
        "block skipped docs",
        "candidates streamed",
        "DPLI intersect",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            secs(p.query_blockmax_full),
            secs(p.query_blockmax10),
            secs(p.query_blockmax10_shardonly),
            format!("{:.1}x", ratio(p.query_blockmax_full, p.query_blockmax10)),
            format!(
                "{:.1}x",
                ratio(p.query_blockmax_full, p.query_blockmax10_shardonly)
            ),
            p.blockmax_block_skipped.to_string(),
            p.candidates_streamed.to_string(),
            secs(p.dpli_intersect),
        ]);
    }
    println!("(expected: the shard-wide bound skips nothing here — the gating vocabulary exists somewhere in every shard — while per-block bounds skip most documents before any load; the blockmax speedup exceeds both the shard-only speedup and the Table 2 scoredesc speedup, widening with corpus size)");

    // ---- Served QPS: 1 vs N client threads, cold vs warm cache ----------
    println!("\n## Served QPS (in-process koko-serve, closed-loop clients)\n");
    header(&[
        "articles",
        "clients (warm N)",
        "cold QPS (1 client)",
        "warm QPS (1 client)",
        "warm QPS (N clients)",
        "warm/cold",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            p.served_clients.to_string(),
            format!("{:.0}", p.served_cold_qps),
            format!("{:.0}", p.served_warm_1_qps),
            format!("{:.0}", p.served_warm_n_qps),
            format!("{:.1}x", p.served_warm_1_qps / p.served_cold_qps.max(1e-9)),
        ]);
    }
    println!("(expected: warm result-cache QPS orders of magnitude above cold; N clients scale warm QPS further until the worker pool saturates)");

    // ---- Open-loop latency: fixed arrival rate, schedule-based latency --
    println!("\n## Open-loop serving latency (fixed arrival rate, warm cache)\n");
    header(&[
        "articles",
        "offered rps",
        "achieved rps",
        "p50",
        "p95",
        "p99",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            format!("{:.0}", p.served_open_rate_rps),
            format!("{:.0}", p.served_open_achieved_rps),
            format!("{:.2}ms", p.served_open_p50_ms),
            format!("{:.2}ms", p.served_open_p95_ms),
            format!("{:.2}ms", p.served_open_p99_ms),
        ]);
    }
    println!("(expected: achieved ≈ offered — the event loop keeps up below saturation — with single-digit-ms p50 and a bounded p99; latency is measured from the arrival schedule, so a server falling behind would show it in the tail)");

    // ---- Cluster serving: coordinator fan-out over the same corpus ------
    println!("\n## Cluster serving: 2-worker fan-out vs single node (warm cache)\n");
    header(&[
        "articles",
        "workers",
        "cluster qps",
        "single-node qps",
        "cluster p99",
        "single p99",
    ]);
    for p in &points {
        row(&[
            p.articles.to_string(),
            p.cluster_workers.to_string(),
            format!("{:.0}", p.cluster_qps),
            format!("{:.0}", p.served_warm_n_qps),
            format!("{:.2}ms", p.cluster_p99_ms),
            format!("{:.2}ms", p.served_open_p99_ms),
        ]);
    }
    println!("(expected: the fan-out + merge hop costs throughput at this scale — the corpus fits one node — but answers stay byte-identical and p99 stays bounded; the cluster wins once a corpus outgrows one machine's memory)");

    // ---- JSON perf trajectory -------------------------------------------
    let json = format!(
        "{{\"bench\":\"table2_scaleup\",\"cores\":{},\"points\":[{}]}}",
        cores,
        points
            .iter()
            .map(ScalePoint::json)
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("\n```json\n{json}\n```");
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
