//! Figure 4: extracting sports teams and facilities from WNUT-like tweets
//! with CRFsuite, IKE and KOKO. Tweets are short stand-alone documents, so
//! KOKO's evidence aggregation cannot stretch across sentences and the
//! baselines come much closer than on the blog corpora (§6.1).
//!
//! ```text
//! cargo run --release -p koko-bench --bin fig4_wnut [-- --tweets=400]
//! ```

use koko_baselines::ike::{facility_patterns, team_patterns, Ike, IkePattern};
use koko_bench::{arg_usize, header, row, thresholds, Split};
use koko_core::Koko;
use koko_corpus::eval;
use koko_corpus::tweets;
use koko_embed::Embeddings;
use koko_lang::queries;

fn main() {
    let n = arg_usize("tweets", 400);
    let corpus = tweets::generate(n, 303);
    run_task(
        "Sports Team",
        Split::new(corpus.labeled_teams(), 0.5),
        queries::sports_team_query,
        &team_patterns(),
    );
    run_task(
        "Facilities",
        Split::new(corpus.labeled_facilities(), 0.5),
        queries::facility_query,
        &facility_patterns(),
    );
}

fn run_task(
    name: &str,
    split: Split,
    koko_query: impl Fn(f64) -> String,
    ike_patterns: &[IkePattern],
) {
    println!(
        "\n## {name} ({} tweets, {} labels)\n",
        split.labeled.len(),
        split.labeled.num_labels()
    );
    let truth = split.test_truth();

    let crf_preds = split.crf_predictions(5, 7);
    let crf = eval::score(&crf_preds, &truth);

    let ike = Ike::new(Embeddings::shared());
    let ike_preds = split.test_predictions(&ike.run(&split.corpus, ike_patterns));
    let ike_score = eval::score(&ike_preds, &truth);

    let koko = Koko::from_corpus(split.corpus.clone());
    header(&[
        "threshold",
        "P(KOKO)",
        "R(KOKO)",
        "F1(KOKO)",
        "F1(IKE)",
        "F1(CRF)",
    ]);
    let mut best = (0.0f64, 0.0f64);
    for t in thresholds() {
        let out = koko.query(&koko_query(t)).expect("query runs");
        let preds = split.test_predictions(&out.doc_values("x"));
        let s = eval::score(&preds, &truth);
        if s.f1 > best.1 {
            best = (t, s.f1);
        }
        row(&[
            format!("{t:.2}"),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
            format!("{:.3}", s.f1),
            format!("{:.3}", ike_score.f1),
            format!("{:.3}", crf.f1),
        ]);
    }
    println!(
        "\nBest KOKO F1 = {:.3} at threshold {:.2} (paper: KOKO still best near τ=0.4, but baselines are much closer than on blogs)",
        best.1, best.0
    );
}
