//! Figure 5: KOKO with vs. without descriptor expansion on both blog
//! corpora. Expansion helps most on the shorter BaristaMag-like articles,
//! where weak paraphrased evidence is all a cafe gets (§6.1).
//!
//! ```text
//! cargo run --release -p koko-bench --bin fig5_descriptors [-- --barista=84 --sprudge=300]
//! ```

use koko_bench::{arg_usize, header, row, thresholds};
use koko_core::{EngineOpts, Koko};
use koko_corpus::cafe::{self, Style};
use koko_corpus::eval;
use koko_lang::queries;
use koko_nlp::Pipeline;

fn main() {
    let n_barista = arg_usize("barista", 84);
    let n_sprudge = arg_usize("sprudge", 300);
    for (name, style, n, seed) in [
        ("Barista Magazine", Style::Barista, n_barista, 101),
        ("Sprudge", Style::Sprudge, n_sprudge, 202),
    ] {
        let labeled = cafe::generate(style, n, seed);
        let corpus = Pipeline::new().parse_corpus(&labeled.texts);
        println!("\n## {name} ({n} articles)\n");

        let with = Koko::from_corpus(corpus.clone());
        let without_opts = EngineOpts {
            use_descriptors: false,
            ..EngineOpts::default()
        };
        let without = Koko::from_corpus(corpus).with_opts(without_opts);

        header(&["threshold", "F1 with descriptors", "F1 without"]);
        let mut gain_sum = 0.0;
        let mut count = 0;
        for t in thresholds() {
            let f1_with = f1_at(&with, t, &labeled.truth);
            let f1_without = f1_at(&without, t, &labeled.truth);
            gain_sum += f1_with - f1_without;
            count += 1;
            row(&[
                format!("{t:.2}"),
                format!("{f1_with:.3}"),
                format!("{f1_without:.3}"),
            ]);
        }
        println!(
            "\nMean F1 gain from descriptors: {:+.3} (paper: positive on BaristaMag, ≈0 on Sprudge)",
            gain_sum / count as f64
        );
    }
}

fn f1_at(koko: &Koko, threshold: f64, truth: &[Vec<String>]) -> f64 {
    let out = koko
        .query(&queries::cafe_query(threshold))
        .expect("cafe query runs");
    eval::score(&out.doc_values("x"), truth).f1
}
