//! §6.1's NELL comparison: a conservative bootstrapper seeded with a few
//! cafes discovers patterns and promotes instances — ending with high
//! precision but very low recall on rarely-mentioned entities
//! (paper: BaristaMag P 0.7 / R 0.05 / F1 0.1; Sprudge P 0.27 / R 0.04).
//!
//! ```text
//! cargo run --release -p koko-bench --bin nell_compare [-- --barista=84 --sprudge=300 --seeds=17]
//! ```

use koko_baselines::nell::{bootstrap, project, NellConfig};
use koko_bench::{arg_usize, header, row};
use koko_corpus::cafe::{self, Style};
use koko_corpus::eval;
use koko_nlp::Pipeline;

fn main() {
    let n_barista = arg_usize("barista", 84);
    let n_sprudge = arg_usize("sprudge", 300);
    let n_seeds = arg_usize("seeds", 17); // the paper gave NELL 17 seeds
    println!("\n## NELL-style bootstrap (seeds = {n_seeds})\n");
    header(&["corpus", "patterns", "instances", "P", "R", "F1"]);
    for (name, style, n, seed) in [
        ("BaristaMag", Style::Barista, n_barista, 101),
        ("Sprudge", Style::Sprudge, n_sprudge, 202),
    ] {
        let labeled = cafe::generate(style, n, seed);
        let corpus = Pipeline::new().parse_corpus(&labeled.texts);
        // Seeds: the first distinct gold cafes.
        let mut seeds: Vec<String> = Vec::new();
        for names in &labeled.truth {
            for nme in names {
                if !seeds.iter().any(|s| s.eq_ignore_ascii_case(nme)) {
                    seeds.push(nme.clone());
                }
                if seeds.len() >= n_seeds {
                    break;
                }
            }
            if seeds.len() >= n_seeds {
                break;
            }
        }
        // One confirmed high-precision pattern suffices for promotion here:
        // with combinatorial cafe names every instance is context-sparse,
        // and the default 2-pattern rule promotes nothing at all.
        let cfg = NellConfig {
            min_patterns_per_instance: 1,
            ..NellConfig::default()
        };
        let (instances, patterns) = bootstrap(&corpus, &seeds, cfg);
        let preds = project(&corpus, &instances);
        // Seeds are excluded from scoring (NELL was given them).
        let truth: Vec<Vec<String>> = labeled
            .truth
            .iter()
            .map(|doc| {
                doc.iter()
                    .filter(|g| !seeds.iter().any(|s| s.eq_ignore_ascii_case(g)))
                    .cloned()
                    .collect()
            })
            .collect();
        let s = eval::score(&preds, &truth);
        row(&[
            name.to_string(),
            patterns.to_string(),
            instances.len().to_string(),
            format!("{:.2}", s.precision),
            format!("{:.2}", s.recall),
            format!("{:.2}", s.f1),
        ]);
    }
    println!(
        "\n(paper: high precision, recall ≤ 0.05 — rare entities defeat web-scale bootstrapping)"
    );
}
