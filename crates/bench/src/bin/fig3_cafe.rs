//! Figure 3: extracting cafe names with CRFsuite, IKE and KOKO on the
//! BaristaMag-like and Sprudge-like corpora — precision / recall / F1
//! across the satisfying-clause threshold sweep.
//!
//! ```text
//! cargo run --release -p koko-bench --bin fig3_cafe [-- --barista=84 --sprudge=300]
//! ```

use koko_baselines::ike::{cafe_patterns, Ike};
use koko_bench::{arg_usize, header, row, thresholds, Split};
use koko_core::Koko;
use koko_corpus::cafe::{self, Style};
use koko_corpus::eval;
use koko_embed::Embeddings;
use koko_lang::queries;

fn main() {
    let n_barista = arg_usize("barista", 84);
    let n_sprudge = arg_usize("sprudge", 300);
    for (name, style, n, seed) in [
        ("Barista Magazine", Style::Barista, n_barista, 101),
        ("Sprudge", Style::Sprudge, n_sprudge, 202),
    ] {
        run_dataset(name, style, n, seed);
    }
}

fn run_dataset(name: &str, style: Style, n: usize, seed: u64) {
    let labeled = cafe::generate(style, n, seed);
    println!(
        "\n## {name} ({} articles, {} labeled cafes)\n",
        labeled.len(),
        labeled.num_labels()
    );
    let split = Split::new(labeled, 0.5);
    let truth = split.test_truth();

    // CRF (threshold-independent horizontal line in the paper's figure).
    let crf_preds = split.crf_predictions(5, seed);
    let crf = eval::score(&crf_preds, &truth);

    // IKE (also threshold-independent).
    let ike = Ike::new(Embeddings::shared());
    let ike_all = ike.run(&split.corpus, &cafe_patterns());
    let ike_preds = split.test_predictions(&ike_all);
    let ike_score = eval::score(&ike_preds, &truth);

    // KOKO: the Figure 9 query swept over thresholds.
    let koko = Koko::from_corpus(split.corpus.clone());
    header(&[
        "threshold",
        "P(KOKO)",
        "R(KOKO)",
        "F1(KOKO)",
        "P(IKE)",
        "R(IKE)",
        "F1(IKE)",
        "P(CRF)",
        "R(CRF)",
        "F1(CRF)",
    ]);
    let mut best = (0.0f64, 0.0f64);
    for t in thresholds() {
        let out = koko
            .query(&queries::cafe_query(t))
            .expect("cafe query runs");
        let preds = split.test_predictions(&out.doc_values("x"));
        let s = eval::score(&preds, &truth);
        if s.f1 > best.1 {
            best = (t, s.f1);
        }
        row(&[
            format!("{t:.2}"),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
            format!("{:.3}", s.f1),
            format!("{:.3}", ike_score.precision),
            format!("{:.3}", ike_score.recall),
            format!("{:.3}", ike_score.f1),
            format!("{:.3}", crf.precision),
            format!("{:.3}", crf.recall),
            format!("{:.3}", crf.f1),
        ]);
    }
    println!(
        "\nBest KOKO F1 = {:.3} at threshold {:.2} (paper: KOKO leads IKE and CRFsuite at every threshold, peak near 0.6)",
        best.1, best.0
    );
}
