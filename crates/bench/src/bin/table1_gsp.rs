//! Table 1: average extract-clause evaluation time (ms per sentence) for
//! `KOKO&GSP` vs `KOKO&NOGSP` on the SyntheticSpan benchmark (span
//! variables with 1 / 3 / 5 atoms), over the HappyDB-like and
//! Wikipedia-like corpora.
//!
//! Expected shape (paper): NOGSP is slightly *faster* at 1 atom (plan
//! generation costs more than it saves) and ≥3 orders of magnitude slower
//! at 5 atoms (each skipped `∧` otherwise enumerates `t(t+1)/2` spans).
//!
//! ```text
//! cargo run --release -p koko-bench --bin table1_gsp [-- --happy=400 --wiki=60 --queries=20]
//! ```

use koko_bench::{arg_usize, header, row};
use koko_core::{EngineOpts, Koko};
use koko_nlp::{Corpus, Pipeline};
use std::time::Instant;

fn main() {
    let n_happy = arg_usize("happy", 400);
    let n_wiki = arg_usize("wiki", 60);
    // NOGSP at 5 atoms is deliberately catastrophic; cap queries per cell.
    let per_cell = arg_usize("queries", 20);

    let pipeline = Pipeline::new();
    let happy = pipeline.parse_corpus(&koko_corpus::happydb::generate(n_happy, 55));
    let wiki = pipeline.parse_corpus(&koko_corpus::wiki::generate(n_wiki, 56));

    println!(
        "\n## Table 1: avg evaluation time (ms per candidate sentence) over the extract clause\n"
    );
    header(&["corpus", "atoms", "KOKO&GSP", "KOKO&NOGSP", "slowdown"]);
    for (name, corpus) in [("HappyDB", &happy), ("Wikipedia", &wiki)] {
        let queries = koko_corpus::synthetic_span::generate(corpus, 77);
        for atoms in [1usize, 3, 5] {
            let subset: Vec<&str> = queries
                .iter()
                .filter(|q| q.atoms == atoms)
                .take(per_cell)
                .map(|q| q.text.as_str())
                .collect();
            let gsp = run_mode(corpus, &subset, true);
            let nogsp = run_mode(corpus, &subset, false);
            row(&[
                name.to_string(),
                atoms.to_string(),
                format!("{gsp:.3}"),
                format!("{nogsp:.3}"),
                format!("{:.1}x", nogsp / gsp.max(1e-9)),
            ]);
        }
    }
    println!(
        "\n(paper: 0.28→0.37 ms/sentence with GSP; NOGSP reaches 290–607 ms/sentence at 5 atoms)"
    );
}

/// Mean per-candidate-sentence time of the GSP+extract stages.
fn run_mode(corpus: &Corpus, queries: &[&str], use_gsp: bool) -> f64 {
    let opts = EngineOpts {
        use_gsp,
        store_backed: false, // isolate the evaluation stages
        ..EngineOpts::default()
    };
    let koko = Koko::from_corpus(corpus.clone()).with_opts(opts);
    let mut total = 0.0f64;
    let mut sentences = 0usize;
    for q in queries {
        let t = Instant::now();
        let out = koko.query(q).expect("benchmark query runs");
        let _ = t.elapsed();
        total += (out.profile.gsp + out.profile.extract).as_secs_f64() * 1000.0;
        sentences += out.profile.candidate_sentences.max(1);
    }
    total / sentences.max(1) as f64
}
