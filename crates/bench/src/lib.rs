//! Shared plumbing for the experiment harnesses (`src/bin/*`): argument
//! parsing, corpus preparation, the CRF train/test protocol, and table
//! printing.
//!
//! Every binary regenerates one table or figure of the paper; run e.g.
//!
//! ```text
//! cargo run --release -p koko-bench --bin fig3_cafe
//! cargo run --release -p koko-bench --bin table2_scaleup -- --scale=2
//! ```

use koko_baselines::crf::{bio_encode, Crf};
use koko_corpus::LabeledCorpus;
use koko_nlp::{Corpus, Pipeline};

/// Parse `--name=value` style integer arguments (with default).
pub fn arg_usize(name: &str, default: usize) -> usize {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Parse a `--name=value` float argument.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// The threshold sweep of Figures 3–5.
pub fn thresholds() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

/// Print a markdown-ish table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Train/test split over a labelled corpus: the first `train_frac` of the
/// documents train the CRF; *all systems are scored on the test half only*
/// (the paper trains CRFsuite on 50% of the data).
pub struct Split {
    pub corpus: Corpus,
    pub labeled: LabeledCorpus,
    pub train_docs: usize,
}

impl Split {
    pub fn new(labeled: LabeledCorpus, train_frac: f64) -> Split {
        let pipeline = Pipeline::new();
        let corpus = pipeline.parse_corpus(&labeled.texts);
        let train_docs = ((labeled.len() as f64) * train_frac) as usize;
        Split {
            corpus,
            labeled,
            train_docs,
        }
    }

    /// Gold labels of the test half, re-indexed from zero.
    pub fn test_truth(&self) -> Vec<Vec<String>> {
        self.labeled.truth[self.train_docs..].to_vec()
    }

    /// Filter and re-index predictions onto the test half.
    pub fn test_predictions(&self, preds: &[(u32, String)]) -> Vec<(u32, String)> {
        preds
            .iter()
            .filter(|(d, _)| (*d as usize) >= self.train_docs)
            .map(|(d, s)| ((*d as usize - self.train_docs) as u32, s.clone()))
            .collect()
    }

    /// Train the averaged-perceptron CRF on the train half and predict
    /// entity mentions on the test half.
    pub fn crf_predictions(&self, epochs: usize, seed: u64) -> Vec<(u32, String)> {
        let mut data: Vec<(Vec<String>, Vec<u8>)> = Vec::new();
        for di in 0..self.train_docs {
            let doc = &self.corpus.documents()[di];
            let gold = &self.labeled.truth[di];
            for s in &doc.sentences {
                let tokens: Vec<String> = s.tokens.iter().map(|t| t.text.clone()).collect();
                let tags = bio_encode(&tokens, gold);
                data.push((tokens, tags));
            }
        }
        let crf = Crf::train(&data, epochs, seed);
        let mut preds = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for di in self.train_docs..self.corpus.num_documents() {
            let doc = &self.corpus.documents()[di];
            for s in &doc.sentences {
                let tokens: Vec<String> = s.tokens.iter().map(|t| t.text.clone()).collect();
                for (a, b) in crf.extract(&tokens) {
                    let text = tokens[a..b].join(" ");
                    let key = ((di - self.train_docs) as u32, text.to_lowercase());
                    if seen.insert(key.clone()) {
                        preds.push((key.0, text));
                    }
                }
            }
        }
        preds
    }
}

/// Seconds with 4 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Shared driver for the Figure 7/8 index experiments: lookup time and
/// effectiveness of the four schemes over the SyntheticTree benchmark,
/// swept over corpus sizes, plus a breakdown by result-set size
/// (#extractions) on the largest corpus.
#[allow(unused_assignments)]
pub fn run_index_experiment(title: &str, corpora: &[(String, Corpus)], seed: u64) {
    use koko_corpus::synthetic_tree;
    use koko_index::{
        effectiveness, ground_truth_sids, AdvInvertedIndex, CandidateIndex, InvertedIndex,
        KokoIndex, SubtreeIndex,
    };
    use std::time::Instant;

    println!("\n# {title}: SyntheticTree benchmark (350 queries)\n");
    println!(
        "## (a) lookup time (ms, total over benchmark) and (b) mean effectiveness vs corpus size\n"
    );
    header(&[
        "corpus",
        "sentences",
        "t(INV)",
        "t(ADV)",
        "t(SUB)",
        "t(KOKO)",
        "e(INV)",
        "e(ADV)",
        "e(SUB)",
        "e(KOKO)",
        "SUB supported",
    ]);

    let mut largest: Option<(&Corpus, Vec<synthetic_tree::TreeQuery>)> = None;
    for (label, corpus) in corpora {
        let queries = synthetic_tree::generate(corpus, seed);
        let truth: Vec<Vec<koko_nlp::Sid>> = queries
            .iter()
            .map(|q| ground_truth_sids(corpus, &q.pattern))
            .collect();
        let inv = InvertedIndex::build(corpus);
        let adv = AdvInvertedIndex::build(corpus);
        let sub = SubtreeIndex::build(corpus);
        let koko = KokoIndex::build(corpus);

        let mut cells = vec![label.clone(), corpus.num_sentences().to_string()];
        let mut effs = Vec::new();
        let mut supported = 0usize;
        macro_rules! scheme {
            ($idx:expr) => {{
                let t = Instant::now();
                let mut eff_sum = 0.0;
                let mut eff_n = 0usize;
                for (q, tr) in queries.iter().zip(&truth) {
                    if let Some(cands) = $idx.lookup(&q.pattern) {
                        eff_sum += effectiveness(&cands, tr);
                        eff_n += 1;
                    }
                }
                let elapsed = t.elapsed();
                effs.push(if eff_n == 0 {
                    0.0
                } else {
                    eff_sum / eff_n as f64
                });
                supported = eff_n;
                format!("{:.1}", elapsed.as_secs_f64() * 1000.0)
            }};
        }
        let t_inv = scheme!(inv);
        let t_adv = scheme!(adv);
        let t_sub = scheme!(sub);
        let sub_supported = supported;
        let t_koko = scheme!(koko);
        cells.extend([t_inv, t_adv, t_sub, t_koko]);
        cells.extend(effs.iter().map(|e| format!("{e:.3}")));
        cells.push(format!("{sub_supported}/350"));
        row(&cells);

        if corpora
            .last()
            .is_some_and(|(last_label, _)| last_label == label)
        {
            largest = Some((corpus, queries));
        }
    }

    // (c)/(d): by number of extractions on the largest corpus.
    let (corpus, queries) = largest.expect("at least one corpus");
    let truth: Vec<Vec<koko_nlp::Sid>> = queries
        .iter()
        .map(|q| ground_truth_sids(corpus, &q.pattern))
        .collect();
    let buckets: [(usize, usize); 4] = [(0, 1), (1, 10), (10, 100), (100, usize::MAX)];
    println!(
        "\n## (c)/(d) lookup time (ms/query) and effectiveness vs #extractions (largest corpus)\n"
    );
    header(&[
        "extractions",
        "queries",
        "INV",
        "ADV",
        "SUB",
        "KOKO",
        "e(INV)",
        "e(ADV)",
        "e(SUB)",
        "e(KOKO)",
    ]);
    let inv = InvertedIndex::build(corpus);
    let adv = AdvInvertedIndex::build(corpus);
    let sub = SubtreeIndex::build(corpus);
    let koko = KokoIndex::build(corpus);
    for (lo, hi) in buckets {
        let idxs: Vec<usize> = (0..queries.len())
            .filter(|&i| truth[i].len() >= lo && truth[i].len() < hi)
            .collect();
        if idxs.is_empty() {
            continue;
        }
        let mut cells = vec![
            if hi == usize::MAX {
                format!("≥{lo}")
            } else {
                format!("{lo}–{}", hi - 1)
            },
            idxs.len().to_string(),
        ];
        let mut effs = Vec::new();
        macro_rules! scheme {
            ($idx:expr) => {{
                let t = std::time::Instant::now();
                let mut eff_sum = 0.0;
                let mut eff_n = 0usize;
                for &i in &idxs {
                    if let Some(cands) = $idx.lookup(&queries[i].pattern) {
                        eff_sum += effectiveness(&cands, &truth[i]);
                        eff_n += 1;
                    }
                }
                let per_query = t.elapsed().as_secs_f64() * 1000.0 / idxs.len() as f64;
                effs.push(if eff_n == 0 {
                    f64::NAN
                } else {
                    eff_sum / eff_n as f64
                });
                format!("{per_query:.2}")
            }};
        }
        let a = scheme!(inv);
        let b = scheme!(adv);
        let c = scheme!(sub);
        let d = scheme!(koko);
        cells.extend([a, b, c, d]);
        cells.extend(effs.iter().map(|e| format!("{e:.3}")));
        row(&cells);
    }
    println!("\n(paper: KOKO and SUBTREE are fastest; KOKO ≈ ADVINVERTED near-perfect effectiveness; INVERTED <0.5 and slowest)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_corpus::cafe::{self, Style};

    #[test]
    fn split_protocol() {
        let labeled = cafe::generate(Style::Barista, 20, 1);
        let split = Split::new(labeled, 0.5);
        assert_eq!(split.train_docs, 10);
        assert_eq!(split.test_truth().len(), 10);
        let preds = vec![(3u32, "X".to_string()), (15u32, "Y".to_string())];
        let test = split.test_predictions(&preds);
        assert_eq!(test, vec![(5, "Y".to_string())]);
    }

    #[test]
    fn crf_protocol_runs() {
        let labeled = cafe::generate(Style::Barista, 16, 2);
        let split = Split::new(labeled, 0.5);
        let preds = split.crf_predictions(3, 7);
        // Predictions index into the test half.
        for (d, _) in &preds {
            assert!((*d as usize) < split.corpus.num_documents() - split.train_docs);
        }
    }

    #[test]
    fn arg_defaults() {
        assert_eq!(arg_usize("definitely-not-set", 7), 7);
        assert_eq!(arg_f64("definitely-not-set", 0.5), 0.5);
    }
}
