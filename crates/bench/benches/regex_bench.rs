//! Criterion micro-benchmarks for the regex engine: the query conditions of
//! Appendix A compile once and match per candidate value, so match
//! throughput is what matters.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use koko_regex::Regex;

fn bench_regex(c: &mut Criterion) {
    let mut g = c.benchmark_group("regex");
    g.bench_function("compile_address_pattern", |b| {
        b.iter(|| Regex::new(black_box("[0-9]+ [0-9A-Z a-z]+ [Ss]t.?")).unwrap())
    });
    let re = Regex::new("[0-9]+ [0-9A-Z a-z]+ [Ss]t.?").unwrap();
    g.bench_function("full_match_hit", |b| {
        b.iter(|| re.is_full_match(black_box("123 Mission St.")))
    });
    g.bench_function("full_match_miss", |b| {
        b.iter(|| re.is_full_match(black_box("Copper Kettle Roasters")))
    });
    let alt = Regex::new("[Cc]offee|[Cc]afe|[Cc]afé").unwrap();
    g.bench_function("alternation", |b| {
        b.iter(|| alt.is_full_match(black_box("Cafe")))
    });
    let star = Regex::new("(a|b)*abb").unwrap();
    let text = "ab".repeat(40) + "abb";
    g.bench_function("nfa_simulation_long", |b| {
        b.iter(|| star.is_full_match(black_box(&text)))
    });
    g.finish();
}

criterion_group!(benches, bench_regex);
criterion_main!(benches);
