//! Criterion micro-benchmarks comparing the four indexing schemes on a
//! fixed corpus — the per-lookup view behind Figures 7/8.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use koko_index::{AdvInvertedIndex, CandidateIndex, InvertedIndex, KokoIndex, SubtreeIndex};
use koko_nlp::{Axis, NodeLabel, ParseLabel, Pipeline, PosTag, TreePattern};

fn corpus() -> koko_nlp::Corpus {
    let texts = koko_corpus::wiki::generate(150, 4242);
    Pipeline::new().parse_corpus(&texts)
}

fn patterns() -> Vec<TreePattern> {
    vec![
        TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Nn)),
            ],
        ),
        TreePattern::path(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Pos(PosTag::Verb)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Prep)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Pobj)),
            ],
        ),
        TreePattern::path(
            false,
            vec![(Axis::Descendant, NodeLabel::Word("born".into()))],
        ),
    ]
}

fn bench_lookup(c: &mut Criterion) {
    let corpus = corpus();
    let koko = KokoIndex::build(&corpus);
    let inv = InvertedIndex::build(&corpus);
    let adv = AdvInvertedIndex::build(&corpus);
    let sub = SubtreeIndex::build(&corpus);
    let pats = patterns();

    let mut g = c.benchmark_group("index_lookup");
    g.bench_function("koko", |b| {
        b.iter(|| {
            for p in &pats {
                black_box(koko.lookup(black_box(p)));
            }
        })
    });
    g.bench_function("inverted", |b| {
        b.iter(|| {
            for p in &pats {
                black_box(inv.lookup(black_box(p)));
            }
        })
    });
    g.bench_function("advinverted", |b| {
        b.iter(|| {
            for p in &pats {
                black_box(adv.lookup(black_box(p)));
            }
        })
    });
    g.bench_function("subtree", |b| {
        b.iter(|| {
            for p in &pats {
                black_box(sub.lookup(black_box(p)));
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    g.bench_function("koko_build", |b| {
        b.iter(|| KokoIndex::build(black_box(&corpus)))
    });
    g.bench_function("subtree_build", |b| {
        b.iter(|| SubtreeIndex::build(black_box(&corpus)))
    });
    g.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
