//! Criterion micro-benchmarks for the engine: end-to-end query latency,
//! skip-plan generation, and descriptor scoring.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use koko_core::Koko;
use koko_lang::queries;

fn bench_engine(c: &mut Criterion) {
    let texts = koko_corpus::wiki::generate(120, 777);
    let koko = Koko::from_texts(&texts);

    let mut g = c.benchmark_group("engine");
    g.bench_function("example21_end_to_end", |b| {
        b.iter(|| koko.query(black_box(queries::EXAMPLE_2_1)).unwrap())
    });
    g.bench_function("title_query", |b| {
        b.iter(|| koko.query(black_box(queries::TITLE)).unwrap())
    });
    g.bench_function("date_of_birth_query", |b| {
        b.iter(|| koko.query(black_box(queries::DATE_OF_BIRTH)).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("descriptor");
    let e = koko_embed::Embeddings::shared();
    g.bench_function("expand_serves_coffee", |b| {
        b.iter(|| e.expand(black_box("serves coffee"), 40, 0.55))
    });
    g.bench_function("phrase_similarity", |b| {
        b.iter(|| e.phrase_similarity(black_box("serves coffee"), black_box("sells espresso")))
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
