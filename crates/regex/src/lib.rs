//! `koko-regex` — a small regular-expression engine used by the KOKO query
//! language (`matches`, `@regex = …` conditions) and by the CRF feature
//! extractor.
//!
//! The engine is a classic three-stage pipeline:
//!
//! 1. `ast` — recursive-descent parser producing an expression tree,
//! 2. `nfa` — Thompson construction into an ε-NFA,
//! 3. simulation — breadth-first state-set stepping (Pike-style, no
//!    backtracking), so matching is `O(len(text) · len(pattern))` in the worst
//!    case and immune to catastrophic backtracking.
//!
//! Supported syntax (the subset exercised by the paper's queries, Appendix A):
//! literals, `.`, character classes `[a-z 0-9.]` with ranges and negation
//! (`[^…]`), alternation `|`, grouping `(…)`, quantifiers `*`, `+`, `?`,
//! bounded repetition `{m}`, `{m,}`, `{m,n}`, escapes (`\d`, `\w`, `\s`,
//! `\D`, `\W`, `\S`, and escaped metacharacters), and anchors `^` / `$`.
//!
//! # Example
//!
//! ```
//! use koko_regex::Regex;
//! let re = Regex::new("[Ll]a Marzocco").unwrap();
//! assert!(re.is_full_match("La Marzocco"));
//! assert!(re.is_full_match("la Marzocco"));
//! assert!(!re.is_full_match("a La Marzocco machine"));
//! assert!(re.search("a La Marzocco machine").is_some());
//! ```

mod ast;
mod nfa;

pub use ast::{parse, Ast, ClassItem, ParseError};
pub use nfa::Nfa;

use std::fmt;

/// A compiled regular expression.
///
/// Construction validates and compiles the pattern once; matching never
/// fails. `Regex` is cheap to clone (`Nfa` is a flat `Vec` of states) and is
/// `Send + Sync`.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    nfa: Nfa,
}

/// Error returned by [`Regex::new`] for malformed patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the pattern where the problem was detected.
    pub position: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for Error {}

impl Regex {
    /// Compile `pattern` into an NFA.
    pub fn new(pattern: &str) -> Result<Self, Error> {
        let ast = ast::parse(pattern).map_err(|e| Error {
            message: e.message,
            position: e.position,
        })?;
        let nfa = Nfa::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            nfa,
        })
    }

    /// The original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Whether the *entire* `text` matches the pattern.
    ///
    /// This is the semantics of KOKO's `str(x) matches <pattern>` condition:
    /// the pattern must describe the whole candidate string.
    pub fn is_full_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        self.nfa.longest_match_at(&chars, 0) == Some(chars.len())
    }

    /// Find the leftmost-longest match. Returns `(start, end)` **character**
    /// offsets (half-open) or `None`.
    pub fn search(&self, text: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = text.chars().collect();
        self.search_chars(&chars)
    }

    /// Like [`Regex::search`] but over a pre-split character slice.
    pub fn search_chars(&self, chars: &[char]) -> Option<(usize, usize)> {
        for start in 0..=chars.len() {
            if let Some(end) = self.nfa.longest_match_at(chars, start) {
                return Some((start, end));
            }
            // `^`-anchored patterns can only match at offset 0.
            if self.nfa.anchored_start() {
                break;
            }
        }
        None
    }

    /// Whether the pattern matches anywhere in `text`.
    pub fn is_search_match(&self, text: &str) -> bool {
        self.search(text).is_some()
    }

    /// Iterate over all non-overlapping leftmost-longest matches.
    pub fn find_iter<'r>(&'r self, text: &str) -> FindIter<'r> {
        FindIter {
            re: self,
            chars: text.chars().collect(),
            at: 0,
        }
    }
}

/// Iterator over non-overlapping matches; yields `(start, end)` char offsets.
pub struct FindIter<'r> {
    re: &'r Regex,
    chars: Vec<char>,
    at: usize,
}

impl Iterator for FindIter<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.at <= self.chars.len() {
            if let Some(end) = self.re.nfa.longest_match_at(&self.chars, self.at) {
                let start = self.at;
                // Zero-width matches must still advance the cursor.
                self.at = if end == start { start + 1 } else { end };
                return Some((start, end));
            }
            if self.re.nfa.anchored_start() {
                return None;
            }
            self.at += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("pattern {p:?} failed: {e}"))
    }

    #[test]
    fn literal_full_match() {
        assert!(re("abc").is_full_match("abc"));
        assert!(!re("abc").is_full_match("abcd"));
        assert!(!re("abc").is_full_match("ab"));
    }

    #[test]
    fn dot_matches_any_but_needs_a_char() {
        assert!(re("a.c").is_full_match("abc"));
        assert!(re("a.c").is_full_match("a c"));
        assert!(!re("a.c").is_full_match("ac"));
    }

    #[test]
    fn star_plus_question() {
        assert!(re("ab*c").is_full_match("ac"));
        assert!(re("ab*c").is_full_match("abbbc"));
        assert!(!re("ab+c").is_full_match("ac"));
        assert!(re("ab+c").is_full_match("abc"));
        assert!(re("ab?c").is_full_match("ac"));
        assert!(re("ab?c").is_full_match("abc"));
        assert!(!re("ab?c").is_full_match("abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("cat|dog");
        assert!(r.is_full_match("cat"));
        assert!(r.is_full_match("dog"));
        assert!(!r.is_full_match("catdog"));
        let r = re("gr(a|e)y");
        assert!(r.is_full_match("gray"));
        assert!(r.is_full_match("grey"));
    }

    #[test]
    fn classes_and_ranges() {
        let r = re("[a-c]+");
        assert!(r.is_full_match("abccba"));
        assert!(!r.is_full_match("abd"));
        let r = re("[^0-9]+");
        assert!(r.is_full_match("hello"));
        assert!(!r.is_full_match("h3llo"));
    }

    #[test]
    fn class_with_literal_space_and_dot() {
        // The paper's exclude clauses use classes like "[a-z 0-9.]+".
        let r = re("[a-z 0-9.]+");
        assert!(r.is_full_match("blue bottle 4.2"));
        assert!(!r.is_full_match("Blue"));
    }

    #[test]
    fn escapes() {
        assert!(re(r"\d+").is_full_match("12345"));
        assert!(!re(r"\d+").is_full_match("12a45"));
        assert!(re(r"\w+").is_full_match("abc_123"));
        assert!(re(r"\s").is_full_match(" "));
        assert!(re(r"\.").is_full_match("."));
        assert!(!re(r"\.").is_full_match("a"));
        assert!(re(r"\D+").is_full_match("abc"));
        assert!(!re(r"\D+").is_full_match("a1c"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(re("a{3}").is_full_match("aaa"));
        assert!(!re("a{3}").is_full_match("aa"));
        assert!(re("a{2,}").is_full_match("aaaa"));
        assert!(!re("a{2,}").is_full_match("a"));
        assert!(re("a{1,3}").is_full_match("aa"));
        assert!(!re("a{1,3}").is_full_match("aaaa"));
    }

    #[test]
    fn paper_exclude_patterns() {
        // Patterns lifted verbatim from Appendix A (Figure 9).
        let cases = [
            ("[Ll]a Marzocco", "la Marzocco", true),
            ("[Ll]a Marzocco", "La Marzocco", true),
            ("[Ll]a Marzocco", "Le Marzocco", false),
            ("[Cc]offee|[Cc]afe|[Cc]af\u{e9}", "Coffee", true),
            ("[Cc]offee|[Cc]afe|[Cc]af\u{e9}", "cafe", true),
            ("[Cc]offee|[Cc]afe|[Cc]af\u{e9}", "Cafemath", false),
            ("[0-9]+ [0-9A-Z a-z]+ [Ss]t.?", "123 Mission St", true),
            ("[0-9]+ [0-9A-Z a-z]+ [Ss]t.?", "9 Grand Ave", false),
            (
                "[A-Za-z 0-9.]*[Ff]est(ival)?",
                "Portland Coffee Festival",
                true,
            ),
            ("[A-Za-z 0-9.]*[Ff]est(ival)?", "Brew Fest", true),
            ("@[A-Za-z 0-9.]+", "@bluebottle", true),
        ];
        for (pat, text, want) in cases {
            assert_eq!(
                re(pat).is_full_match(text),
                want,
                "pattern {pat:?} on {text:?}"
            );
        }
    }

    #[test]
    fn search_finds_leftmost_longest() {
        let r = re("a+");
        assert_eq!(r.search("xxaaayaa"), Some((2, 5)));
        assert_eq!(r.search("bbb"), None);
    }

    #[test]
    fn anchors() {
        assert!(re("^abc$").is_full_match("abc"));
        assert_eq!(re("^a").search("ba"), None);
        assert_eq!(re("a$").search("ab"), None);
        assert_eq!(re("a$").search("ba"), Some((1, 2)));
    }

    #[test]
    fn find_iter_non_overlapping() {
        let r = re("ab");
        let hits: Vec<_> = r.find_iter("ababab").collect();
        assert_eq!(hits, vec![(0, 2), (2, 4), (4, 6)]);
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert!(re("").is_full_match(""));
        assert!(!re("").is_full_match("a"));
        assert_eq!(re("").search("ab"), Some((0, 0)));
    }

    #[test]
    fn malformed_patterns_error() {
        assert!(Regex::new("a(").is_err());
        assert!(Regex::new("a)").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        // A `{` that cannot start a bound is a literal, like in mainstream
        // engines.
        assert!(Regex::new("a{").is_ok());
    }

    #[test]
    fn unicode_chars() {
        assert!(re("caf\u{e9}").is_full_match("caf\u{e9}"));
        assert_eq!(re("\u{e9}").search("caf\u{e9}s"), Some((3, 4)));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // Classic backtracking killer: (a*)*b against "aaaa…a".
        let r = re("(a*)*b");
        let text = "a".repeat(2000);
        assert!(!r.is_full_match(&text));
        assert!(r.is_full_match(&format!("{text}b")));
    }
}
