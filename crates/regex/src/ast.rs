//! Pattern parser: regex text → [`Ast`].
//!
//! A hand-written recursive-descent parser over the grammar
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat*
//! repeat := atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
//! atom   := literal | '.' | class | '(' alt ')' | '^' | '$' | escape
//! class  := '[' '^'? item+ ']'       item := ch | ch '-' ch | escape-class
//! ```

/// A parsed regular-expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any single character.
    AnyChar,
    /// A character class; `negated` flips membership.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// Concatenation of sub-expressions.
    Concat(Vec<Ast>),
    /// Alternation (`|`) of sub-expressions.
    Alternate(Vec<Ast>),
    /// `e*` (min=0, max=None), `e+` (1, None), `e?` (0, Some(1)),
    /// `e{m,n}` (m, Some(n)), `e{m,}` (m, None).
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    /// `^` — start-of-text assertion.
    StartAnchor,
    /// `$` — end-of-text assertion.
    EndAnchor,
}

/// One member of a character class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Char(char),
    /// An inclusive range `lo-hi`.
    Range(char, char),
    /// `\d` / `\w` / `\s` (and their negations) inside a class.
    Digit,
    Word,
    Space,
    NotDigit,
    NotWord,
    NotSpace,
}

impl ClassItem {
    /// Whether `c` is a member of this item.
    pub fn contains(&self, c: char) -> bool {
        match *self {
            ClassItem::Char(x) => c == x,
            ClassItem::Range(lo, hi) => lo <= c && c <= hi,
            ClassItem::Digit => c.is_ascii_digit(),
            ClassItem::Word => c.is_alphanumeric() || c == '_',
            ClassItem::Space => c.is_whitespace(),
            ClassItem::NotDigit => !c.is_ascii_digit(),
            ClassItem::NotWord => !(c.is_alphanumeric() || c == '_'),
            ClassItem::NotSpace => !c.is_whitespace(),
        }
    }
}

/// Parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub position: usize,
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

/// Parse a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let ast = p.parse_alt()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok(ast)
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alt(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            seq.push(self.parse_repeat()?);
        }
        Ok(match seq.len() {
            0 => Ast::Empty,
            1 => seq.pop().expect("one node"),
            _ => Ast::Concat(seq),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseError> {
        let mut node = self.parse_atom()?;
        loop {
            let (min, max) = match self.peek() {
                Some('*') => (0, None),
                Some('+') => (1, None),
                Some('?') => (0, Some(1)),
                Some('{') if self.looks_like_bound() => {
                    self.bump();
                    let r = self.parse_bounds()?;
                    node = Ast::Repeat {
                        node: Box::new(node),
                        min: r.0,
                        max: r.1,
                    };
                    continue;
                }
                _ => break,
            };
            self.bump();
            node = Ast::Repeat {
                node: Box::new(node),
                min,
                max,
            };
        }
        Ok(node)
    }

    /// Parses the inside of `{m}`, `{m,}`, `{m,n}`; the `{` is consumed.
    fn parse_bounds(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let min = self.parse_number()?;
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                Some(self.parse_number()?)
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err(self.err("expected '}' in repetition"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(self.err("repetition max below min"));
            }
        }
        Ok((min, max))
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse()
            .map_err(|_| self.err("repetition count too large"))
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            None => Err(self.err("expected atom, found end of pattern")),
            Some('(') => {
                self.bump();
                let inner = self.parse_alt()?;
                if !self.eat(')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                self.parse_class()
            }
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('\\') => {
                self.bump();
                self.parse_escape()
            }
            Some(c @ ('*' | '+' | '?' | '{')) if c != '{' || self.looks_like_bound() => {
                Err(self.err("quantifier with nothing to repeat"))
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
        }
    }

    /// Distinguish `a{2}` (bound) from a literal `{` such as in `f{oo`.
    /// A `{` is only a quantifier when followed by digits and a closing form.
    fn looks_like_bound(&self) -> bool {
        let mut i = self.pos + 1;
        let mut saw_digit = false;
        while let Some(&c) = self.chars.get(i) {
            match c {
                '0'..='9' => {
                    saw_digit = true;
                    i += 1;
                }
                ',' => {
                    i += 1;
                }
                '}' => return saw_digit,
                _ => return false,
            }
        }
        false
    }

    fn parse_escape(&mut self) -> Result<Ast, ParseError> {
        let Some(c) = self.bump() else {
            return Err(self.err("dangling escape"));
        };
        let class = |item| Ast::Class {
            negated: false,
            items: vec![item],
        };
        Ok(match c {
            'd' => class(ClassItem::Digit),
            'D' => class(ClassItem::NotDigit),
            'w' => class(ClassItem::Word),
            'W' => class(ClassItem::NotWord),
            's' => class(ClassItem::Space),
            'S' => class(ClassItem::NotSpace),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            other => Ast::Literal(other),
        })
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(']') if !items.is_empty() => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    let Some(c) = self.bump() else {
                        return Err(self.err("dangling escape in class"));
                    };
                    items.push(match c {
                        'd' => ClassItem::Digit,
                        'D' => ClassItem::NotDigit,
                        'w' => ClassItem::Word,
                        'W' => ClassItem::NotWord,
                        's' => ClassItem::Space,
                        'S' => ClassItem::NotSpace,
                        'n' => ClassItem::Char('\n'),
                        't' => ClassItem::Char('\t'),
                        other => ClassItem::Char(other),
                    });
                }
                Some(lo) => {
                    self.bump();
                    // A `-` is a range only when a plain char follows and the
                    // class isn't ending (`[a-]` keeps `-` literal).
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']')
                    {
                        self.bump(); // consume '-'
                        let Some(hi) = self.bump() else {
                            return Err(self.err("unterminated range"));
                        };
                        if hi == '\\' {
                            return Err(self.err("escape not allowed as range end"));
                        }
                        if hi < lo {
                            return Err(self.err("invalid range (end < start)"));
                        }
                        items.push(ClassItem::Range(lo, hi));
                    } else {
                        items.push(ClassItem::Char(lo));
                    }
                }
            }
        }
        Ok(Ast::Class { negated, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn precedence_alt_over_concat() {
        let ast = parse("ab|c").unwrap();
        match ast {
            Ast::Alternate(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected alternate, got {other:?}"),
        }
    }

    #[test]
    fn class_items() {
        let ast = parse("[a-z9 .]").unwrap();
        match ast {
            Ast::Class { negated, items } => {
                assert!(!negated);
                assert_eq!(
                    items,
                    vec![
                        ClassItem::Range('a', 'z'),
                        ClassItem::Char('9'),
                        ClassItem::Char(' '),
                        ClassItem::Char('.'),
                    ]
                );
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn leading_close_bracket_is_literal() {
        // `[]a]` — the first `]` is a literal member because the class may not
        // be empty.
        let ast = parse("[]a]").unwrap();
        match ast {
            Ast::Class { items, .. } => {
                assert_eq!(items, vec![ClassItem::Char(']'), ClassItem::Char('a')]);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let ast = parse("[a-]").unwrap();
        match ast {
            Ast::Class { items, .. } => {
                assert_eq!(items, vec![ClassItem::Char('a'), ClassItem::Char('-')]);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn literal_brace_when_not_a_bound() {
        assert!(parse("a{b}").is_ok());
        assert!(parse("{x").is_ok());
    }

    #[test]
    fn nested_repeat() {
        let ast = parse("a**").unwrap();
        match ast {
            Ast::Repeat { node, .. } => match *node {
                Ast::Repeat { .. } => {}
                other => panic!("expected nested repeat, got {other:?}"),
            },
            other => panic!("expected repeat, got {other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        let e = parse("ab(").unwrap_err();
        assert_eq!(e.position, 3);
    }
}
