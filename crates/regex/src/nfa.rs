//! Thompson construction and NFA simulation.
//!
//! States are stored in a flat `Vec`; transitions reference states by index.
//! Simulation advances a deduplicated set of live states one input character
//! at a time, which bounds matching to `O(text · states)` regardless of the
//! pattern (no backtracking).

use crate::ast::{Ast, ClassItem};

/// One NFA state.
#[derive(Debug, Clone)]
enum State {
    /// Consume one character matching the predicate, then go to `next`.
    Char { pred: Pred, next: u32 },
    /// Fork into two ε-successors.
    Split(u32, u32),
    /// ε-transition gated on an anchor assertion.
    Assert { kind: Assert, next: u32 },
    /// Accepting state.
    Match,
}

#[derive(Debug, Clone)]
enum Pred {
    Literal(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
}

impl Pred {
    fn matches(&self, c: char) -> bool {
        match self {
            Pred::Literal(x) => c == *x,
            Pred::Any => true,
            Pred::Class { negated, items } => {
                let inside = items.iter().any(|it| it.contains(c));
                inside != *negated
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assert {
    Start,
    End,
}

/// A compiled ε-NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<State>,
    start: u32,
    /// True when every path from the start begins with a `^` assertion, which
    /// lets searches skip all non-zero starting offsets.
    anchored_start: bool,
}

/// A compilation fragment: entry state plus the dangling exits that must be
/// patched to point at whatever follows the fragment.
struct Frag {
    start: u32,
    /// (state index, which output of a Split: 0 = first, 1 = second).
    outs: Vec<(u32, u8)>,
}

impl Nfa {
    /// Compile an AST into an NFA (Thompson construction).
    pub fn compile(ast: &Ast) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let frag = b.build(ast);
        let m = b.push(State::Match);
        b.patch(&frag.outs, m);
        let anchored_start = starts_with_anchor(ast);
        Nfa {
            states: b.states,
            start: frag.start,
            anchored_start,
        }
    }

    /// Whether the pattern can only ever match at the start of the text.
    pub fn anchored_start(&self) -> bool {
        self.anchored_start
    }

    /// Longest match beginning exactly at `start`; returns the end offset
    /// (half-open) of the longest accepting prefix, or `None`.
    pub fn longest_match_at(&self, chars: &[char], start: usize) -> Option<usize> {
        let mut current: Vec<u32> = Vec::with_capacity(16);
        let mut next: Vec<u32> = Vec::with_capacity(16);
        let mut on_list = vec![u32::MAX; self.states.len()];
        let mut generation: u32 = 0;

        let mut best: Option<usize> = None;
        self.add_state(
            self.start,
            start,
            chars.len(),
            &mut current,
            &mut on_list,
            generation,
        );
        if current
            .iter()
            .any(|&s| matches!(self.states[s as usize], State::Match))
        {
            best = Some(start);
        }

        for (offset, &c) in chars[start..].iter().enumerate() {
            let at = start + offset;
            if current.is_empty() {
                break;
            }
            generation += 1;
            next.clear();
            for &s in &current {
                if let State::Char { pred, next: n } = &self.states[s as usize] {
                    if pred.matches(c) {
                        self.add_state(
                            *n,
                            at + 1,
                            chars.len(),
                            &mut next,
                            &mut on_list,
                            generation,
                        );
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
            if current
                .iter()
                .any(|&s| matches!(self.states[s as usize], State::Match))
            {
                best = Some(at + 1);
            }
        }
        best
    }

    /// ε-closure insertion with duplicate suppression via a generation array.
    fn add_state(
        &self,
        s: u32,
        pos: usize,
        len: usize,
        list: &mut Vec<u32>,
        on_list: &mut [u32],
        generation: u32,
    ) {
        if on_list[s as usize] == generation {
            return;
        }
        on_list[s as usize] = generation;
        match &self.states[s as usize] {
            State::Split(a, b) => {
                self.add_state(*a, pos, len, list, on_list, generation);
                self.add_state(*b, pos, len, list, on_list, generation);
            }
            State::Assert { kind, next } => {
                let ok = match kind {
                    Assert::Start => pos == 0,
                    Assert::End => pos == len,
                };
                if ok {
                    self.add_state(*next, pos, len, list, on_list, generation);
                }
            }
            State::Char { .. } | State::Match => list.push(s),
        }
    }

    /// Number of states (used by benches to report pattern complexity).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn push(&mut self, s: State) -> u32 {
        self.states.push(s);
        (self.states.len() - 1) as u32
    }

    fn patch(&mut self, outs: &[(u32, u8)], target: u32) {
        for &(idx, which) in outs {
            match &mut self.states[idx as usize] {
                State::Char { next, .. } | State::Assert { next, .. } => *next = target,
                State::Split(a, b) => {
                    if which == 0 {
                        *a = target;
                    } else {
                        *b = target;
                    }
                }
                State::Match => unreachable!("match states have no exits"),
            }
        }
    }

    fn build(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty => {
                // A Split with both branches dangling to the same exit acts
                // as a pure forward ε-edge.
                let s = self.push(State::Split(u32::MAX, u32::MAX));
                Frag {
                    start: s,
                    outs: vec![(s, 0), (s, 1)],
                }
            }
            Ast::Literal(c) => {
                let s = self.push(State::Char {
                    pred: Pred::Literal(*c),
                    next: u32::MAX,
                });
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::AnyChar => {
                let s = self.push(State::Char {
                    pred: Pred::Any,
                    next: u32::MAX,
                });
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::Class { negated, items } => {
                let s = self.push(State::Char {
                    pred: Pred::Class {
                        negated: *negated,
                        items: items.clone(),
                    },
                    next: u32::MAX,
                });
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::StartAnchor => {
                let s = self.push(State::Assert {
                    kind: Assert::Start,
                    next: u32::MAX,
                });
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::EndAnchor => {
                let s = self.push(State::Assert {
                    kind: Assert::End,
                    next: u32::MAX,
                });
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::Concat(seq) => {
                let mut start: Option<u32> = None;
                let mut outs: Vec<(u32, u8)> = Vec::new();
                for a in seq {
                    let frag = self.build(a);
                    if start.is_none() {
                        start = Some(frag.start);
                    } else {
                        self.patch(&outs, frag.start);
                    }
                    outs = frag.outs;
                }
                Frag {
                    start: start.expect("concat is non-empty"),
                    outs,
                }
            }
            Ast::Alternate(branches) => {
                let mut iter = branches.iter();
                let first = self.build(iter.next().expect("alt is non-empty"));
                let mut start = first.start;
                let mut outs = first.outs;
                for br in iter {
                    let frag = self.build(br);
                    let split = self.push(State::Split(start, frag.start));
                    start = split;
                    outs.extend(frag.outs);
                }
                Frag { start, outs }
            }
            Ast::Repeat { node, min, max } => self.build_repeat(node, *min, *max),
        }
    }

    fn build_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Frag {
        match (min, max) {
            (0, None) => {
                // e* : split -> (e -> split) | out
                let split = self.push(State::Split(u32::MAX, u32::MAX));
                let inner = self.build(node);
                self.patch(&[(split, 0)], inner.start);
                self.patch(&inner.outs, split);
                Frag {
                    start: split,
                    outs: vec![(split, 1)],
                }
            }
            (1, None) => {
                // e+ : e -> split -> (back to e) | out
                let inner = self.build(node);
                let split = self.push(State::Split(inner.start, u32::MAX));
                self.patch(&inner.outs, split);
                Frag {
                    start: inner.start,
                    outs: vec![(split, 1)],
                }
            }
            (0, Some(1)) => {
                // e? : split -> e | out
                let inner = self.build(node);
                let split = self.push(State::Split(inner.start, u32::MAX));
                let mut outs = inner.outs;
                outs.push((split, 1));
                Frag { start: split, outs }
            }
            (m, opt_n) => {
                // General {m,n}: m mandatory copies, then either (n-m)
                // optional copies or a trailing star. Pattern sizes in KOKO
                // queries are tiny, so copy-expansion is fine.
                let mut outs: Vec<(u32, u8)> = Vec::new();
                let mut start: Option<u32> = None;
                fn attach(
                    builder: &mut Builder,
                    frag: Frag,
                    start: &mut Option<u32>,
                    outs: &mut Vec<(u32, u8)>,
                ) {
                    if start.is_some() {
                        builder.patch(outs, frag.start);
                    } else {
                        *start = Some(frag.start);
                    }
                    *outs = frag.outs;
                }
                for _ in 0..m {
                    let frag = self.build(node);
                    attach(self, frag, &mut start, &mut outs);
                }
                match opt_n {
                    Some(n) => {
                        let mut optional_exits: Vec<(u32, u8)> = Vec::new();
                        for _ in m..n {
                            let inner = self.build(node);
                            let split = self.push(State::Split(inner.start, u32::MAX));
                            let frag = Frag {
                                start: split,
                                outs: inner.outs,
                            };
                            optional_exits.push((split, 1));
                            attach(self, frag, &mut start, &mut outs);
                        }
                        outs.extend(optional_exits);
                    }
                    None => {
                        let star = self.build_repeat(node, 0, None);
                        attach(self, star, &mut start, &mut outs);
                    }
                }
                match start {
                    Some(s) => Frag { start: s, outs },
                    None => {
                        // {0,0}: matches the empty string.
                        let s = self.push(State::Split(u32::MAX, u32::MAX));
                        Frag {
                            start: s,
                            outs: vec![(s, 0), (s, 1)],
                        }
                    }
                }
            }
        }
    }
}

/// Conservatively detect patterns that must match at text start.
fn starts_with_anchor(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor => true,
        Ast::Concat(seq) => seq.first().is_some_and(starts_with_anchor),
        Ast::Alternate(branches) => branches.iter().all(starts_with_anchor),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn longest(pattern: &str, text: &str) -> Option<usize> {
        let nfa = Nfa::compile(&parse(pattern).unwrap());
        let chars: Vec<char> = text.chars().collect();
        nfa.longest_match_at(&chars, 0)
    }

    #[test]
    fn longest_prefix_semantics() {
        assert_eq!(longest("a*", "aaab"), Some(3));
        assert_eq!(longest("a*", "b"), Some(0));
        assert_eq!(
            longest("ab|abc", "abcd"),
            Some(3),
            "longest wins over order"
        );
    }

    #[test]
    fn anchored_detection() {
        assert!(Nfa::compile(&parse("^ab").unwrap()).anchored_start());
        assert!(Nfa::compile(&parse("^a|^b").unwrap()).anchored_start());
        assert!(!Nfa::compile(&parse("a^b|^c").unwrap()).anchored_start());
        assert!(!Nfa::compile(&parse("ab").unwrap()).anchored_start());
    }

    #[test]
    fn bounded_copies() {
        assert_eq!(longest("a{2,4}", "aaaaa"), Some(4));
        assert_eq!(longest("a{2,4}", "a"), None);
        assert_eq!(longest("a{0,2}b", "b"), Some(1));
        assert_eq!(longest("a{2,}", "aaaa"), Some(4));
    }

    #[test]
    fn state_count_is_linear() {
        let nfa = Nfa::compile(&parse("(a|b)*c{2,3}[x-z]+").unwrap());
        assert!(nfa.num_states() < 32, "got {}", nfa.num_states());
    }
}
