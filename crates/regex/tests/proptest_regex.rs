//! Differential property tests: the NFA engine must agree with a naive
//! backtracking reference matcher on randomly generated small patterns.

use koko_regex::{parse, Ast, ClassItem, Regex};
use proptest::prelude::*;

/// Naive exponential-time reference semantics over the parsed AST.
fn reference_match(ast: &Ast, text: &[char]) -> bool {
    fn go(
        ast: &Ast,
        text: &[char],
        pos: usize,
        len: usize,
        k: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match ast {
            Ast::Empty => k(pos),
            Ast::Literal(c) => pos < text.len() && text[pos] == *c && k(pos + 1),
            Ast::AnyChar => pos < text.len() && k(pos + 1),
            Ast::Class { negated, items } => {
                pos < text.len() && {
                    let inside = items.iter().any(|i| i.contains(text[pos]));
                    inside != *negated && k(pos + 1)
                }
            }
            Ast::StartAnchor => pos == 0 && k(pos),
            Ast::EndAnchor => pos == len && k(pos),
            Ast::Concat(seq) => {
                fn chain(
                    seq: &[Ast],
                    text: &[char],
                    pos: usize,
                    len: usize,
                    k: &mut dyn FnMut(usize) -> bool,
                ) -> bool {
                    match seq.split_first() {
                        None => k(pos),
                        Some((head, rest)) => {
                            go(head, text, pos, len, &mut |p| chain(rest, text, p, len, k))
                        }
                    }
                }
                chain(seq, text, pos, len, k)
            }
            Ast::Alternate(branches) => branches.iter().any(|b| go(b, text, pos, len, k)),
            Ast::Repeat { node, min, max } => {
                fn rep(
                    node: &Ast,
                    text: &[char],
                    pos: usize,
                    len: usize,
                    remaining_min: u32,
                    budget: Option<u32>,
                    k: &mut dyn FnMut(usize) -> bool,
                ) -> bool {
                    if remaining_min == 0 && k(pos) {
                        return true;
                    }
                    if budget == Some(0) {
                        return false;
                    }
                    go(node, text, pos, len, &mut |p| {
                        // Zero-width repetition guard.
                        if p == pos && remaining_min == 0 {
                            return false;
                        }
                        rep(
                            node,
                            text,
                            p,
                            len,
                            remaining_min.saturating_sub(1),
                            budget.map(|b| b - 1),
                            k,
                        )
                    })
                }
                rep(node, text, pos, len, *min, *max, k)
            }
        }
    }
    go(ast, text, 0, text.len(), &mut |p| p == text.len())
}

/// Random small patterns over the alphabet {a, b, c}.
fn arb_pattern() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just(".".to_string()),
        Just("[ab]".to_string()),
        Just("[^a]".to_string()),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
            inner.clone().prop_map(|a| format!("({a})*")),
            inner.clone().prop_map(|a| format!("({a})+")),
            inner.clone().prop_map(|a| format!("({a})?")),
            inner.prop_map(|a| format!("({a}){{1,2}}")),
        ]
    })
}

fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('d')],
        0..8,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nfa_agrees_with_reference(pattern in arb_pattern(), text in arb_text()) {
        let ast = parse(&pattern).expect("generated patterns are valid");
        let re = Regex::new(&pattern).expect("compiles");
        let chars: Vec<char> = text.chars().collect();
        let expected = reference_match(&ast, &chars);
        prop_assert_eq!(
            re.is_full_match(&text),
            expected,
            "pattern {:?} on {:?}",
            pattern,
            text
        );
    }

    #[test]
    fn search_is_consistent_with_full_match(pattern in arb_pattern(), text in arb_text()) {
        let re = Regex::new(&pattern).expect("compiles");
        // If the whole text matches, search must find something at 0.
        if re.is_full_match(&text) {
            let hit = re.search(&text);
            prop_assert!(hit.is_some());
            prop_assert_eq!(hit.expect("checked").0, 0);
        }
        // Every reported match must re-verify as a full match of its slice.
        if let Some((s, e)) = re.search(&text) {
            let chars: Vec<char> = text.chars().collect();
            let slice: String = chars[s..e].iter().collect();
            prop_assert!(re.is_full_match(&slice), "slice {:?}", slice);
        }
    }

    #[test]
    fn find_iter_matches_are_disjoint_and_ordered(pattern in arb_pattern(), text in arb_text()) {
        let re = Regex::new(&pattern).expect("compiles");
        let hits: Vec<(usize, usize)> = re.find_iter(&text).collect();
        for w in hits.windows(2) {
            prop_assert!(w[0].1 <= w[1].0 || (w[0].0 == w[0].1 && w[0].0 < w[1].0),
                "overlap: {:?}", hits);
        }
    }

    #[test]
    fn class_items_contain_what_they_say(c in any::<char>()) {
        prop_assert_eq!(ClassItem::Digit.contains(c), c.is_ascii_digit());
        prop_assert_eq!(ClassItem::NotDigit.contains(c), !c.is_ascii_digit());
        prop_assert_eq!(ClassItem::Space.contains(c), c.is_whitespace());
        prop_assert_eq!(ClassItem::Range('a', 'z').contains(c), c.is_ascii_lowercase());
    }
}
