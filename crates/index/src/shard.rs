//! The sharded index layer: contiguous document partitions, each with its
//! own [`KokoIndex`] and [`DocStore`], plus the [`ShardRouter`] that maps
//! global document / sentence ids onto shards.
//!
//! Sharding is KOKO's unit of parallelism (the shape Table 2's scale-up
//! experiment demands): index builds run per shard on worker threads, and
//! the query executor fans out over shards and merges partial results.
//! Because every document lives entirely inside one shard, all
//! per-sentence and per-document computations (index lookups, GSP
//! extraction, evidence aggregation) are shard-local; the only global
//! coordination required is id translation, which the router does in
//! O(log #shards).
//!
//! Ids come in two spaces:
//!
//! * **global** — document indices and [`Sid`]s over the whole corpus, as
//!   produced by [`Corpus`]; everything outside the shard layer speaks
//!   global ids.
//! * **local** — 0-based ids within one shard; each shard's `KokoIndex`
//!   and `DocStore` speak local ids. [`Shard::to_global_sid`] and friends
//!   translate.

use crate::koko::KokoIndex;
use koko_nlp::{Corpus, Document, Sid};
use koko_storage::{codec::fnv1a64, Codec, DecodeError, DocStore, SharedBytes, U64View};
use std::ops::Range;

/// Cheap per-shard statistics for bounding aggregation scores *before*
/// any document is loaded or extracted — the max-score/WAND-style side
/// table behind `ScoreDesc` top-k pruning.
///
/// Today it is the shard's lower-cased token vocabulary as a sorted,
/// deduplicated FNV-1a64 hash set: `has_token` answers "could this word
/// possibly occur anywhere in the shard?" in `O(log |vocab|)`. A score
/// bound derived from it is *necessary-condition* sound: a `false`
/// answer proves the condition can never fire in this shard, while a
/// `true` answer stays conservative (hash collisions and phrase order
/// are ignored — they can only make the bound looser, never unsound).
///
/// Stats are computed at shard build time and persisted as their own
/// snapshot section (format v3). They are deliberately *not* part of
/// [`Shard`]'s own [`Codec`] frame, so shard bytes stay identical across
/// versions; a shard decoded from a pre-v3 file simply has no stats and
/// queries fall back to the conservative bound.
#[derive(Debug, Clone, Default)]
pub struct ShardBoundStats {
    /// Sorted, deduplicated FNV-1a64 hashes of every distinct lower-cased
    /// token in the shard.
    token_hashes: HashStore,
}

/// Backing for the hash array: owned (built / decoded from a v1–3
/// payload) or a zero-copy `u64` view into a mapped v4 bounds section.
#[derive(Debug, Clone)]
enum HashStore {
    Owned(Vec<u64>),
    View(U64View),
}

impl Default for HashStore {
    fn default() -> Self {
        HashStore::Owned(Vec::new())
    }
}

impl PartialEq for ShardBoundStats {
    fn eq(&self, other: &ShardBoundStats) -> bool {
        self.hashes() == other.hashes()
    }
}
impl Eq for ShardBoundStats {}

impl ShardBoundStats {
    fn hashes(&self) -> &[u64] {
        match &self.token_hashes {
            HashStore::Owned(v) => v,
            HashStore::View(v) => v.as_slice(),
        }
    }
    /// Collect the token vocabulary of `docs` (the documents of one
    /// shard). Deterministic: depends only on the documents' tokens.
    pub fn from_docs(docs: &[std::sync::Arc<Document>]) -> ShardBoundStats {
        let mut token_hashes: Vec<u64> = docs
            .iter()
            .flat_map(|d| d.sentences.iter())
            .flat_map(|s| s.tokens.iter())
            .map(|t| fnv1a64(t.lower.as_bytes()))
            .collect();
        token_hashes.sort_unstable();
        token_hashes.dedup();
        ShardBoundStats {
            token_hashes: HashStore::Owned(token_hashes),
        }
    }

    /// Whether the (lower-cased) word could occur in the shard. `false`
    /// is a proof of absence; `true` is merely "not impossible".
    pub fn has_token(&self, lower: &str) -> bool {
        self.hashes()
            .binary_search(&fnv1a64(lower.as_bytes()))
            .is_ok()
    }

    /// Whether every word of a (lower-cased) sequence could occur in the
    /// shard — the feasibility gate for phrase/proximity conditions. An
    /// empty sequence is infeasible (no condition matches on nothing).
    pub fn has_all_tokens<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> bool {
        let mut any = false;
        for w in words {
            any = true;
            if !self.has_token(w) {
                return false;
            }
        }
        any
    }

    /// Distinct tokens tracked (diagnostics only).
    pub fn num_tokens(&self) -> usize {
        self.hashes().len()
    }

    /// Encode as a v4 `SEC_BOUNDS` section: `count (u64 LE)` then the
    /// sorted hashes as raw `u64 LE`s starting at byte 8. Because the
    /// section writer 8-aligns section starts, the hash array sits
    /// 8-aligned in the file and a mapped open can serve it as a
    /// [`U64View`] without copying. (The [`Codec`] frame — a `u32`-count
    /// `Vec<u64>` — is kept unchanged for v3 payloads; its 4-byte prefix
    /// is exactly what ruins alignment, hence the separate layout here.)
    pub fn encode_section(&self) -> Vec<u8> {
        let hashes = self.hashes();
        let mut out = Vec::with_capacity(8 + hashes.len() * 8);
        out.extend_from_slice(&(hashes.len() as u64).to_le_bytes());
        for h in hashes {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out
    }

    /// Decode a v4 `SEC_BOUNDS` section, serving the hash array as a
    /// zero-copy view when the backing is 8-aligned (mapped sections
    /// are) and falling back to an owned copy otherwise. Sortedness is
    /// validated in O(n) either way — hostile bytes must yield errors,
    /// not unsound bounds.
    pub fn decode_section(bytes: SharedBytes) -> Result<ShardBoundStats, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError(format!(
                "bounds section too short ({} bytes)",
                bytes.len()
            )));
        }
        let count = u64::from_le_bytes(bytes.as_slice()[..8].try_into().expect("sized"));
        let body = bytes.slice(8..bytes.len());
        if count.checked_mul(8) != Some(body.len() as u64) {
            return Err(DecodeError(format!(
                "bounds section declares {count} hashes but holds {} bytes",
                body.len()
            )));
        }
        let token_hashes = match U64View::new(body.clone()) {
            Some(view) => HashStore::View(view),
            None => HashStore::Owned(
                body.as_slice()
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
                    .collect(),
            ),
        };
        let stats = ShardBoundStats { token_hashes };
        if stats.hashes().windows(2).any(|w| w[0] >= w[1]) {
            return Err(DecodeError(
                "bound stats token hashes are not sorted and distinct".into(),
            ));
        }
        Ok(stats)
    }
}

/// Stats serialize as the sorted hash list — their own frame, appended to
/// the snapshot payload as a v3 section (never inside [`Shard`]'s frame).
impl Codec for ShardBoundStats {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        let hashes = self.hashes();
        (hashes.len() as u32).encode(buf);
        for h in hashes {
            h.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let token_hashes = Vec::<u64>::decode(input)?;
        if token_hashes.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DecodeError(
                "bound stats token hashes are not sorted and distinct".into(),
            ));
        }
        Ok(ShardBoundStats {
            token_hashes: HashStore::Owned(token_hashes),
        })
    }
}

/// A token-vocabulary view that can answer "could this word occur in the
/// covered document range?" — the interface score-bound derivation is
/// generic over, so one bound formula serves both shard-level
/// ([`ShardBoundStats`]) and block-level ([`BlockVocab`]) statistics.
///
/// `false` must be a proof of absence; `true` merely "not impossible"
/// (hash collisions stay conservative).
pub trait TokenVocab {
    /// Whether the (lower-cased) word could occur in the covered range.
    fn has_token(&self, lower: &str) -> bool;

    /// Whether every word of a (lower-cased) sequence could occur in the
    /// covered range. An empty sequence is infeasible (no condition
    /// matches on nothing).
    fn has_all_tokens<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> bool {
        let mut any = false;
        for w in words {
            any = true;
            if !self.has_token(w) {
                return false;
            }
        }
        any
    }
}

impl TokenVocab for ShardBoundStats {
    fn has_token(&self, lower: &str) -> bool {
        ShardBoundStats::has_token(self, lower)
    }
}

/// Documents per block-max block: each block of this many consecutive
/// local documents gets its own token vocabulary in [`BlockBoundStats`].
/// Small enough that one high-scoring document only "protects" its own
/// 32-doc neighbourhood from pruning — shards here typically hold a few
/// hundred documents, so this keeps several blocks per shard even at
/// small corpus scales; large enough that the per-block vocabularies
/// stay a small fraction of the shard's index size.
pub const BLOCK_DOCS: u32 = 32;

/// Per-block token statistics — the block-max refinement of
/// [`ShardBoundStats`]. The shard's documents are partitioned into fixed
/// blocks of [`BLOCK_DOCS`] consecutive local docs; each block records
/// its own sorted, deduplicated FNV-1a64 token-hash vocabulary, so the
/// ranked executor can bound the best score any document *in that block*
/// could reach and skip whole doc ranges that survive the coarser shard
/// bound.
///
/// Layout is one flat `u64` array (zero-copy out of a mapped v4
/// `SEC_BLOCKS` section):
///
/// ```text
/// [ block_size, num_blocks,
///   offsets[0..=num_blocks],   // hash-array offsets, offsets[0] == 0
///   hashes[..] ]               // per-block sorted distinct hashes
/// ```
///
/// Like the shard stats, blocks are *necessary-condition* sound and live
/// outside [`Shard`]'s codec frame; a snapshot without a blocks section
/// loads with `None` and queries fall back to shard-level bounds only —
/// byte-identical answers, just less pruning.
#[derive(Debug, Clone, Default)]
pub struct BlockBoundStats {
    /// The flat `u64` words described above.
    words: HashStore,
}

impl PartialEq for BlockBoundStats {
    fn eq(&self, other: &BlockBoundStats) -> bool {
        self.words() == other.words()
    }
}
impl Eq for BlockBoundStats {}

impl BlockBoundStats {
    fn words(&self) -> &[u64] {
        match &self.words {
            HashStore::Owned(v) => v,
            HashStore::View(v) => v.as_slice(),
        }
    }

    /// Collect per-block vocabularies for `docs` (the documents of one
    /// shard), `block_size` consecutive docs per block. Deterministic:
    /// depends only on the documents' tokens and the block size.
    pub fn from_docs(docs: &[std::sync::Arc<Document>], block_size: u32) -> BlockBoundStats {
        assert!(block_size >= 1, "block size must be positive");
        let num_blocks = docs.len().div_ceil(block_size as usize);
        let mut words: Vec<u64> = Vec::with_capacity(2 + num_blocks + 1);
        words.push(block_size as u64);
        words.push(num_blocks as u64);
        words.push(0); // offsets[0]
        let offsets_at = words.len() - 1;
        let mut hashes: Vec<u64> = Vec::new();
        for chunk in docs.chunks(block_size as usize) {
            let mut block: Vec<u64> = chunk
                .iter()
                .flat_map(|d| d.sentences.iter())
                .flat_map(|s| s.tokens.iter())
                .map(|t| fnv1a64(t.lower.as_bytes()))
                .collect();
            block.sort_unstable();
            block.dedup();
            hashes.extend_from_slice(&block);
            words.push(hashes.len() as u64);
        }
        debug_assert_eq!(words.len() - offsets_at, num_blocks + 1);
        words.extend_from_slice(&hashes);
        BlockBoundStats {
            words: HashStore::Owned(words),
        }
    }

    /// Documents per block.
    pub fn block_size(&self) -> u32 {
        self.words()[0] as u32
    }

    /// Number of blocks (`ceil(num_docs / block_size)`).
    pub fn num_blocks(&self) -> usize {
        self.words()[1] as usize
    }

    /// The block containing *local* document `local_doc`.
    pub fn block_of_doc(&self, local_doc: u32) -> usize {
        (local_doc / self.block_size()) as usize
    }

    fn offsets(&self) -> &[u64] {
        &self.words()[2..2 + self.num_blocks() + 1]
    }

    fn hashes(&self) -> &[u64] {
        &self.words()[2 + self.num_blocks() + 1..]
    }

    /// The token vocabulary of one block, as a [`TokenVocab`] the bound
    /// derivation can use in place of the shard-level stats.
    pub fn block(&self, block: usize) -> BlockVocab<'_> {
        let offsets = self.offsets();
        BlockVocab {
            hashes: &self.hashes()[offsets[block] as usize..offsets[block + 1] as usize],
        }
    }

    /// Total distinct (block, token) pairs tracked (diagnostics only).
    pub fn num_tokens(&self) -> usize {
        self.hashes().len()
    }

    /// Encode as a v4 `SEC_BLOCKS` section: the flat `u64` array as raw
    /// LE words. Section starts are 8-aligned, so a mapped open serves
    /// the whole array as a [`U64View`] without copying.
    pub fn encode_section(&self) -> Vec<u8> {
        let words = self.words();
        let mut out = Vec::with_capacity(words.len() * 8);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decode a v4 `SEC_BLOCKS` section, zero-copy when the backing is
    /// 8-aligned (mapped sections are) with an owned-copy fallback.
    /// Every structural invariant — offset monotonicity, hash-array
    /// extent, per-block sortedness — is validated in O(n): hostile
    /// bytes must yield errors, not unsound bounds.
    pub fn decode_section(bytes: SharedBytes) -> Result<BlockBoundStats, DecodeError> {
        if !bytes.len().is_multiple_of(8) {
            return Err(DecodeError(format!(
                "blocks section length {} is not a multiple of 8",
                bytes.len()
            )));
        }
        let words = match U64View::new(bytes.clone()) {
            Some(view) => HashStore::View(view),
            None => HashStore::Owned(
                bytes
                    .as_slice()
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
                    .collect(),
            ),
        };
        let stats = BlockBoundStats { words };
        let words = stats.words();
        if words.len() < 3 {
            return Err(DecodeError(format!(
                "blocks section holds {} words, need at least 3",
                words.len()
            )));
        }
        if words[0] == 0 || words[0] > u32::MAX as u64 {
            return Err(DecodeError(format!("bad block size {}", words[0])));
        }
        let num_blocks = words[1];
        let header_words = (num_blocks as usize)
            .checked_add(3)
            .filter(|&n| n <= words.len());
        if header_words.is_none() {
            return Err(DecodeError(format!(
                "blocks section declares {num_blocks} blocks but holds {} words",
                words.len()
            )));
        }
        let offsets = stats.offsets();
        let hashes = stats.hashes();
        if offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || *offsets.last().expect("nonempty") != hashes.len() as u64
        {
            return Err(DecodeError(
                "blocks section offsets are not a monotone cover of the hash array".into(),
            ));
        }
        for b in 0..stats.num_blocks() {
            if stats.block(b).hashes.windows(2).any(|w| w[0] >= w[1]) {
                return Err(DecodeError(format!(
                    "block {b} token hashes are not sorted and distinct"
                )));
            }
        }
        Ok(stats)
    }
}

/// One block's token vocabulary — a borrowed [`TokenVocab`] over the
/// block's sorted hash slice. See [`BlockBoundStats::block`].
#[derive(Debug, Clone, Copy)]
pub struct BlockVocab<'a> {
    hashes: &'a [u64],
}

impl TokenVocab for BlockVocab<'_> {
    fn has_token(&self, lower: &str) -> bool {
        self.hashes
            .binary_search(&fnv1a64(lower.as_bytes()))
            .is_ok()
    }
}

/// One contiguous document partition with its own index and store.
#[derive(Debug, Clone)]
pub struct Shard {
    id: usize,
    /// Global document range `[start, end)` this shard covers.
    docs: Range<u32>,
    /// Global sentence-id range `[start, end)` this shard covers.
    sids: Range<Sid>,
    /// Multi-index over the shard's sentences, in *local* sid space.
    index: KokoIndex,
    /// Encoded articles, addressed by *local* document index.
    store: DocStore,
    /// Score-bound statistics (see [`ShardBoundStats`]). Always present
    /// on built shards; `None` after decoding a pre-v3 snapshot (queries
    /// then use the conservative bound). Excluded from the shard's own
    /// codec frame so shard bytes are version-independent.
    bounds: Option<ShardBoundStats>,
    /// Block-max statistics (see [`BlockBoundStats`]). Always present on
    /// built shards; `None` after decoding a snapshot without a blocks
    /// section (queries then prune at shard granularity only). Excluded
    /// from the codec frame, like `bounds`.
    blocks: Option<BlockBoundStats>,
    /// *Local* first-sentence-id per local document, plus one sentinel
    /// holding the shard's sentence count — the shard-local analogue of
    /// `Corpus::doc_first_sid`, so the executor can translate sid↔doc
    /// without materializing a global `Corpus`. Derived state (from
    /// documents at build, from store blob headers at decode), never
    /// part of the codec frame: shard bytes stay version-independent.
    doc_sid_starts: Vec<Sid>,
}

impl Shard {
    /// Build the index and document store for global docs `docs` of
    /// `corpus`. Pure: shard builds can run concurrently on `&Corpus`.
    pub fn build(id: usize, corpus: &Corpus, docs: Range<u32>) -> Shard {
        let sid_start = if docs.is_empty() {
            0
        } else {
            corpus.doc_sids(docs.start).start
        };
        let slice = &corpus.documents()[docs.start as usize..docs.end as usize];
        Shard::build_from_docs(id, slice, docs.start, sid_start)
    }

    /// Build a shard directly from already-parsed documents occupying the
    /// global ranges `[doc_start, doc_start + docs.len())` /
    /// `[sid_start, sid_start + Σ sentences)` — the **delta shard** path:
    /// incremental ingest appends documents past the end of an existing
    /// corpus, where no enclosing `Corpus` exists yet. Produces exactly
    /// the shard [`Shard::build`] would for the same documents at the same
    /// position, so delta shards are indistinguishable from base shards to
    /// the query executor. Documents are shared, never copied.
    pub fn build_from_docs(
        id: usize,
        docs: &[std::sync::Arc<Document>],
        doc_start: u32,
        sid_start: Sid,
    ) -> Shard {
        let n_sents: usize = docs.iter().map(|d| d.sentences.len()).sum();
        let doc_range = doc_start..doc_start + docs.len() as u32;
        let sids = sid_start..sid_start + n_sents as Sid;
        // The local corpus re-bases sentence ids to 0; document payloads
        // (including their global `Document::id`) are untouched.
        let local = Corpus::from_shared(docs.to_vec());
        let index = KokoIndex::build(&local);
        let mut store = DocStore::new();
        for d in docs {
            store.put(d);
        }
        let bounds = Some(ShardBoundStats::from_docs(docs));
        let blocks = Some(BlockBoundStats::from_docs(docs, BLOCK_DOCS));
        let mut doc_sid_starts = Vec::with_capacity(docs.len() + 1);
        let mut at: Sid = 0;
        for d in docs {
            doc_sid_starts.push(at);
            at += d.sentences.len() as Sid;
        }
        doc_sid_starts.push(at);
        Shard {
            id,
            docs: doc_range,
            sids,
            index,
            store,
            bounds,
            blocks,
            doc_sid_starts,
        }
    }

    /// Assemble a shard from decoded parts, running every structural
    /// validation of the decode path. This is the single entry point for
    /// both the payload-framed [`Codec::decode`] and the v4 sectioned
    /// open, so the two loaders cannot drift: inverted ranges, a store
    /// whose document count disagrees with the doc range, and an index
    /// whose sentence count disagrees with the sid range are all
    /// structured errors. Per-document sentence offsets are rebuilt in
    /// O(docs) from the store's blob headers without decoding articles.
    pub fn assemble(
        id: usize,
        docs: Range<u32>,
        sids: Range<Sid>,
        index: KokoIndex,
        store: DocStore,
        bounds: Option<ShardBoundStats>,
    ) -> Result<Shard, DecodeError> {
        if docs.start > docs.end || sids.start > sids.end {
            return Err(DecodeError(format!(
                "shard {id} has inverted ranges (docs {docs:?}, sids {sids:?})"
            )));
        }
        if store.len() != docs.len() {
            return Err(DecodeError(format!(
                "shard {id} stores {} documents for a range of {}",
                store.len(),
                docs.len()
            )));
        }
        if index.num_sentences() as usize != sids.len() {
            // Local sids map 1:1 onto the shard's global sid range; a
            // larger index would emit sids past the corpus end mid-query.
            return Err(DecodeError(format!(
                "shard {id} index covers {} sentences for a sid range of {}",
                index.num_sentences(),
                sids.len()
            )));
        }
        let mut doc_sid_starts = Vec::with_capacity(store.len() + 1);
        let mut at: Sid = 0;
        for local in 0..store.len() as u32 {
            doc_sid_starts.push(at);
            at += store.sentence_count(local)? as Sid;
        }
        doc_sid_starts.push(at);
        if at as usize != sids.len() {
            return Err(DecodeError(format!(
                "shard {id} documents hold {at} sentences for a sid range of {}",
                sids.len()
            )));
        }
        Ok(Shard {
            id,
            docs,
            sids,
            index,
            store,
            bounds,
            blocks: None,
            doc_sid_starts,
        })
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Global document range `[start, end)`.
    pub fn doc_range(&self) -> Range<u32> {
        self.docs.clone()
    }

    /// Global sentence-id range `[start, end)`.
    pub fn sid_range(&self) -> Range<Sid> {
        self.sids.clone()
    }

    pub fn num_documents(&self) -> usize {
        self.docs.len()
    }

    pub fn num_sentences(&self) -> usize {
        self.sids.len()
    }

    /// The shard-local multi-index (local sid space).
    pub fn index(&self) -> &KokoIndex {
        &self.index
    }

    /// The shard-local document store (local doc indices).
    pub fn store(&self) -> &DocStore {
        &self.store
    }

    pub fn to_global_sid(&self, local: Sid) -> Sid {
        self.sids.start + local
    }

    pub fn to_local_sid(&self, global: Sid) -> Sid {
        debug_assert!(self.sids.contains(&global));
        global - self.sids.start
    }

    pub fn to_global_doc(&self, local: u32) -> u32 {
        self.docs.start + local
    }

    pub fn to_local_doc(&self, global: u32) -> u32 {
        debug_assert!(self.docs.contains(&global));
        global - self.docs.start
    }

    /// Decode one article by *global* document id (the per-shard
    /// `LoadArticle` path).
    pub fn load_document(&self, global_doc: u32) -> Result<Document, DecodeError> {
        self.store.load(self.to_local_doc(global_doc))
    }

    /// The *global* document owning *global* sentence `sid` — the
    /// shard-local replacement for `Corpus::doc_of`, so the default
    /// (store-backed) query path never materializes a global corpus.
    /// `O(log docs)`; sids of empty documents resolve to the following
    /// non-empty owner, exactly as in `Corpus::doc_of`.
    pub fn doc_of_sid(&self, sid: Sid) -> u32 {
        let local = self.to_local_sid(sid);
        let idx = self.doc_sid_starts.partition_point(|&s| s <= local) - 1;
        self.docs.start + idx as u32
    }

    /// The *global* first sentence id of *global* document `global_doc`
    /// (the shard-local replacement for `Corpus::doc_sids(d).start`).
    pub fn doc_first_sid(&self, global_doc: u32) -> Sid {
        self.sids.start + self.doc_sid_starts[self.to_local_doc(global_doc) as usize]
    }

    /// Approximate footprint of the shard's index structures.
    pub fn approx_index_bytes(&self) -> usize {
        self.index.approx_bytes()
    }

    /// Score-bound statistics, if available. Built shards always carry
    /// them; shards decoded from pre-v3 snapshots return `None` and the
    /// executor falls back to the conservative (weights-only) bound.
    pub fn bound_stats(&self) -> Option<&ShardBoundStats> {
        self.bounds.as_ref()
    }

    /// Attach bound statistics decoded from a snapshot's stats section
    /// (the load path — stats travel outside the shard's codec frame).
    pub fn set_bound_stats(&mut self, stats: Option<ShardBoundStats>) {
        self.bounds = stats;
    }

    /// Block-max statistics, if available. Built shards always carry
    /// them; shards decoded from snapshots without a blocks section
    /// return `None` and the ranked executor prunes at shard granularity
    /// only.
    pub fn block_stats(&self) -> Option<&BlockBoundStats> {
        self.blocks.as_ref()
    }

    /// Attach block-max statistics decoded from a snapshot's blocks
    /// section (the load path — like [`Shard::set_bound_stats`], blocks
    /// travel outside the shard's codec frame).
    pub fn set_block_stats(&mut self, blocks: Option<BlockBoundStats>) {
        self.blocks = blocks;
    }

    /// Encode the v4 `SEC_SHARD` section: the shard's identity + ranges +
    /// index frame, *without* the document store (which gets its own
    /// `SEC_STORE` section so article bytes can stay unmaterialized in
    /// the mapping until first load).
    pub fn encode_meta_section(&self) -> Vec<u8> {
        let mut buf = bytes::BytesMut::new();
        (self.id as u64).encode(&mut buf);
        self.docs.start.encode(&mut buf);
        self.docs.end.encode(&mut buf);
        self.sids.start.encode(&mut buf);
        self.sids.end.encode(&mut buf);
        self.index.encode(&mut buf);
        buf.to_vec()
    }

    /// Rebuild a shard from its v4 sections: the `SEC_SHARD` meta bytes,
    /// the `SEC_STORE` bytes (decoded as zero-copy views into the
    /// backing), and optional pre-decoded bounds / block-max stats.
    /// Validation is shared with the payload path via
    /// [`Shard::assemble`]; blocks are additionally checked to cover the
    /// shard's document range exactly.
    pub fn decode_sections(
        meta: &[u8],
        store_bytes: SharedBytes,
        bounds: Option<ShardBoundStats>,
        blocks: Option<BlockBoundStats>,
    ) -> Result<Shard, DecodeError> {
        let input = &mut &meta[..];
        let id = u64::decode(input)? as usize;
        let docs = u32::decode(input)?..u32::decode(input)?;
        let sids = Sid::decode(input)?..Sid::decode(input)?;
        let index = KokoIndex::decode(input)?;
        if !input.is_empty() {
            return Err(DecodeError(format!(
                "shard {id} meta section has {} trailing bytes",
                input.len()
            )));
        }
        let store = DocStore::decode_view(store_bytes)?;
        let mut shard = Shard::assemble(id, docs, sids, index, store, bounds)?;
        if let Some(b) = &blocks {
            let expected = shard.num_documents().div_ceil(b.block_size() as usize);
            if b.num_blocks() != expected {
                return Err(DecodeError(format!(
                    "shard {id} blocks section covers {} blocks for {} documents \
                     at block size {} (expected {expected})",
                    b.num_blocks(),
                    shard.num_documents(),
                    b.block_size()
                )));
            }
        }
        shard.set_block_stats(blocks);
        Ok(shard)
    }
}

/// A shard serializes as its metadata plus its index and store, so a
/// loaded shard answers queries without touching the original text. Shards
/// encode/decode independently — the snapshot layer runs them in parallel.
impl Codec for Shard {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        (self.id as u64).encode(buf);
        self.docs.start.encode(buf);
        self.docs.end.encode(buf);
        self.sids.start.encode(buf);
        self.sids.end.encode(buf);
        self.index.encode(buf);
        self.store.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let id = u64::decode(input)? as usize;
        let docs = u32::decode(input)?..u32::decode(input)?;
        let sids = Sid::decode(input)?..Sid::decode(input)?;
        let index = KokoIndex::decode(input)?;
        let store = DocStore::decode(input)?;
        // Stats live in the snapshot's own v3 section; the loader
        // attaches them after decode. Absent ⇒ conservative bounds.
        Shard::assemble(id, docs, sids, index, store, None)
    }
}

/// The router serializes its boundary arrays directly (it could be rebuilt
/// from the shard list, but persisting it keeps load independent of shard
/// decode order and costs a few bytes).
impl Codec for ShardRouter {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.doc_starts.encode(buf);
        self.sid_starts.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let router = ShardRouter {
            doc_starts: Vec::decode(input)?,
            sid_starts: Vec::decode(input)?,
        };
        if router.doc_starts.is_empty() || router.sid_starts.len() != router.doc_starts.len() {
            return Err(DecodeError("malformed shard router".into()));
        }
        Ok(router)
    }
}

/// Plan contiguous, sentence-balanced document ranges for `num_shards`
/// shards (`0` = one per available core). Never returns an empty range
/// except for the single shard of an empty corpus; the shard count is
/// clamped to the document count.
pub fn plan_shards(corpus: &Corpus, num_shards: usize) -> Vec<Range<u32>> {
    let n_docs = corpus.num_documents() as u32;
    if n_docs == 0 {
        let empty: Range<u32> = 0..0;
        return vec![empty];
    }
    let k = koko_par::resolve_threads(num_shards, n_docs as usize) as u32;
    let total_sents = corpus.num_sentences() as u64;

    let mut ranges = Vec::with_capacity(k as usize);
    let mut start = 0u32;
    for i in 0..k {
        // Cut shard i at the first doc whose prefix sentence count reaches
        // the i+1-th quantile, but always leave ≥1 doc per remaining shard.
        let remaining_shards = k - i;
        let max_end = n_docs - (remaining_shards - 1);
        let target = total_sents * (i as u64 + 1) / k as u64;
        let mut end = start + 1;
        while end < max_end && (corpus.doc_sids(end - 1).end as u64) < target {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, n_docs);
    ranges
}

/// Build all shards for `corpus`, in parallel when `threads != 1`
/// (`0` = auto). Deterministic: shard boundaries and contents depend only
/// on the corpus and the shard count.
pub fn build_shards(corpus: &Corpus, num_shards: usize, threads: usize) -> Vec<Shard> {
    let plan = plan_shards(corpus, num_shards);
    koko_par::par_map(&plan, threads, |i, range| {
        Shard::build(i, corpus, range.clone())
    })
}

/// Maps global document / sentence ids to shard indices by binary search
/// over the (sorted, disjoint) shard boundaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardRouter {
    /// `doc_starts[i]` is shard i's first global doc; one extra sentinel
    /// holds the total doc count. Same layout for sids.
    doc_starts: Vec<u32>,
    sid_starts: Vec<Sid>,
}

impl ShardRouter {
    /// Compute the routing tables from a shard list. Generic over the
    /// element's ownership (`Shard`, `Arc<Shard>`, …) because the live
    /// engine shares base shards across generations behind `Arc` — this is
    /// the "router remapping" step run after every delta append/compaction.
    pub fn from_shards<S: std::borrow::Borrow<Shard>>(shards: &[S]) -> ShardRouter {
        let mut doc_starts: Vec<u32> = shards.iter().map(|s| s.borrow().docs.start).collect();
        let mut sid_starts: Vec<Sid> = shards.iter().map(|s| s.borrow().sids.start).collect();
        doc_starts.push(shards.last().map_or(0, |s| s.borrow().docs.end));
        sid_starts.push(shards.last().map_or(0, |s| s.borrow().sids.end));
        ShardRouter {
            doc_starts,
            sid_starts,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.doc_starts.len() - 1
    }

    /// Total documents routed (the sentinel entry) — lets callers report
    /// corpus size without materializing any shard or corpus.
    pub fn num_documents(&self) -> usize {
        *self.doc_starts.last().unwrap_or(&0) as usize
    }

    /// Total sentences routed (the sentinel entry).
    pub fn num_sentences(&self) -> usize {
        *self.sid_starts.last().unwrap_or(&0) as usize
    }

    /// The global document range shard `shard` is expected to cover.
    /// Lazily-materialized shards are validated against this on first
    /// touch (the sectioned-snapshot replacement for the old whole-file
    /// contiguity check).
    pub fn doc_range_of(&self, shard: usize) -> Range<u32> {
        self.doc_starts[shard]..self.doc_starts[shard + 1]
    }

    /// The global sentence-id range shard `shard` is expected to cover.
    pub fn sid_range_of(&self, shard: usize) -> Range<Sid> {
        self.sid_starts[shard]..self.sid_starts[shard + 1]
    }

    /// Structural validation for routers decoded from untrusted bytes:
    /// boundaries must start at zero and be non-decreasing, or id
    /// translation would hand out overlapping/negative ranges.
    pub fn validate_contiguous(&self) -> Result<(), DecodeError> {
        if self.doc_starts.first() != Some(&0) || self.sid_starts.first() != Some(&0) {
            return Err(DecodeError("shard router does not start at zero".into()));
        }
        if self.doc_starts.windows(2).any(|w| w[0] > w[1])
            || self.sid_starts.windows(2).any(|w| w[0] > w[1])
        {
            return Err(DecodeError("shard router boundaries decrease".into()));
        }
        Ok(())
    }

    /// Shard containing global document `doc`.
    pub fn shard_of_doc(&self, doc: u32) -> usize {
        debug_assert!(doc < *self.doc_starts.last().unwrap_or(&0));
        self.doc_starts.partition_point(|&s| s <= doc) - 1
    }

    /// Shard containing global sentence `sid`.
    pub fn shard_of_sid(&self, sid: Sid) -> usize {
        debug_assert!(sid < *self.sid_starts.last().unwrap_or(&0));
        self.sid_starts.partition_point(|&s| s <= sid) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn corpus(n: usize) -> Corpus {
        let texts: Vec<String> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    format!("Anna ate cake number {i}. She was happy. The cafe was busy.")
                } else {
                    format!("The barista poured latte {i}.")
                }
            })
            .collect();
        Pipeline::new().parse_corpus(&texts)
    }

    #[test]
    fn plan_covers_corpus_contiguously() {
        let c = corpus(17);
        for k in [1, 2, 3, 5, 16, 17, 40] {
            let plan = plan_shards(&c, k);
            assert_eq!(plan.first().unwrap().start, 0);
            assert_eq!(plan.last().unwrap().end, 17);
            assert!(plan.len() <= 17);
            for w in plan.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
            assert!(plan.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn empty_corpus_gets_one_empty_shard() {
        let c = Corpus::new(Vec::new());
        let shards = build_shards(&c, 4, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].num_documents(), 0);
        assert_eq!(shards[0].num_sentences(), 0);
        assert_eq!(shards[0].index().num_sentences(), 0);
    }

    #[test]
    fn shard_indices_partition_the_global_index() {
        let c = corpus(9);
        let global = KokoIndex::build(&c);
        let shards = build_shards(&c, 3, 1);
        assert_eq!(shards.len(), 3);
        // Every shard's sentence count sums to the corpus total.
        let total: usize = shards.iter().map(Shard::num_sentences).sum();
        assert_eq!(total, c.num_sentences());
        // Word postings, translated to global sids, union to the global
        // index's postings.
        for word in ["ate", "latte", "busy"] {
            let mut global_sids: Vec<Sid> = global
                .word_refs(word)
                .iter()
                .map(|&r| global.posting(r).sid)
                .collect();
            global_sids.dedup();
            let mut sharded: Vec<Sid> = shards
                .iter()
                .flat_map(|s| {
                    s.index()
                        .word_refs(word)
                        .iter()
                        .map(|&r| s.to_global_sid(s.index().posting(r).sid))
                        .collect::<Vec<_>>()
                })
                .collect();
            sharded.sort_unstable();
            sharded.dedup();
            assert_eq!(sharded, global_sids, "word {word}");
        }
    }

    #[test]
    fn router_roundtrips_every_id() {
        let c = corpus(11);
        let shards = build_shards(&c, 4, 2);
        let router = ShardRouter::from_shards(&shards);
        assert_eq!(router.num_shards(), shards.len());
        for doc in 0..c.num_documents() as u32 {
            let s = &shards[router.shard_of_doc(doc)];
            assert!(s.doc_range().contains(&doc));
            assert_eq!(s.to_global_doc(s.to_local_doc(doc)), doc);
        }
        for sid in 0..c.num_sentences() as Sid {
            let s = &shards[router.shard_of_sid(sid)];
            assert!(s.sid_range().contains(&sid));
            assert_eq!(s.to_global_sid(s.to_local_sid(sid)), sid);
        }
    }

    #[test]
    fn shard_documents_load_back() {
        let c = corpus(7);
        let shards = build_shards(&c, 3, 0);
        for (di, doc) in c.documents().iter().enumerate() {
            let router = ShardRouter::from_shards(&shards);
            let s = &shards[router.shard_of_doc(di as u32)];
            assert_eq!(&s.load_document(di as u32).unwrap(), doc.as_ref());
        }
    }

    #[test]
    fn shard_codec_round_trip_preserves_lookups() {
        let c = corpus(9);
        for shard in build_shards(&c, 3, 1) {
            let back = Shard::from_bytes(&shard.to_bytes()).unwrap();
            assert_eq!(back.id(), shard.id());
            assert_eq!(back.doc_range(), shard.doc_range());
            assert_eq!(back.sid_range(), shard.sid_range());
            assert_eq!(back.store().len(), shard.store().len());
            assert_eq!(back.approx_index_bytes(), shard.approx_index_bytes());
            for word in ["ate", "latte", "busy", "cafe"] {
                assert_eq!(back.index().word_refs(word), shard.index().word_refs(word));
            }
            for doc in shard.doc_range() {
                assert_eq!(
                    back.load_document(doc).unwrap(),
                    shard.load_document(doc).unwrap()
                );
            }
        }
    }

    #[test]
    fn router_codec_round_trip() {
        let c = corpus(11);
        let shards = build_shards(&c, 4, 1);
        let router = ShardRouter::from_shards(&shards);
        let back = ShardRouter::from_bytes(&router.to_bytes()).unwrap();
        assert_eq!(back.num_shards(), router.num_shards());
        for doc in 0..c.num_documents() as u32 {
            assert_eq!(back.shard_of_doc(doc), router.shard_of_doc(doc));
        }
        for sid in 0..c.num_sentences() as Sid {
            assert_eq!(back.shard_of_sid(sid), router.shard_of_sid(sid));
        }
    }

    #[test]
    fn corrupt_shard_bytes_error_not_panic() {
        let c = corpus(4);
        let shard = build_shards(&c, 1, 1).remove(0);
        let bytes = shard.to_bytes();
        for cut in 0..bytes.len().min(64) {
            assert!(Shard::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Inverted document range is rejected structurally.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&9u32.to_le_bytes()); // docs.start
        bad[12..16].copy_from_slice(&1u32.to_le_bytes()); // docs.end
        assert!(Shard::from_bytes(&bad).is_err());
    }

    #[test]
    fn delta_build_matches_batch_build_at_same_position() {
        let c = corpus(10);
        // A delta shard built straight from documents 6..10 must equal the
        // shard a batch build would place there.
        let batch = Shard::build(3, &c, 6..10);
        let docs = &c.documents()[6..10];
        let sid_start = c.doc_sids(6).start;
        let delta = Shard::build_from_docs(3, docs, 6, sid_start);
        assert_eq!(delta.doc_range(), batch.doc_range());
        assert_eq!(delta.sid_range(), batch.sid_range());
        assert_eq!(delta.to_bytes(), batch.to_bytes(), "byte-identical shard");
    }

    #[test]
    fn regrown_delta_shard_equals_one_shot_build() {
        // The live grow path: an open delta over docs 2..5 absorbing docs
        // 5..8 is rebuilt from the shared documents at the same position —
        // byte-identical to building the union in one shot.
        let c = corpus(8);
        let sid_start = c.doc_sids(2).start;
        let first = Shard::build_from_docs(1, &c.documents()[2..5], 2, sid_start);
        let grown = Shard::build_from_docs(first.id(), &c.documents()[2..8], 2, sid_start);
        let oneshot = Shard::build_from_docs(1, &c.documents()[2..8], 2, sid_start);
        assert_eq!(grown.to_bytes(), oneshot.to_bytes());
        assert_eq!(grown.num_documents(), 6);
        for doc in grown.doc_range() {
            assert_eq!(
                grown.load_document(doc).unwrap(),
                *c.documents()[doc as usize]
            );
        }
    }

    #[test]
    fn empty_delta_shard_builds_and_grows_from_nothing() {
        let c = corpus(3);
        let empty = Shard::build_from_docs(0, &[], 0, 0);
        assert_eq!(empty.num_documents(), 0);
        assert_eq!(empty.num_sentences(), 0);
        let grown = Shard::build_from_docs(empty.id(), c.documents(), 0, 0);
        let oneshot = Shard::build(0, &c, 0..3);
        assert_eq!(grown.to_bytes(), oneshot.to_bytes());
    }

    #[test]
    fn router_from_arc_shards_matches_owned() {
        let c = corpus(9);
        let owned = build_shards(&c, 3, 1);
        let arcs: Vec<std::sync::Arc<Shard>> =
            owned.iter().cloned().map(std::sync::Arc::new).collect();
        assert_eq!(
            ShardRouter::from_shards(&owned),
            ShardRouter::from_shards(&arcs)
        );
    }

    #[test]
    fn bound_stats_answer_vocabulary_membership() {
        let c = corpus(6);
        let shard = build_shards(&c, 1, 1).remove(0);
        let stats = shard.bound_stats().expect("built shards carry stats");
        // Tokens from both document flavors, queried lower-cased.
        assert!(stats.has_token("anna"));
        assert!(stats.has_token("latte"));
        assert!(stats.has_token("busy"));
        assert!(!stats.has_token("zeppelin"));
        assert!(stats.has_all_tokens(["anna", "ate", "cake"]));
        assert!(!stats.has_all_tokens(["anna", "zeppelin"]));
        // Empty sequences are infeasible, not vacuously present.
        assert!(!stats.has_all_tokens(std::iter::empty::<&str>()));
        assert!(stats.num_tokens() > 0);
    }

    #[test]
    fn bound_stats_codec_round_trip_and_rejects_unsorted() {
        let c = corpus(5);
        let stats = ShardBoundStats::from_docs(c.documents());
        let back = ShardBoundStats::from_bytes(&stats.to_bytes()).unwrap();
        assert_eq!(back, stats);
        // Hand-built frames with unsorted or duplicated hashes are corrupt.
        let mut buf = bytes::BytesMut::new();
        vec![3u64, 1, 2].encode(&mut buf);
        assert!(ShardBoundStats::from_bytes(&buf).is_err());
        let mut buf = bytes::BytesMut::new();
        vec![1u64, 1].encode(&mut buf);
        assert!(ShardBoundStats::from_bytes(&buf).is_err());
    }

    #[test]
    fn bound_stats_stay_out_of_the_shard_frame() {
        // Shard bytes are version-independent: stripping stats (the decode
        // state) must not change the encoding, and decode yields None.
        let c = corpus(4);
        let shard = build_shards(&c, 1, 1).remove(0);
        assert!(shard.bound_stats().is_some());
        assert!(shard.block_stats().is_some());
        let mut stripped = shard.clone();
        stripped.set_bound_stats(None);
        stripped.set_block_stats(None);
        assert_eq!(shard.to_bytes(), stripped.to_bytes());
        let back = Shard::from_bytes(&shard.to_bytes()).unwrap();
        assert!(back.bound_stats().is_none());
        assert!(back.block_stats().is_none());
    }

    #[test]
    fn doc_sid_translation_matches_the_corpus() {
        let c = corpus(11);
        let shards = build_shards(&c, 4, 1);
        let router = ShardRouter::from_shards(&shards);
        for sid in 0..c.num_sentences() as Sid {
            let s = &shards[router.shard_of_sid(sid)];
            assert_eq!(s.doc_of_sid(sid), c.doc_of(sid), "sid {sid}");
        }
        for doc in 0..c.num_documents() as u32 {
            let s = &shards[router.shard_of_doc(doc)];
            assert_eq!(s.doc_first_sid(doc), c.doc_sids(doc).start, "doc {doc}");
        }
        // Decoded shards rebuild the same translation from blob headers.
        for shard in &shards {
            let back = Shard::from_bytes(&shard.to_bytes()).unwrap();
            for sid in back.sid_range() {
                assert_eq!(back.doc_of_sid(sid), shard.doc_of_sid(sid));
            }
            for doc in back.doc_range() {
                assert_eq!(back.doc_first_sid(doc), shard.doc_first_sid(doc));
            }
        }
    }

    #[test]
    fn section_decode_matches_payload_decode() {
        let c = corpus(9);
        for shard in build_shards(&c, 3, 1) {
            let meta = shard.encode_meta_section();
            let store_bytes = SharedBytes::from_vec(shard.store().to_bytes());
            let bounds = shard.bound_stats().cloned();
            let blocks = shard.block_stats().cloned();
            let back = Shard::decode_sections(&meta, store_bytes, bounds, blocks).unwrap();
            assert_eq!(back.to_bytes(), shard.to_bytes(), "byte-identical");
            assert_eq!(back.bound_stats(), shard.bound_stats());
            assert_eq!(back.block_stats(), shard.block_stats());
            for doc in back.doc_range() {
                assert_eq!(
                    back.load_document(doc).unwrap(),
                    shard.load_document(doc).unwrap()
                );
            }
            // Trailing meta bytes are rejected.
            let mut long = shard.encode_meta_section();
            long.push(0);
            assert!(Shard::decode_sections(
                &long,
                SharedBytes::from_vec(shard.store().to_bytes()),
                None,
                None
            )
            .is_err());
            // A blocks section that does not cover the doc range exactly
            // is rejected (here: block stats for one doc too few).
            if shard.num_documents() > 1 {
                let c = corpus(shard.num_documents() - 1);
                let wrong = BlockBoundStats::from_docs(c.documents(), 1);
                assert!(Shard::decode_sections(
                    &shard.encode_meta_section(),
                    SharedBytes::from_vec(shard.store().to_bytes()),
                    None,
                    Some(wrong)
                )
                .is_err());
            }
        }
    }

    #[test]
    fn bounds_section_round_trip_and_hostile_input() {
        let c = corpus(6);
        let stats = ShardBoundStats::from_docs(c.documents());
        let sec = stats.encode_section();
        let back = ShardBoundStats::decode_section(SharedBytes::from_vec(sec.clone())).unwrap();
        assert_eq!(back, stats);
        // Re-encoding a view-backed stats is identical both ways.
        assert_eq!(back.encode_section(), sec);
        assert_eq!(back.to_bytes(), stats.to_bytes());
        // Count disagreeing with the body length is structural.
        let mut bad = sec.clone();
        bad[0] ^= 0x01;
        assert!(ShardBoundStats::decode_section(SharedBytes::from_vec(bad)).is_err());
        // Unsorted hashes are rejected even through the view path.
        let mut unsorted = Vec::new();
        unsorted.extend_from_slice(&2u64.to_le_bytes());
        unsorted.extend_from_slice(&9u64.to_le_bytes());
        unsorted.extend_from_slice(&3u64.to_le_bytes());
        assert!(ShardBoundStats::decode_section(SharedBytes::from_vec(unsorted)).is_err());
        // Too-short section.
        assert!(ShardBoundStats::decode_section(SharedBytes::from_vec(vec![1, 2, 3])).is_err());
    }

    #[test]
    fn block_stats_partition_the_vocabulary_by_doc_range() {
        let c = corpus(7);
        // Block size 3 over 7 docs: blocks cover docs [0..3), [3..6), [6..7).
        let stats = BlockBoundStats::from_docs(c.documents(), 3);
        assert_eq!(stats.block_size(), 3);
        assert_eq!(stats.num_blocks(), 3);
        assert_eq!(stats.block_of_doc(0), 0);
        assert_eq!(stats.block_of_doc(2), 0);
        assert_eq!(stats.block_of_doc(3), 1);
        assert_eq!(stats.block_of_doc(6), 2);
        // Doc 6 is an "Anna" doc (6 % 3 == 0) alone in the last block:
        // its block sees "anna" but not "latte"; block 1 (docs 3..6,
        // flavors latte/latte... doc 3 is Anna) sees both.
        assert!(stats.block(2).has_token("anna"));
        assert!(!stats.block(2).has_token("latte"));
        assert!(stats.block(1).has_token("anna"));
        assert!(stats.block(1).has_token("latte"));
        // The empty phrase stays infeasible at block granularity too.
        assert!(!stats.block(0).has_all_tokens(std::iter::empty::<&str>()));
        assert!(stats.block(0).has_all_tokens(["anna", "ate", "cake"]));
        // The union of block vocabularies is the shard vocabulary.
        let shard_stats = ShardBoundStats::from_docs(c.documents());
        for word in ["anna", "ate", "cake", "latte", "barista", "busy"] {
            let in_any = (0..stats.num_blocks()).any(|b| stats.block(b).has_token(word));
            assert_eq!(in_any, shard_stats.has_token(word), "word {word}");
        }
    }

    #[test]
    fn block_stats_section_round_trip_and_hostile_input() {
        let c = corpus(9);
        for block_size in [1u32, 2, 4, 128] {
            let stats = BlockBoundStats::from_docs(c.documents(), block_size);
            let sec = stats.encode_section();
            let back = BlockBoundStats::decode_section(SharedBytes::from_vec(sec.clone())).unwrap();
            assert_eq!(back, stats);
            assert_eq!(back.encode_section(), sec);
        }
        // Empty shard: zero blocks, still round-trips.
        let empty = BlockBoundStats::from_docs(&[], 128);
        assert_eq!(empty.num_blocks(), 0);
        let back =
            BlockBoundStats::decode_section(SharedBytes::from_vec(empty.encode_section())).unwrap();
        assert_eq!(back, empty);

        let words_to_bytes = |words: &[u64]| {
            let mut v = Vec::new();
            for w in words {
                v.extend_from_slice(&w.to_le_bytes());
            }
            SharedBytes::from_vec(v)
        };
        // Zero block size.
        assert!(BlockBoundStats::decode_section(words_to_bytes(&[0, 0, 0])).is_err());
        // Block count past the section's extent (offset array overruns).
        assert!(BlockBoundStats::decode_section(words_to_bytes(&[128, u64::MAX, 0])).is_err());
        assert!(BlockBoundStats::decode_section(words_to_bytes(&[128, 5, 0])).is_err());
        // Offsets must start at 0, be monotone, and end at the hash count.
        assert!(BlockBoundStats::decode_section(words_to_bytes(&[128, 1, 1, 1, 7])).is_err());
        assert!(BlockBoundStats::decode_section(words_to_bytes(&[128, 2, 0, 2, 1, 7, 8])).is_err());
        assert!(BlockBoundStats::decode_section(words_to_bytes(&[128, 1, 0, 2, 7])).is_err());
        // Per-block hashes must be sorted and distinct.
        assert!(BlockBoundStats::decode_section(words_to_bytes(&[128, 1, 0, 2, 9, 3])).is_err());
        assert!(BlockBoundStats::decode_section(words_to_bytes(&[128, 1, 0, 2, 4, 4])).is_err());
        // Non-multiple-of-8 and truncated sections.
        assert!(BlockBoundStats::decode_section(SharedBytes::from_vec(vec![1, 2, 3])).is_err());
        assert!(BlockBoundStats::decode_section(SharedBytes::from_vec(vec![0u8; 16])).is_err());
        // Adjacent blocks may legitimately share a boundary hash value —
        // dedup is per block, never across blocks.
        let shared =
            BlockBoundStats::decode_section(words_to_bytes(&[128, 2, 0, 1, 2, 5, 5])).unwrap();
        assert_eq!(shared.num_blocks(), 2);
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let c = corpus(13);
        let seq = build_shards(&c, 4, 1);
        let par = build_shards(&c, 4, 3);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.doc_range(), b.doc_range());
            assert_eq!(a.sid_range(), b.sid_range());
            assert_eq!(a.index().num_sentences(), b.index().num_sentences());
            assert_eq!(a.approx_index_bytes(), b.approx_index_bytes());
        }
    }
}
