//! The `SUBTREE` baseline (Chubak & Rafiei \[14\], §6.2.1): every unique
//! subtree up to `mss = 3` nodes is an index key, with root-split coding
//! (postings keyed by the subtree's root occurrence).
//!
//! Faithful to the constraints the paper reports:
//! * designed for single-label trees, so we build **two** indices (parse
//!   labels, POS tags) and join root nodes across them when a query mixes
//!   kinds — the join is sentence-level only, which "may hurt the index
//!   effectiveness" (§6.2.1);
//! * no word attributes and no wildcards — [`CandidateIndex::lookup`]
//!   returns `None` for such queries (the paper: 125 of 350 benchmark
//!   queries supported);
//! * enumerating every ≤3-node subtree makes construction markedly slower
//!   and the footprint several times the corpus size (Figure 6).

use crate::api::CandidateIndex;
use crate::koko::ROW_OVERHEAD;
use koko_nlp::{Axis, Corpus, NodeLabel, Sentence, Sid, Tid, TreePattern};
use koko_storage::MultiMap;

/// Posting: sentence, subtree-root token, and the "tail" token (deepest node
/// of a chain key) used for chain joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SubPosting {
    sid: Sid,
    root: Tid,
    tail: Tid,
}

/// Label kind marker used in keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Pl,
    Pos,
}

#[derive(Debug, Clone)]
pub struct SubtreeIndex {
    map: MultiMap<String, SubPosting>,
    num_sentences: u32,
}

fn label_of(kind: Kind, s: &Sentence, t: Tid) -> &'static str {
    match kind {
        Kind::Pl => s.tokens[t as usize].label.name(),
        Kind::Pos => s.tokens[t as usize].pos.name(),
    }
}

fn kind_tag(kind: Kind) -> &'static str {
    match kind {
        Kind::Pl => "l",
        Kind::Pos => "p",
    }
}

impl SubtreeIndex {
    pub fn build(corpus: &Corpus) -> SubtreeIndex {
        let mut map: MultiMap<String, SubPosting> = MultiMap::new();
        for (sid, sentence) in corpus.sentences() {
            let n = sentence.len();
            let mut children: Vec<Vec<Tid>> = vec![Vec::new(); n];
            for (i, tok) in sentence.tokens.iter().enumerate() {
                if let Some(h) = tok.head {
                    children[h as usize].push(i as Tid);
                }
            }
            for kind in [Kind::Pl, Kind::Pos] {
                for t in 0..n as Tid {
                    let lt = label_of(kind, sentence, t);
                    // Size 1.
                    push(&mut map, format!("1|{}|{lt}", kind_tag(kind)), sid, t, t);
                    for &c in &children[t as usize] {
                        let lc = label_of(kind, sentence, c);
                        // Size 2: edge.
                        push(
                            &mut map,
                            format!("2|{}|{lt}>{lc}", kind_tag(kind)),
                            sid,
                            t,
                            c,
                        );
                        // Size 3: chains t→c→g.
                        for &g in &children[c as usize] {
                            let lg = label_of(kind, sentence, g);
                            push(
                                &mut map,
                                format!("3c|{}|{lt}>{lc}>{lg}", kind_tag(kind)),
                                sid,
                                t,
                                g,
                            );
                        }
                    }
                    // Size 3: stars t→(c1,c2) with sorted child labels.
                    let kids = &children[t as usize];
                    for i in 0..kids.len() {
                        for j in (i + 1)..kids.len() {
                            let (mut a, mut b) = (
                                label_of(kind, sentence, kids[i]),
                                label_of(kind, sentence, kids[j]),
                            );
                            if a > b {
                                std::mem::swap(&mut a, &mut b);
                            }
                            push(
                                &mut map,
                                format!("3s|{}|{a},{b}<{lt}", kind_tag(kind)),
                                sid,
                                t,
                                t,
                            );
                        }
                    }
                }
            }
        }
        SubtreeIndex {
            map,
            num_sentences: corpus.num_sentences() as u32,
        }
    }

    /// Evaluate a same-kind label chain (consecutive `/`-connected labels)
    /// by triple decomposition with stride-2 chain joins.
    fn chain_lookup(&self, kind: Kind, labels: &[&str]) -> Vec<SubPosting> {
        debug_assert!(!labels.is_empty());
        let key = |ls: &[&str]| match ls.len() {
            1 => format!("1|{}|{}", kind_tag(kind), ls[0]),
            2 => format!("2|{}|{}>{}", kind_tag(kind), ls[0], ls[1]),
            _ => format!("3c|{}|{}>{}>{}", kind_tag(kind), ls[0], ls[1], ls[2]),
        };
        let mut start = 0usize;
        let mut frontier: Option<Vec<SubPosting>> = None;
        while start < labels.len() {
            let end = (start + 3).min(labels.len());
            let seg = &labels[start..end];
            let postings = self.map.get(&key(seg));
            frontier = Some(match frontier {
                None => postings.to_vec(),
                Some(prev) => {
                    // Chain join: previous tail must be this segment's root.
                    let mut out = Vec::new();
                    for p in &prev {
                        for q in postings {
                            if p.sid == q.sid && p.tail == q.root {
                                out.push(SubPosting {
                                    sid: p.sid,
                                    root: p.root,
                                    tail: q.tail,
                                });
                            }
                        }
                    }
                    out.sort_by_key(|p| (p.sid, p.root, p.tail));
                    out.dedup();
                    out
                }
            });
            if end == labels.len() {
                break;
            }
            start = end - 1; // overlap one node so the chain join links up
        }
        frontier.unwrap_or_default()
    }
}

fn push(map: &mut MultiMap<String, SubPosting>, key: String, sid: Sid, root: Tid, tail: Tid) {
    map.push(key, SubPosting { sid, root, tail }, 12 + ROW_OVERHEAD);
}

impl CandidateIndex for SubtreeIndex {
    fn name(&self) -> &'static str {
        "SUBTREE"
    }

    fn build_from(corpus: &Corpus) -> Self {
        SubtreeIndex::build(corpus)
    }

    fn lookup(&self, pattern: &TreePattern) -> Option<Vec<Sid>> {
        // Restrictions reported in §6.2.1.
        if pattern.has_word() || pattern.has_wildcard() || pattern.is_empty() {
            return None;
        }
        // Evaluate each root-to-leaf path: split at `//` edges and at label-
        // kind changes into same-kind `/`-chains; chains constrain tids,
        // everything else joins at sentence level.
        let mut result: Option<Vec<Sid>> = None;
        for path in crate::koko::root_to_leaf_paths(pattern) {
            let mut chain: Vec<(Kind, &str)> = Vec::new();
            let flush = |chain: &mut Vec<(Kind, &str)>, result: &mut Option<Vec<Sid>>| {
                if chain.is_empty() {
                    return;
                }
                let kind = chain[0].0;
                let labels: Vec<&str> = chain.iter().map(|(_, l)| *l).collect();
                let postings = self.chain_lookup(kind, &labels);
                let mut sids: Vec<Sid> = postings.iter().map(|p| p.sid).collect();
                sids.sort_unstable();
                sids.dedup();
                *result = Some(match result.take() {
                    None => sids,
                    Some(prev) => crate::koko::intersect_sorted(&prev, &sids),
                });
                chain.clear();
            };
            for (i, node) in path.nodes.iter().enumerate() {
                let (kind, label) = match &node.label {
                    NodeLabel::Pl(l) => (Kind::Pl, l.name()),
                    NodeLabel::Pos(p) => (Kind::Pos, p.name()),
                    _ => unreachable!("filtered above"),
                };
                let breaks = i > 0
                    && (node.axis == Axis::Descendant
                        || chain.last().map(|(k, _)| *k) != Some(kind));
                if breaks {
                    flush(&mut chain, &mut result);
                }
                chain.push((kind, label));
            }
            flush(&mut chain, &mut result);
        }
        Some(result.unwrap_or_else(|| (0..self.num_sentences).collect()))
    }

    fn approx_bytes(&self) -> usize {
        self.map.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{effectiveness, ground_truth_sids};
    use koko_nlp::{ParseLabel, Pipeline, PosTag};

    fn corpus() -> Corpus {
        Pipeline::new().parse_corpus(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The delicious latte was popular. The barista poured a cortado.",
        ])
    }

    #[test]
    fn rejects_words_and_wildcards() {
        let idx = SubtreeIndex::build(&corpus());
        let with_word = TreePattern::path(
            false,
            vec![(Axis::Descendant, NodeLabel::Word("ate".into()))],
        );
        assert!(idx.lookup(&with_word).is_none());
        let with_wild = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Wildcard),
            ],
        );
        assert!(idx.lookup(&with_wild).is_none());
    }

    #[test]
    fn chain_queries_are_complete() {
        let c = corpus();
        let idx = SubtreeIndex::build(&c);
        for len in 2..=5 {
            // /root/dobj, /root/dobj/nn, … built from real structure.
            let labels = [
                ParseLabel::Root,
                ParseLabel::Dobj,
                ParseLabel::Nn,
                ParseLabel::Det,
                ParseLabel::Amod,
            ];
            let steps: Vec<(Axis, NodeLabel)> = labels[..len]
                .iter()
                .map(|l| (Axis::Child, NodeLabel::Pl(*l)))
                .collect();
            let p = TreePattern::path(true, steps);
            let truth = ground_truth_sids(&c, &p);
            let cands = idx.lookup(&p).expect("supported");
            for t in &truth {
                assert!(cands.contains(t), "len {len}: missing {t}");
            }
        }
    }

    #[test]
    fn exact_on_short_single_kind_chains() {
        let c = corpus();
        let idx = SubtreeIndex::build(&c);
        let p = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Nn)),
            ],
        );
        let truth = ground_truth_sids(&c, &p);
        let cands = idx.lookup(&p).unwrap();
        assert_eq!(cands, truth, "a single ≤3 chain is answered exactly");
    }

    #[test]
    fn mixed_kind_queries_lose_precision_but_stay_complete() {
        let c = corpus();
        let idx = SubtreeIndex::build(&c);
        // //verb/dobj — POS label then PL label: cross-index sentence join.
        let p = TreePattern::path(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Pos(PosTag::Verb)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
            ],
        );
        let truth = ground_truth_sids(&c, &p);
        let cands = idx.lookup(&p).unwrap();
        for t in &truth {
            assert!(cands.contains(t));
        }
        let eff = effectiveness(&cands, &truth);
        assert!(eff > 0.0, "not useless");
    }

    #[test]
    fn footprint_is_largest() {
        let c = corpus();
        let sub = SubtreeIndex::build(&c);
        let koko = crate::KokoIndex::build(&c);
        let adv = crate::AdvInvertedIndex::build(&c);
        assert!(sub.approx_bytes() > adv.approx_bytes());
        assert!(sub.approx_bytes() > 3 * koko.approx_bytes() / 2);
    }

    #[test]
    fn descendant_edges_split_chains() {
        let c = corpus();
        let idx = SubtreeIndex::build(&c);
        let p = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Descendant, NodeLabel::Pl(ParseLabel::Amod)),
            ],
        );
        let truth = ground_truth_sids(&c, &p);
        let cands = idx.lookup(&p).unwrap();
        for t in &truth {
            assert!(cands.contains(t));
        }
    }
}
