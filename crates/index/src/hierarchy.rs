//! The hierarchy index (§3.2): a compact merged representation of all
//! dependency trees for one label kind (parse labels or POS tags).
//!
//! Children with identical labels are merged recursively, so every index
//! node is identified by a unique label path from the root, and carries the
//! posting list of all tokens reachable via that path. Merging removes
//! >99% of nodes (the paper reports >99.7% on Wikipedia) —
//! > [`HierarchyIndex::compression_ratio`] reports the measured figure.
//!
//! Postings are stored as `u32` references into the corpus-wide token heap
//! (the `W` table), mirroring the paper's storage layout where hierarchy
//! posting lists are obtained by joining the closure table with `W` on
//! `plid`/`posid` (§6.2.1).

use koko_nlp::{Axis, Corpus, ParseLabel, PosTag, Sentence, Tid, Token};
use koko_storage::{Codec, DecodeError};
use std::collections::BTreeMap;

/// A label kind that can key a hierarchy index.
pub trait HierLabel: Copy + Ord + std::fmt::Debug {
    /// Label of a token under this kind.
    fn of(token: &Token) -> Self;
    /// Dense code (for closure-table export).
    fn code(self) -> u16;
    /// Human-readable name.
    fn name(self) -> &'static str;
}

impl HierLabel for ParseLabel {
    fn of(token: &Token) -> Self {
        token.label
    }
    fn code(self) -> u16 {
        self as u16
    }
    fn name(self) -> &'static str {
        ParseLabel::name(self)
    }
}

impl HierLabel for PosTag {
    fn of(token: &Token) -> Self {
        token.pos
    }
    fn code(self) -> u16 {
        self as u16
    }
    fn name(self) -> &'static str {
        PosTag::name(self)
    }
}

/// One merged node.
#[derive(Debug, Clone)]
struct HNode<L: HierLabel> {
    label: Option<L>,
    parent: Option<u32>,
    depth: u16,
    children: BTreeMap<L, u32>,
    /// Token-heap references (resolve through [`super::koko::KokoIndex`]).
    postings: Vec<u32>,
}

/// A hierarchy index over one label kind.
#[derive(Debug, Clone)]
pub struct HierarchyIndex<L: HierLabel> {
    /// `nodes[0]` is the synthetic super-root (the paper's "dummy node"
    /// above every dependency root, §3.2).
    nodes: Vec<HNode<L>>,
    total_tokens: usize,
}

impl<L: HierLabel> Default for HierarchyIndex<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: HierLabel> HierarchyIndex<L> {
    pub fn new() -> Self {
        HierarchyIndex {
            nodes: vec![HNode {
                label: None,
                parent: None,
                depth: 0,
                children: BTreeMap::new(),
                postings: Vec::new(),
            }],
            total_tokens: 0,
        }
    }

    /// Build from a whole corpus, also returning each token's node id
    /// (the `plid`/`posid` column of the `W` table). `heap_base[sid]` gives
    /// the token-heap base offset of sentence `sid`.
    pub fn build(corpus: &Corpus, heap_base: &[u32]) -> (Self, Vec<u32>) {
        let mut index = HierarchyIndex::new();
        let mut token_nodes = vec![0u32; corpus.num_tokens()];
        for (sid, sentence) in corpus.sentences() {
            index.insert_sentence(sentence, heap_base[sid as usize], &mut token_nodes);
        }
        (index, token_nodes)
    }

    fn insert_sentence(&mut self, sentence: &Sentence, base: u32, token_nodes: &mut [u32]) {
        let Some(root) = sentence.root() else {
            return;
        };
        // Depth-first walk mirroring the dependency tree.
        let mut stack: Vec<(Tid, u32)> = vec![(root, 0)];
        while let Some((tid, parent_node)) = stack.pop() {
            let label = L::of(&sentence.tokens[tid as usize]);
            let node = self.child_or_insert(parent_node, label);
            self.nodes[node as usize].postings.push(base + tid);
            token_nodes[(base + tid) as usize] = node;
            self.total_tokens += 1;
            for c in sentence.children(tid) {
                stack.push((c, node));
            }
        }
    }

    fn child_or_insert(&mut self, parent: u32, label: L) -> u32 {
        if let Some(&c) = self.nodes[parent as usize].children.get(&label) {
            return c;
        }
        let id = self.nodes.len() as u32;
        let depth = self.nodes[parent as usize].depth + 1;
        self.nodes.push(HNode {
            label: Some(label),
            parent: Some(parent),
            depth,
            children: BTreeMap::new(),
            postings: Vec::new(),
        });
        self.nodes[parent as usize].children.insert(label, id);
        id
    }

    /// Number of merged nodes (excluding the super-root).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Fraction of nodes eliminated by merging: `1 - nodes/tokens`.
    pub fn compression_ratio(&self) -> f64 {
        if self.total_tokens == 0 {
            return 0.0;
        }
        1.0 - self.num_nodes() as f64 / self.total_tokens as f64
    }

    /// Evaluate a label path. `anchored` paths start at the dependency root
    /// (the super-root's children); unanchored paths may start anywhere.
    /// Returns the union of posting references at every matching node.
    pub fn lookup(&self, steps: &[(Axis, Option<L>)], anchored: bool) -> Vec<u32> {
        let node_ids = self.lookup_nodes(steps, anchored);
        let mut out = Vec::new();
        for id in node_ids {
            out.extend_from_slice(&self.nodes[id as usize].postings);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The matching index nodes for a path (the paper's "unique path"
    /// addressing, Example 3.3).
    pub fn lookup_nodes(&self, steps: &[(Axis, Option<L>)], anchored: bool) -> Vec<u32> {
        if steps.is_empty() {
            return Vec::new();
        }
        // Frontier of node ids matched for the current prefix.
        let mut frontier: Vec<u32> = Vec::new();
        let (first_axis, first_label) = &steps[0];
        let effective_axis = if anchored {
            *first_axis
        } else {
            Axis::Descendant
        };
        self.step_from(0, effective_axis, first_label, &mut frontier);
        for (axis, label) in &steps[1..] {
            let mut next = Vec::new();
            for &n in &frontier {
                self.step_from(n, *axis, label, &mut next);
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        frontier
    }

    /// Collect nodes reachable from `from` via one axis step matching
    /// `label` (`None` = wildcard).
    fn step_from(&self, from: u32, axis: Axis, label: &Option<L>, out: &mut Vec<u32>) {
        match axis {
            Axis::Child => {
                let node = &self.nodes[from as usize];
                match label {
                    Some(l) => {
                        if let Some(&c) = node.children.get(l) {
                            out.push(c);
                        }
                    }
                    None => out.extend(node.children.values().copied()),
                }
            }
            Axis::Descendant => {
                // BFS over the merged trie (tiny: <0.3% of token count).
                let mut stack: Vec<u32> = self.nodes[from as usize]
                    .children
                    .values()
                    .copied()
                    .collect();
                while let Some(n) = stack.pop() {
                    let node = &self.nodes[n as usize];
                    if match label {
                        Some(l) => node.label == Some(*l),
                        None => true,
                    } {
                        out.push(n);
                    }
                    stack.extend(node.children.values().copied());
                }
            }
        }
    }

    /// Posting references of one node id.
    pub fn postings_of(&self, node: u32) -> &[u32] {
        &self.nodes[node as usize].postings
    }

    /// Approximate footprint: node structures + packed posting references
    /// (4 bytes per token per hierarchy; see module docs).
    pub fn approx_bytes(&self) -> usize {
        let node_bytes: usize = self.nodes.iter().map(|n| 16 + n.children.len() * 8).sum();
        node_bytes + self.total_tokens * 4
    }

    /// Serialized form: every non-root node as `(label, parent, depth,
    /// postings)` in id order. The children maps and `total_tokens` are
    /// derived on decode, so the codec surface stays minimal and a decoded
    /// index is structurally identical to a freshly built one.
    fn encode_nodes(&self, buf: &mut bytes::BytesMut)
    where
        L: Codec,
    {
        ((self.nodes.len() - 1) as u32).encode(buf);
        for node in &self.nodes[1..] {
            node.label.expect("non-root node has a label").encode(buf);
            node.parent.expect("non-root node has a parent").encode(buf);
            node.depth.encode(buf);
            node.postings.encode(buf);
        }
    }

    fn decode_nodes(input: &mut &[u8]) -> Result<Self, DecodeError>
    where
        L: Codec,
    {
        let n = u32::decode(input)? as usize;
        let mut index = HierarchyIndex::<L>::new();
        // Cap the pre-allocation against corrupt huge counts, mirroring
        // the generic Vec decode.
        index.nodes.reserve(n.min(4096));
        for i in 0..n {
            let label = L::decode(input)?;
            let parent = u32::decode(input)?;
            let depth = u16::decode(input)?;
            let postings = Vec::<u32>::decode(input)?;
            // Ids are assigned in insertion order, so every parent precedes
            // its children; reject forward references outright.
            if parent as usize > i {
                return Err(DecodeError(format!(
                    "hierarchy node {} references later parent {parent}",
                    i + 1
                )));
            }
            index.total_tokens += postings.len();
            index.nodes.push(HNode {
                label: Some(label),
                parent: Some(parent),
                depth,
                children: BTreeMap::new(),
                postings,
            });
            let id = (i + 1) as u32;
            if index.nodes[parent as usize]
                .children
                .insert(label, id)
                .is_some()
            {
                // Merging guarantees unique (parent, label) pairs; a
                // duplicate would silently shadow a node's postings.
                return Err(DecodeError(format!(
                    "hierarchy node {parent} has duplicate child label {label:?}"
                )));
            }
        }
        Ok(index)
    }

    /// Largest token-heap reference held by any node, so containers that
    /// know the heap size can bounds-check a decoded index.
    pub(crate) fn max_posting_ref(&self) -> Option<u32> {
        self.nodes
            .iter()
            .flat_map(|n| n.postings.iter().copied())
            .max()
    }

    /// Export as a closure table (§6.2.1's `PL`/`POS` schema): one row per
    /// (node, ancestor-or-self) pair.
    pub fn to_closure_table(&self) -> koko_storage::ClosureTable {
        let mut ct = koko_storage::ClosureTable::new();
        for (id, node) in self.nodes.iter().enumerate().skip(1) {
            let label = node.label.expect("non-root node has a label");
            // Walk ancestors including self.
            let mut cur = Some(id as u32);
            while let Some(a) = cur {
                let anode = &self.nodes[a as usize];
                if let Some(alabel) = anode.label {
                    ct.insert(koko_storage::ClosureRow {
                        id: id as u32,
                        label: label.code(),
                        depth: node.depth,
                        aid: a,
                        alabel: alabel.code(),
                        adepth: anode.depth,
                    });
                }
                cur = anode.parent;
            }
        }
        ct
    }
}

impl<L: HierLabel + Codec> Codec for HierarchyIndex<L> {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.encode_nodes(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Self::decode_nodes(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn corpus() -> Corpus {
        let p = Pipeline::new();
        p.parse_corpus(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
        ])
    }

    fn heap_base(c: &Corpus) -> Vec<u32> {
        let mut base = Vec::new();
        let mut acc = 0u32;
        for (_, s) in c.sentences() {
            base.push(acc);
            acc += s.len() as u32;
        }
        base
    }

    #[test]
    fn merging_produces_unique_child_labels() {
        let c = corpus();
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &heap_base(&c));
        for node in &idx.nodes {
            // BTreeMap keys are unique by construction; verify counts add up.
            assert!(node.children.len() <= ParseLabel::ALL.len());
        }
        // Both sentences share /root, /root/nsubj, /root/dobj… so the node
        // count is far below the token count.
        assert!(idx.num_nodes() < c.num_tokens());
        assert!(idx.compression_ratio() > 0.3);
    }

    #[test]
    fn postings_partition_tokens() {
        // Every token lands in exactly one node's posting list (§3.2).
        let c = corpus();
        let (idx, token_nodes) = HierarchyIndex::<ParseLabel>::build(&c, &heap_base(&c));
        let total: usize = idx.nodes.iter().map(|n| n.postings.len()).sum();
        assert_eq!(total, c.num_tokens());
        for (i, &node) in token_nodes.iter().enumerate() {
            assert!(idx.postings_of(node).contains(&(i as u32)));
        }
    }

    #[test]
    fn example33_paths() {
        // The PL-index rows of Example 3.3: /root/dobj/nn holds both
        // "chocolate" and "ice" (merged); /root/dobj/amod holds "delicious"
        // of sentence 1.
        let c = corpus();
        let base = heap_base(&c);
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &base);
        let steps = |labels: &[ParseLabel]| {
            labels
                .iter()
                .map(|l| (Axis::Child, Some(*l)))
                .collect::<Vec<_>>()
        };
        let nn = idx.lookup(
            &steps(&[ParseLabel::Root, ParseLabel::Dobj, ParseLabel::Nn]),
            true,
        );
        // Sentence 0: chocolate(3) and ice(4) merged under one node.
        // (Sentence 1's "grocery" is deeper: /root/dobj/rcmod/prep/pobj/nn.)
        assert_eq!(nn, vec![3, 4]);
        let amod = idx.lookup(
            &steps(&[ParseLabel::Root, ParseLabel::Dobj, ParseLabel::Amod]),
            true,
        );
        assert_eq!(amod, vec![base[1] + 3]); // "delicious" in sentence 1
        let root = idx.lookup(&steps(&[ParseLabel::Root]), true);
        assert_eq!(root, vec![1, base[1] + 1]); // both "ate"s
    }

    #[test]
    fn descendant_axis() {
        let c = corpus();
        let base = heap_base(&c);
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &base);
        // /root//amod: any amod below the root.
        let hits = idx.lookup(
            &[
                (Axis::Child, Some(ParseLabel::Root)),
                (Axis::Descendant, Some(ParseLabel::Amod)),
            ],
            true,
        );
        assert!(hits.contains(&(base[1] + 3)));
    }

    #[test]
    fn unanchored_lookup() {
        let c = corpus();
        let base = heap_base(&c);
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &base);
        // //nn anywhere.
        let hits = idx.lookup(&[(Axis::Child, Some(ParseLabel::Nn))], false);
        assert!(hits.contains(&3) && hits.contains(&4) && hits.contains(&(base[1] + 10)));
    }

    #[test]
    fn wildcard_steps() {
        let c = corpus();
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &heap_base(&c));
        // /root/*: all children of the root across the corpus.
        let kids = idx.lookup(
            &[(Axis::Child, Some(ParseLabel::Root)), (Axis::Child, None)],
            true,
        );
        assert!(!kids.is_empty());
    }

    #[test]
    fn pos_hierarchy_builds_too() {
        let c = corpus();
        let (idx, _) = HierarchyIndex::<PosTag>::build(&c, &heap_base(&c));
        let verbs = idx.lookup(&[(Axis::Child, Some(PosTag::Verb))], false);
        assert!(verbs.len() >= 3); // ate, ate, was, bought…
    }

    #[test]
    fn closure_table_export() {
        let c = corpus();
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &heap_base(&c));
        let ct = idx.to_closure_table();
        // Row count = sum over nodes of (depth) — every node × each
        // ancestor-or-self with a label.
        assert!(ct.len() >= idx.num_nodes());
        // nn nodes with a dobj parent exist (Example 3.3).
        let hits = ct.nodes_with_ancestor(ParseLabel::Nn.code(), ParseLabel::Dobj.code(), Some(1));
        assert!(!hits.is_empty());
    }

    #[test]
    fn codec_round_trip_preserves_structure_and_lookups() {
        let c = corpus();
        let base = heap_base(&c);
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &base);
        let back = HierarchyIndex::<ParseLabel>::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back.num_nodes(), idx.num_nodes());
        assert_eq!(back.compression_ratio(), idx.compression_ratio());
        assert_eq!(back.approx_bytes(), idx.approx_bytes());
        let steps = [
            (Axis::Child, Some(ParseLabel::Root)),
            (Axis::Descendant, Some(ParseLabel::Amod)),
        ];
        assert_eq!(back.lookup(&steps, true), idx.lookup(&steps, true));
        assert_eq!(
            back.lookup(&[(Axis::Child, Some(ParseLabel::Nn))], false),
            idx.lookup(&[(Axis::Child, Some(ParseLabel::Nn))], false)
        );
    }

    #[test]
    fn codec_rejects_forward_parent_references() {
        let c = corpus();
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &heap_base(&c));
        let bytes = idx.to_bytes();
        // Node records start after the u32 count; parent sits after the
        // 1-byte label of the first node. Point it past the node itself.
        let mut bad = bytes.clone();
        bad[5..9].copy_from_slice(&1000u32.to_le_bytes());
        assert!(HierarchyIndex::<ParseLabel>::from_bytes(&bad).is_err());
        for cut in 0..bytes.len().min(48) {
            assert!(
                HierarchyIndex::<ParseLabel>::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn missing_path_returns_empty() {
        let c = corpus();
        let (idx, _) = HierarchyIndex::<ParseLabel>::build(&c, &heap_base(&c));
        let hits = idx.lookup(
            &[
                (Axis::Child, Some(ParseLabel::Root)),
                (Axis::Child, Some(ParseLabel::Pobj)),
                (Axis::Child, Some(ParseLabel::Pobj)),
            ],
            true,
        );
        assert!(hits.is_empty());
    }
}
