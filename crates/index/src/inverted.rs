//! The `INVERTED` baseline (§6.2.1): label → (sid, tid), structure-blind.
//!
//! Every token contributes three rows (its word, its parse label, its POS
//! tag). A query retrieves the sentences containing *all* concrete labels —
//! no hierarchical conditions at all — which is why its effectiveness falls
//! below 0.5 in Figures 7/8 and its lookup cost explodes on large corpora
//! (huge unfiltered intermediate results).

use crate::api::CandidateIndex;
use crate::koko::ROW_OVERHEAD;
use koko_nlp::{Corpus, NodeLabel, Sid, Tid, TreePattern};
use koko_storage::MultiMap;

/// Key prefixes keep the three label kinds from colliding ("ate" the word
/// vs. a hypothetical "ate" parse label).
fn word_key(w: &str) -> String {
    format!("w:{w}")
}
fn pl_key(name: &str) -> String {
    format!("l:{name}")
}
fn pos_key(name: &str) -> String {
    format!("p:{name}")
}

/// The baseline inverted index.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    map: MultiMap<String, (Sid, Tid)>,
    num_sentences: u32,
}

impl InvertedIndex {
    pub fn build(corpus: &Corpus) -> InvertedIndex {
        let mut map: MultiMap<String, (Sid, Tid)> = MultiMap::new();
        for (sid, sentence) in corpus.sentences() {
            for (tid, token) in sentence.tokens.iter().enumerate() {
                let row = (sid, tid as Tid);
                map.push(word_key(&token.lower), row, 8 + ROW_OVERHEAD);
                map.push(pl_key(token.label.name()), row, 8 + ROW_OVERHEAD);
                map.push(pos_key(token.pos.name()), row, 8 + ROW_OVERHEAD);
            }
        }
        InvertedIndex {
            map,
            num_sentences: corpus.num_sentences() as u32,
        }
    }

    fn rows_of(&self, key: &str) -> &[(Sid, Tid)] {
        self.map.get(&key.to_string())
    }
}

/// Materialized-join guard: the whole point of this baseline is that its
/// intermediate results blow up, but we cap them so adversarial queries
/// cannot exhaust memory; past the cap only sentence ids are tracked
/// (the join has already done its damage by then).
const MAX_INTERMEDIATE: usize = 4_000_000;

impl CandidateIndex for InvertedIndex {
    fn name(&self) -> &'static str {
        "INVERTED"
    }

    fn build_from(corpus: &Corpus) -> Self {
        InvertedIndex::build(corpus)
    }

    fn lookup(&self, pattern: &TreePattern) -> Option<Vec<Sid>> {
        // The paper's baseline answers with "one nested-SQL query" joining
        // the per-label row lists on sentence id — materializing the row
        // pairs, exactly the intermediate-result blowup §6.2.2 measures
        // ("INVERTED … often results in significantly larger intermediate
        // results" and fails to scale past 5K articles).
        let mut inter: Option<Vec<(Sid, Tid)>> = None;
        for node in &pattern.nodes {
            let key = match &node.label {
                NodeLabel::Word(w) => word_key(w),
                NodeLabel::Pl(l) => pl_key(l.name()),
                NodeLabel::Pos(p) => pos_key(p.name()),
                NodeLabel::Wildcard => continue,
            };
            let rows = self.rows_of(&key);
            inter = Some(match inter {
                None => rows.to_vec(),
                Some(prev) => join_rows(&prev, rows),
            });
            if inter.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        let mut sids: Vec<Sid> = match inter {
            None => return Some((0..self.num_sentences).collect()),
            Some(rows) => rows.into_iter().map(|(s, _)| s).collect(),
        };
        sids.sort_unstable();
        sids.dedup();
        Some(sids)
    }

    fn approx_bytes(&self) -> usize {
        self.map.approx_bytes()
    }
}

/// SQL-style equi-join on `sid`: one output row per (left row, right row)
/// pair within a sentence, keeping the right tid (multiplicities preserved,
/// as a DBMS would).
fn join_rows(a: &[(Sid, Tid)], b: &[(Sid, Tid)]) -> Vec<(Sid, Tid)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].0 < b[j].0 {
            i += 1;
        } else if b[j].0 < a[i].0 {
            j += 1;
        } else {
            let sid = a[i].0;
            let ae = a[i..].partition_point(|r| r.0 == sid) + i;
            let be = b[j..].partition_point(|r| r.0 == sid) + j;
            for _ in i..ae {
                for row in &b[j..be] {
                    if out.len() < MAX_INTERMEDIATE {
                        out.push(*row);
                    }
                }
            }
            if out.len() >= MAX_INTERMEDIATE {
                // Degrade to one row per sentence beyond the cap.
                out.push((sid, b[j].1));
            }
            i = ae;
            j = be;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{effectiveness, ground_truth_sids};
    use koko_nlp::{Axis, ParseLabel, Pipeline};

    fn corpus() -> Corpus {
        Pipeline::new().parse_corpus(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The delicious latte was popular.", // "delicious" but not under dobj
        ])
    }

    #[test]
    fn completeness_but_low_precision() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        // /root/dobj//"delicious" — truly matches sentences 0 and 1 only.
        let pattern = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
                (Axis::Descendant, NodeLabel::Word("delicious".into())),
            ],
        );
        let truth = ground_truth_sids(&c, &pattern);
        let cands = idx.lookup(&pattern).unwrap();
        for t in &truth {
            assert!(cands.contains(t));
        }
        // Sentence 2 has "delicious" and a root but no dobj → the
        // structure-blind index can include it only if all labels appear;
        // it has root+delicious but no dobj, so here it's excluded. Check a
        // clearly imprecise case instead: //"ate"//"pie" ordering ignored.
        let p2 = TreePattern::path(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Word("pie".into())),
                (Axis::Descendant, NodeLabel::Word("cheesecake".into())),
            ],
        );
        let cands2 = idx.lookup(&p2).unwrap();
        // No sentence has cheesecake under pie, but INVERTED can't know.
        assert!(ground_truth_sids(&c, &p2).is_empty());
        assert!(cands2.is_empty()); // pie and cheesecake never co-occur
                                    // Structural blindness shows when both labels co-occur:
        let p3 = TreePattern::path(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Word("delicious".into())),
                (Axis::Descendant, NodeLabel::Word("ate".into())),
            ],
        );
        let truth3 = ground_truth_sids(&c, &p3);
        let cands3 = idx.lookup(&p3).unwrap();
        assert!(truth3.is_empty(), "ate is never below delicious");
        assert_eq!(cands3, vec![0, 1], "INVERTED returns both co-occurrences");
        assert_eq!(effectiveness(&cands3, &truth3), 0.0);
    }

    #[test]
    fn wildcards_are_ignored() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let p = TreePattern::path(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Wildcard),
                (Axis::Child, NodeLabel::Wildcard),
            ],
        );
        assert_eq!(idx.lookup(&p).unwrap().len(), c.num_sentences());
    }

    #[test]
    fn size_grows_with_corpus() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        // Three rows per token.
        assert_eq!(idx.map.num_rows(), 3 * c.num_tokens());
        assert!(idx.approx_bytes() > 3 * c.num_tokens() * 8);
    }
}
