//! `koko-index` — KOKO's multi-indexing scheme (§3) and the three prior
//! indexing techniques it is evaluated against (§6.2.1).
//!
//! | Scheme | Module | Paper |
//! |---|---|---|
//! | KOKO multi-index (word + entity inverted indices, PL/POS hierarchy indices) | [`koko`], [`hierarchy`] | §3 |
//! | `INVERTED` — label → (sid, tid) | [`inverted`] | baseline |
//! | `ADVINVERTED` — label → (sid, tid, left, right, depth, pid) | [`advinverted`] | Bird et al. [7, 20] |
//! | `SUBTREE` — every subtree up to size 3, root-split coding | [`subtree`] | Chubak & Rafiei \[14\] |
//!
//! All four implement [`CandidateIndex`]: given a [`koko_nlp::TreePattern`]
//! they return a *complete* candidate set of sentence ids (a superset of the
//! truly matching sentences — §4.2.2's completeness discussion). The
//! benchmark harness measures lookup time and *effectiveness* =
//! |true matches| / |candidates returned| (§6.2.2).

pub mod advinverted;
pub mod api;
pub mod hierarchy;
pub mod inverted;
pub mod koko;
pub mod shard;
pub mod subtree;

pub use advinverted::AdvInvertedIndex;
pub use api::{effectiveness, ground_truth_sids, CandidateIndex};
pub use hierarchy::{HierLabel, HierarchyIndex};
pub use inverted::InvertedIndex;
pub use koko::KokoIndex;
pub use shard::{
    build_shards, plan_shards, BlockBoundStats, BlockVocab, Shard, ShardBoundStats, ShardRouter,
    TokenVocab, BLOCK_DOCS,
};
pub use subtree::SubtreeIndex;
