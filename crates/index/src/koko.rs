//! The KOKO multi-index (§3): word + entity inverted indices and the two
//! hierarchy indices, plus the §4.2 path-decomposition lookup (the heart of
//! the DPLI module).
//!
//! Storage layout mirrors the paper's `W`/`E`/`PL`/`POS` schemas (§6.2.1):
//! one token heap holds the posting quintuples (the `W` table); the word
//! index and the hierarchy posting lists are `u32` references into that
//! heap, which is why KOKO's footprint is the smallest of the four schemes
//! in Figure 6(b).

use crate::api::CandidateIndex;
use crate::hierarchy::HierarchyIndex;
use koko_nlp::{
    tree_stats, Axis, Corpus, EntityPosting, EntityType, NodeLabel, ParseLabel, PosTag, Posting,
    Sid, TreePattern,
};
use koko_storage::{Codec, DecodeError, MultiMap};

/// Relational row overhead charged uniformly across all schemes (B-tree
/// entry per row); keeps the Figure 6(b) comparison fair.
pub const ROW_OVERHEAD: usize = 16;

/// The assembled multi-index over a parsed corpus.
#[derive(Debug, Clone)]
pub struct KokoIndex {
    /// Token heap: global token index → posting quintuple (the `W` rows).
    heap: Vec<Posting>,
    /// sid → heap base offset.
    token_base: Vec<u32>,
    num_sentences: u32,
    /// Per-token hierarchy node ids (the `plid`/`posid` columns of `W`).
    plid: Vec<u32>,
    posid: Vec<u32>,
    /// Word inverted index: lower-cased word → heap references.
    word: MultiMap<String, u32>,
    /// Entity inverted index: lower-cased mention text → triples (§3.1).
    entity: MultiMap<String, EntityPosting>,
    /// Per-type entity lists (`Person` index, `GPE` index, …).
    entity_by_type: Vec<Vec<EntityPosting>>,
    pl: HierarchyIndex<ParseLabel>,
    pos: HierarchyIndex<PosTag>,
}

impl KokoIndex {
    /// Build all indices from a parsed corpus (the "Parse text & build
    /// indices" preprocessing box of Figure 2).
    pub fn build(corpus: &Corpus) -> KokoIndex {
        let mut heap = Vec::with_capacity(corpus.num_tokens());
        let mut token_base = Vec::with_capacity(corpus.num_sentences());
        let mut word: MultiMap<String, u32> = MultiMap::new();
        let mut entity: MultiMap<String, EntityPosting> = MultiMap::new();
        let mut entity_by_type: Vec<Vec<EntityPosting>> = vec![Vec::new(); EntityType::ALL.len()];

        for (sid, sentence) in corpus.sentences() {
            let base = heap.len() as u32;
            token_base.push(base);
            let stats = tree_stats(sentence);
            for (tid, token) in sentence.tokens.iter().enumerate() {
                let st = stats[tid];
                heap.push(Posting {
                    sid,
                    tid: tid as u32,
                    left: st.left,
                    right: st.right,
                    depth: st.depth,
                });
                // W row: quintuple (18) + plid/posid (8) + row overhead.
                word.push(token.lower.clone(), base + tid as u32, 26 + ROW_OVERHEAD);
            }
            for m in &sentence.entities {
                let text = sentence.mention_text(m).to_lowercase();
                let ep = EntityPosting {
                    sid,
                    left: m.start,
                    right: m.end,
                    etype: m.etype,
                };
                entity.push(text, ep, 13 + ROW_OVERHEAD);
                entity_by_type[m.etype as usize].push(ep);
            }
        }

        let (pl, plid) = HierarchyIndex::<ParseLabel>::build(corpus, &token_base);
        let (pos, posid) = HierarchyIndex::<PosTag>::build(corpus, &token_base);

        let idx = KokoIndex {
            heap,
            token_base,
            num_sentences: corpus.num_sentences() as u32,
            plid,
            posid,
            word,
            entity,
            entity_by_type,
            pl,
            pos,
        };
        // The sortedness contract DPLI's galloping cursors seek over:
        // every posting list this index hands out must yield
        // nondecreasing sentence ids. The sid-ordered corpus loop above
        // guarantees it; assert at the boundary so a future build change
        // that breaks the ordering fails loudly in debug builds instead
        // of silently dropping candidates.
        debug_assert!(idx.posting_lists_are_sid_sorted());
        idx
    }

    /// Whether every word-index and per-type entity posting list yields
    /// nondecreasing sentence ids — the ordering DPLI's cursor-based
    /// intersection requires. `O(index)`; meant for debug assertions and
    /// tests, not the query path.
    fn posting_lists_are_sid_sorted(&self) -> bool {
        self.word.iter().all(|(_, refs)| {
            refs.windows(2)
                .all(|w| self.heap[w[0] as usize].sid <= self.heap[w[1] as usize].sid)
        }) && self
            .entity_by_type
            .iter()
            .all(|list| list.windows(2).all(|w| w[0].sid <= w[1].sid))
    }

    /// Resolve a heap reference to its posting quintuple.
    pub fn posting(&self, heap_ref: u32) -> Posting {
        self.heap[heap_ref as usize]
    }

    /// Heap base offset of sentence `sid`.
    pub fn heap_base(&self, sid: Sid) -> u32 {
        self.token_base[sid as usize]
    }

    /// Word-index posting references for a (lower-cased) word.
    pub fn word_refs(&self, word: &str) -> &[u32] {
        self.word.get(&word.to_lowercase())
    }

    /// Entity-index triples for a mention string.
    pub fn entity_postings(&self, text: &str) -> &[EntityPosting] {
        self.entity.get(&text.to_lowercase())
    }

    /// All entities of a type (or every entity for `None`).
    pub fn entities_of_type(&self, etype: Option<EntityType>) -> Vec<EntityPosting> {
        match etype {
            Some(t) => self.entity_by_type[t as usize].clone(),
            None => {
                let mut all: Vec<EntityPosting> = self
                    .entity_by_type
                    .iter()
                    .flat_map(|v| v.iter().copied())
                    .collect();
                all.sort_unstable();
                all
            }
        }
    }

    /// Borrowed per-type entity posting list (corpus insertion order,
    /// nondecreasing in sid) — the allocation-free counterpart of
    /// [`KokoIndex::entities_of_type`] that DPLI's cursors stream from.
    pub fn entity_postings_of_type(&self, etype: EntityType) -> &[EntityPosting] {
        &self.entity_by_type[etype as usize]
    }

    /// Iterate distinct entity strings with their postings.
    pub fn entities(&self) -> impl Iterator<Item = (&String, &Vec<EntityPosting>)> {
        self.entity.iter()
    }

    /// The parse-label hierarchy index.
    pub fn pl_index(&self) -> &HierarchyIndex<ParseLabel> {
        &self.pl
    }

    /// The POS hierarchy index.
    pub fn pos_index(&self) -> &HierarchyIndex<PosTag> {
        &self.pos
    }

    /// `plid` of a token (its node in the PL hierarchy).
    pub fn plid_of(&self, heap_ref: u32) -> u32 {
        self.plid[heap_ref as usize]
    }

    /// `posid` of a token (its node in the POS hierarchy).
    pub fn posid_of(&self, heap_ref: u32) -> u32 {
        self.posid[heap_ref as usize]
    }

    pub fn num_sentences(&self) -> u32 {
        self.num_sentences
    }

    /// §4.2 lookup: decompose a *path* pattern into PL / POS / word paths,
    /// query each index, and join. Returns heap references whose sentences
    /// form a complete candidate set; `None` when the pattern puts no
    /// constraint on the corpus (all sentences are candidates).
    pub fn lookup_path(&self, pattern: &TreePattern) -> Option<Vec<u32>> {
        debug_assert!(pattern.is_path(), "lookup_path requires a path pattern");
        let anchored = pattern.root_anchored;
        let m = pattern.nodes.len();

        // --- Decompose (Example 4.2) -----------------------------------
        let mut pl_steps: Vec<(Axis, Option<ParseLabel>)> = Vec::with_capacity(m);
        let mut pos_steps: Vec<(Axis, Option<PosTag>)> = Vec::with_capacity(m);
        let mut word_positions: Vec<(usize, &str)> = Vec::new();
        let mut has_pl = false;
        let mut has_pos = false;
        for (i, node) in pattern.nodes.iter().enumerate() {
            let axis = node.axis;
            match &node.label {
                NodeLabel::Pl(l) => {
                    has_pl = true;
                    pl_steps.push((axis, Some(*l)));
                    pos_steps.push((axis, None));
                }
                NodeLabel::Pos(p) => {
                    has_pos = true;
                    pl_steps.push((axis, None));
                    pos_steps.push((axis, Some(*p)));
                }
                NodeLabel::Word(w) => {
                    word_positions.push((i, w.as_str()));
                    pl_steps.push((axis, None));
                    pos_steps.push((axis, None));
                }
                NodeLabel::Wildcard => {
                    pl_steps.push((axis, None));
                    pos_steps.push((axis, None));
                }
            }
        }

        // --- Lookup PL / POS indices, union posting lists (§4.2.2) ------
        let p1: Option<Vec<u32>> = has_pl.then(|| self.pl.lookup(&pl_steps, anchored));
        let p2: Option<Vec<u32>> = has_pos.then(|| self.pos.lookup(&pos_steps, anchored));

        // --- Lookup word index and join along the word path -------------
        let q: Option<(Vec<u32>, usize)> = if word_positions.is_empty() {
            None
        } else {
            Some(self.word_path_join(pattern, &word_positions, anchored))
        };

        // --- Join P1 ⋈ P2 on the same token ------------------------------
        let p: Option<Vec<u32>> = match (p1, p2) {
            (Some(a), Some(b)) => Some(intersect_sorted(&a, &b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };

        // --- Join P ⋈ Q ---------------------------------------------------
        match (p, q) {
            (Some(p), None) => Some(p),
            (None, Some((q, _))) => Some(q),
            (None, None) => None,
            (Some(p), Some((q, last_word_pos))) => {
                if last_word_pos == m - 1 {
                    // Last path element is a word: same-token join.
                    Some(intersect_sorted(&p, &q))
                } else {
                    // Word is an ancestor of the final node: containment +
                    // depth-gap join, returning the P quintuples (§4.2.2).
                    let (gap, exact) = self.gap_between(pattern, last_word_pos, m - 1);
                    Some(self.ancestor_join(&q, &p, gap, exact))
                }
            }
        }
    }

    /// Join the posting lists of consecutive words along the word path
    /// (Example 4.4); returns the surviving postings of the *last* word and
    /// its path position.
    fn word_path_join(
        &self,
        pattern: &TreePattern,
        word_positions: &[(usize, &str)],
        anchored: bool,
    ) -> (Vec<u32>, usize) {
        let (first_pos, first_word) = word_positions[0];
        let mut cur: Vec<u32> = self.word_refs(first_word).to_vec();
        // Depth prefilter: a node at path position i sits at depth ≥ i
        // below the (super-)root; exactly i when anchored via child axes.
        let prefix_exact = anchored
            && pattern.nodes[..=first_pos]
                .iter()
                .all(|n| n.axis == Axis::Child);
        // Even unanchored, a node at path position i has ≥ i pattern
        // ancestors above it, so its absolute depth is ≥ i.
        cur.retain(|&r| {
            let d = self.heap[r as usize].depth as usize;
            if prefix_exact {
                d == first_pos
            } else {
                d >= first_pos
            }
        });
        let mut last_pos = first_pos;
        for &(pos, wordt) in &word_positions[1..] {
            let next = self.word_refs(wordt);
            let (gap, exact) = self.gap_between(pattern, last_pos, pos);
            cur = self.ancestor_join(&cur, next, gap, exact);
            last_pos = pos;
            if cur.is_empty() {
                break;
            }
        }
        (cur, last_pos)
    }

    /// Depth-gap requirement between path positions `from` < `to`:
    /// `(gap, exact)` — descendant depth must be ≥ gap, or == gap when every
    /// axis between them is `/` (Example 4.4's `l2 ≥ l1 + 2`).
    fn gap_between(&self, pattern: &TreePattern, from: usize, to: usize) -> (u16, bool) {
        let gap = (to - from) as u16;
        let exact = pattern.nodes[from + 1..=to]
            .iter()
            .all(|n| n.axis == Axis::Child);
        (gap, exact)
    }

    /// Keep descendants (from `desc`) that have a qualifying ancestor in
    /// `anc` under the §4.2.2 join condition; both ref lists are
    /// sid-sorted, so this is a merge join with small per-sentence nested
    /// loops.
    fn ancestor_join(&self, anc: &[u32], desc: &[u32], gap: u16, exact: bool) -> Vec<u32> {
        let mut out = Vec::new();
        let mut ai = 0usize;
        let mut di = 0usize;
        while ai < anc.len() && di < desc.len() {
            let asid = self.heap[anc[ai] as usize].sid;
            let dsid = self.heap[desc[di] as usize].sid;
            if asid < dsid {
                ai += 1;
            } else if dsid < asid {
                di += 1;
            } else {
                let a_end = anc[ai..].partition_point(|&r| self.heap[r as usize].sid == asid) + ai;
                let d_end = desc[di..].partition_point(|&r| self.heap[r as usize].sid == dsid) + di;
                for &d in &desc[di..d_end] {
                    let dp = self.heap[d as usize];
                    let ok = anc[ai..a_end].iter().any(|&a| {
                        let ap = self.heap[a as usize];
                        ap.left <= dp.left
                            && ap.right >= dp.right
                            && if exact {
                                dp.depth == ap.depth + gap
                            } else {
                                dp.depth >= ap.depth + gap
                            }
                    });
                    if ok {
                        out.push(d);
                    }
                }
                ai = a_end;
                di = d_end;
            }
        }
        out
    }

    /// Candidate sentences for an arbitrary tree pattern: evaluate every
    /// root-to-leaf path and intersect the sentence sets.
    pub fn candidate_sids(&self, pattern: &TreePattern) -> Vec<Sid> {
        let paths = root_to_leaf_paths(pattern);
        let mut result: Option<Vec<Sid>> = None;
        for path in paths {
            match self.lookup_path(&path) {
                None => continue, // unconstrained path
                Some(refs) => {
                    let mut sids: Vec<Sid> =
                        refs.iter().map(|&r| self.heap[r as usize].sid).collect();
                    sids.dedup();
                    result = Some(match result {
                        None => sids,
                        Some(prev) => intersect_sorted(&prev, &sids),
                    });
                }
            }
        }
        result.unwrap_or_else(|| (0..self.num_sentences).collect())
    }

    /// Approximate footprint: `W` rows (+plid/posid), `E` rows, hierarchy
    /// nodes + packed posting references.
    pub fn approx_bytes(&self) -> usize {
        self.word.approx_bytes()
            + self.entity.approx_bytes()
            + self.pl.approx_bytes()
            + self.pos.approx_bytes()
    }
}

/// Field-by-field serialization of the whole multi-index, so loading a
/// snapshot skips the index build entirely. `entity_by_type` is persisted
/// too (not rebuilt from the entity table) because its per-type lists keep
/// corpus insertion order, which the deterministic-results contract relies
/// on.
impl Codec for KokoIndex {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.heap.encode(buf);
        self.token_base.encode(buf);
        self.num_sentences.encode(buf);
        self.plid.encode(buf);
        self.posid.encode(buf);
        self.word.encode(buf);
        self.entity.encode(buf);
        self.entity_by_type.encode(buf);
        self.pl.encode(buf);
        self.pos.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let idx = KokoIndex {
            heap: Vec::decode(input)?,
            token_base: Vec::decode(input)?,
            num_sentences: u32::decode(input)?,
            plid: Vec::decode(input)?,
            posid: Vec::decode(input)?,
            word: MultiMap::decode(input)?,
            entity: MultiMap::decode(input)?,
            entity_by_type: Vec::decode(input)?,
            pl: HierarchyIndex::decode(input)?,
            pos: HierarchyIndex::decode(input)?,
        };
        if idx.entity_by_type.len() != EntityType::ALL.len() {
            return Err(DecodeError(format!(
                "expected {} entity type lists, found {}",
                EntityType::ALL.len(),
                idx.entity_by_type.len()
            )));
        }
        if idx.plid.len() != idx.heap.len() || idx.posid.len() != idx.heap.len() {
            return Err(DecodeError("plid/posid length mismatch".into()));
        }
        idx.validate_references()?;
        Ok(idx)
    }
}

impl KokoIndex {
    /// Bounds-check every reference a decoded index will later use for
    /// direct slice indexing, so a checksum-valid but malformed file is
    /// rejected at load time instead of panicking mid-query.
    fn validate_references(&self) -> Result<(), DecodeError> {
        let heap_len = self.heap.len() as u32;
        if self.token_base.len() != self.num_sentences as usize {
            return Err(DecodeError(format!(
                "token_base holds {} sentences, header says {}",
                self.token_base.len(),
                self.num_sentences
            )));
        }
        if self.token_base.iter().any(|&b| b > heap_len) {
            return Err(DecodeError("token_base offset past heap end".into()));
        }
        if self.heap.iter().any(|p| p.sid >= self.num_sentences) {
            return Err(DecodeError("heap posting sid out of range".into()));
        }
        if self
            .word
            .iter()
            .flat_map(|(_, refs)| refs.iter())
            .any(|&r| r >= heap_len)
        {
            return Err(DecodeError("word index reference past heap end".into()));
        }
        let entity_sids = self
            .entity
            .iter()
            .flat_map(|(_, eps)| eps.iter())
            .chain(self.entity_by_type.iter().flatten());
        for ep in entity_sids {
            if ep.sid >= self.num_sentences {
                return Err(DecodeError("entity posting sid out of range".into()));
            }
        }
        for (name, hier_nodes, ids) in [
            ("plid", self.pl.num_nodes(), &self.plid),
            ("posid", self.pos.num_nodes(), &self.posid),
        ] {
            if ids.iter().any(|&n| n as usize > hier_nodes) {
                return Err(DecodeError(format!("{name} references missing node")));
            }
        }
        for (name, max_ref) in [
            ("PL", self.pl.max_posting_ref()),
            ("POS", self.pos.max_posting_ref()),
        ] {
            if max_ref.is_some_and(|r| r >= heap_len) {
                return Err(DecodeError(format!(
                    "{name} hierarchy posting past heap end"
                )));
            }
        }
        Ok(())
    }
}

/// Split a tree pattern into its root-to-leaf paths, preserving axes.
pub fn root_to_leaf_paths(pattern: &TreePattern) -> Vec<TreePattern> {
    if pattern.is_empty() {
        return Vec::new();
    }
    let n = pattern.nodes.len();
    let mut has_child = vec![false; n];
    for node in &pattern.nodes {
        if let Some(p) = node.parent {
            has_child[p as usize] = true;
        }
    }
    let mut paths = Vec::new();
    for (leaf, _) in has_child.iter().enumerate().filter(|(_, &h)| !h) {
        let mut chain = Vec::new();
        let mut cur = Some(leaf as u32);
        while let Some(c) = cur {
            let node = &pattern.nodes[c as usize];
            chain.push((node.axis, node.label.clone()));
            cur = node.parent;
        }
        chain.reverse();
        paths.push(TreePattern::path(pattern.root_anchored, chain));
    }
    paths
}

/// Intersection of two sorted, deduplicated vectors.
pub fn intersect_sorted<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl CandidateIndex for KokoIndex {
    fn name(&self) -> &'static str {
        "KOKO"
    }

    fn build_from(corpus: &Corpus) -> Self {
        KokoIndex::build(corpus)
    }

    fn lookup(&self, pattern: &TreePattern) -> Option<Vec<Sid>> {
        Some(self.candidate_sids(pattern))
    }

    fn approx_bytes(&self) -> usize {
        KokoIndex::approx_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::{Pipeline, PosTag};

    fn corpus() -> Corpus {
        let p = Pipeline::new();
        p.parse_corpus(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The barista poured a latte. The cafe was busy.",
        ])
    }

    fn pat(root_anchored: bool, steps: Vec<(Axis, NodeLabel)>) -> TreePattern {
        TreePattern::path(root_anchored, steps)
    }

    #[test]
    fn word_index_example_32() {
        // Example 3.2: "ate" appears at (0,1) and (1,1); "delicious" at
        // (0,9) and (1,3).
        let idx = KokoIndex::build(&corpus());
        let ate: Vec<Posting> = idx
            .word_refs("ate")
            .iter()
            .map(|&r| idx.posting(r))
            .collect();
        assert_eq!(ate.len(), 3); // two in sentence 0 ("ate", "ate"), one in 1
        assert!(ate.contains(&Posting {
            sid: 0,
            tid: 1,
            left: 0,
            right: 16,
            depth: 0
        }));
        assert!(ate.contains(&Posting {
            sid: 1,
            tid: 1,
            left: 0,
            right: 12,
            depth: 0
        }));
        let delicious: Vec<Posting> = idx
            .word_refs("delicious")
            .iter()
            .map(|&r| idx.posting(r))
            .collect();
        assert!(delicious.contains(&Posting {
            sid: 0,
            tid: 9,
            left: 9,
            right: 9,
            depth: 3
        }));
        assert!(delicious.contains(&Posting {
            sid: 1,
            tid: 3,
            left: 3,
            right: 3,
            depth: 2
        }));
    }

    #[test]
    fn entity_index_example_32() {
        let idx = KokoIndex::build(&corpus());
        let cheesecake = idx.entity_postings("cheesecake");
        assert_eq!(cheesecake.len(), 1);
        assert_eq!(
            (cheesecake[0].sid, cheesecake[0].left, cheesecake[0].right),
            (1, 4, 4)
        );
        let gs = idx.entity_postings("grocery store");
        assert_eq!((gs[0].sid, gs[0].left, gs[0].right), (1, 10, 11));
        let cream = idx.entity_postings("chocolate ice cream");
        assert_eq!((cream[0].sid, cream[0].left, cream[0].right), (0, 3, 5));
    }

    #[test]
    fn example_44_word_path_join() {
        // //verb[text="ate"]/dobj//"delicious" — word path //"ate"/*//"delicious"
        // should produce delicious postings {(1,3),(0,9)} (Example 4.4).
        let idx = KokoIndex::build(&corpus());
        let pattern = pat(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Word("ate".into())),
                (Axis::Child, NodeLabel::Wildcard),
                (Axis::Descendant, NodeLabel::Word("delicious".into())),
            ],
        );
        let refs = idx.lookup_path(&pattern).expect("word-constrained");
        let got: Vec<(Sid, u32)> = refs
            .iter()
            .map(|&r| {
                let p = idx.posting(r);
                (p.sid, p.tid)
            })
            .collect();
        assert!(got.contains(&(0, 9)), "{got:?}");
        assert!(got.contains(&(1, 3)), "{got:?}");
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn full_decomposed_lookup() {
        // //verb/dobj//"delicious": PL path //*/dobj//*, POS path //verb/*//*,
        // word path //*/*//"delicious" — join should keep both sentences.
        let idx = KokoIndex::build(&corpus());
        let pattern = pat(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Pos(PosTag::Verb)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
                (Axis::Descendant, NodeLabel::Word("delicious".into())),
            ],
        );
        let refs = idx.lookup_path(&pattern).expect("constrained");
        let sids: Vec<Sid> = refs.iter().map(|&r| idx.posting(r).sid).collect();
        assert!(sids.contains(&0));
        assert!(sids.contains(&1));
        assert!(!sids.contains(&2));
    }

    #[test]
    fn candidates_are_complete() {
        // Candidate set ⊇ true matches, for a mix of patterns (§4.2.2).
        let c = corpus();
        let idx = KokoIndex::build(&c);
        let patterns = vec![
            pat(
                true,
                vec![
                    (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                    (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
                    (Axis::Child, NodeLabel::Pl(ParseLabel::Nn)),
                ],
            ),
            pat(
                false,
                vec![
                    (Axis::Descendant, NodeLabel::Pos(PosTag::Verb)),
                    (Axis::Descendant, NodeLabel::Word("latte".into())),
                ],
            ),
            pat(
                false,
                vec![
                    (Axis::Descendant, NodeLabel::Wildcard),
                    (Axis::Child, NodeLabel::Pos(PosTag::Noun)),
                ],
            ),
        ];
        for p in &patterns {
            let truth = crate::api::ground_truth_sids(&c, p);
            let cands = idx.candidate_sids(p);
            for t in &truth {
                assert!(cands.contains(t), "missing sid {t} for {}", p.render());
            }
        }
    }

    #[test]
    fn unconstrained_pattern_returns_all_sentences() {
        let c = corpus();
        let idx = KokoIndex::build(&c);
        let p = pat(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Wildcard),
                (Axis::Child, NodeLabel::Wildcard),
            ],
        );
        let sids = idx.candidate_sids(&p);
        assert_eq!(sids.len(), c.num_sentences());
    }

    #[test]
    fn missing_word_gives_empty() {
        let idx = KokoIndex::build(&corpus());
        let p = pat(
            false,
            vec![(Axis::Descendant, NodeLabel::Word("zeppelin".into()))],
        );
        assert_eq!(idx.lookup_path(&p), Some(vec![]));
        assert!(idx.candidate_sids(&p).is_empty());
    }

    #[test]
    fn entities_by_type() {
        let idx = KokoIndex::build(&corpus());
        let persons = idx.entities_of_type(Some(EntityType::Person));
        assert_eq!(persons.len(), 1); // Anna
        let all = idx.entities_of_type(None);
        assert!(all.len() >= 4);
    }

    #[test]
    fn tree_pattern_candidates() {
        let c = corpus();
        let idx = KokoIndex::build(&c);
        // root with nsubj and dobj//"delicious" branches.
        let pattern = TreePattern {
            nodes: vec![
                koko_nlp::PNode {
                    parent: None,
                    axis: Axis::Child,
                    label: NodeLabel::Pl(ParseLabel::Root),
                },
                koko_nlp::PNode {
                    parent: Some(0),
                    axis: Axis::Child,
                    label: NodeLabel::Pl(ParseLabel::Nsubj),
                },
                koko_nlp::PNode {
                    parent: Some(0),
                    axis: Axis::Descendant,
                    label: NodeLabel::Word("delicious".into()),
                },
            ],
            root_anchored: true,
        };
        let truth = crate::api::ground_truth_sids(&c, &pattern);
        let cands = idx.candidate_sids(&pattern);
        for t in &truth {
            assert!(cands.contains(t));
        }
        assert!(!cands.contains(&2));
    }

    #[test]
    fn codec_round_trip_preserves_lookup_surface() {
        let c = corpus();
        let idx = KokoIndex::build(&c);
        let back = KokoIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back.num_sentences(), idx.num_sentences());
        assert_eq!(back.approx_bytes(), idx.approx_bytes());
        for word in ["ate", "delicious", "latte"] {
            assert_eq!(back.word_refs(word), idx.word_refs(word));
        }
        assert_eq!(
            back.entity_postings("cheesecake"),
            idx.entity_postings("cheesecake")
        );
        assert_eq!(
            back.entities_of_type(Some(EntityType::Person)),
            idx.entities_of_type(Some(EntityType::Person))
        );
    }

    #[test]
    fn decode_rejects_out_of_range_references() {
        let c = corpus();
        let idx = KokoIndex::build(&c);
        let bytes = idx.to_bytes();
        // num_sentences sits after the heap (18 bytes/posting) and
        // token_base vectors; zeroing it must invalidate every sid and
        // the token_base length.
        let off = 4 + 18 * idx.heap.len() + 4 + 4 * idx.token_base.len();
        let mut bad = bytes.clone();
        bad[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(KokoIndex::from_bytes(&bad).is_err());
        // Truncations error rather than panic.
        for cut in (0..bytes.len()).step_by(97) {
            assert!(KokoIndex::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn build_emits_sid_sorted_posting_lists() {
        // The DPLI galloping cursors seek over raw posting lists assuming
        // nondecreasing sids; this pins the contract against future
        // `build` changes (decoded indices re-check via the same helper
        // behind `validate_references`' bounds checks).
        let idx = KokoIndex::build(&corpus());
        assert!(idx.posting_lists_are_sid_sorted());
        for (word, refs) in idx.word.iter() {
            let sids: Vec<Sid> = refs.iter().map(|&r| idx.posting(r).sid).collect();
            assert!(
                sids.windows(2).all(|w| w[0] <= w[1]),
                "word {word:?} posting refs out of sid order: {sids:?}"
            );
        }
        for (ti, list) in idx.entity_by_type.iter().enumerate() {
            assert!(
                list.windows(2).all(|w| w[0].sid <= w[1].sid),
                "entity type {ti} posting list out of sid order"
            );
        }
        // A deliberately shuffled list must trip the checker: the test
        // fails meaningfully if the helper ever degrades to `true`.
        let mut broken = idx.clone();
        for list in broken.entity_by_type.iter_mut() {
            list.reverse();
        }
        if broken
            .entity_by_type
            .iter()
            .any(|l| l.windows(2).any(|w| w[0].sid > w[1].sid))
        {
            assert!(!broken.posting_lists_are_sid_sorted());
        }
    }

    #[test]
    fn compression_matches_paper_claim_direction() {
        // On a larger synthetic corpus merging removes the vast majority of
        // nodes; here just assert meaningful compression on 3 sentences.
        let idx = KokoIndex::build(&corpus());
        assert!(idx.pl_index().compression_ratio() > 0.2);
        assert!(idx.pos_index().compression_ratio() > 0.2);
    }
}
