//! The `ADVINVERTED` baseline (Bird et al. [7, 20], §6.2.1):
//! `P(label, sid, tid, left, right, depth, pid)`.
//!
//! Structure-aware — parent/descendant predicates are expressible as
//! relational joins — so its effectiveness is near-perfect, but every path
//! step is a join over full per-label posting lists, which is what makes it
//! markedly slower than KOKO's hierarchy lookups in Figures 7/8.

use crate::api::CandidateIndex;
use crate::koko::ROW_OVERHEAD;
use koko_nlp::{tree_stats, Axis, Corpus, NodeLabel, Sid, Tid, TreePattern};
use koko_storage::MultiMap;

/// One table row: the quintuple plus the parent pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvPosting {
    pub sid: Sid,
    pub tid: Tid,
    pub left: Tid,
    pub right: Tid,
    pub depth: u16,
    pub pid: Option<Tid>,
}

#[derive(Debug, Clone)]
pub struct AdvInvertedIndex {
    map: MultiMap<String, AdvPosting>,
    /// Full token table, for wildcard steps (a sequential scan in SQL).
    all: Vec<AdvPosting>,
    num_sentences: u32,
}

fn word_key(w: &str) -> String {
    format!("w:{w}")
}
fn pl_key(name: &str) -> String {
    format!("l:{name}")
}
fn pos_key(name: &str) -> String {
    format!("p:{name}")
}

impl AdvInvertedIndex {
    pub fn build(corpus: &Corpus) -> AdvInvertedIndex {
        let mut map: MultiMap<String, AdvPosting> = MultiMap::new();
        let mut all = Vec::with_capacity(corpus.num_tokens());
        for (sid, sentence) in corpus.sentences() {
            let stats = tree_stats(sentence);
            for (tid, token) in sentence.tokens.iter().enumerate() {
                let row = AdvPosting {
                    sid,
                    tid: tid as Tid,
                    left: stats[tid].left,
                    right: stats[tid].right,
                    depth: stats[tid].depth,
                    pid: token.head,
                };
                all.push(row);
                // 26-byte payload per row, three rows per token.
                map.push(word_key(&token.lower), row, 26 + ROW_OVERHEAD);
                map.push(pl_key(token.label.name()), row, 26 + ROW_OVERHEAD);
                map.push(pos_key(token.pos.name()), row, 26 + ROW_OVERHEAD);
            }
        }
        AdvInvertedIndex {
            map,
            all,
            num_sentences: corpus.num_sentences() as u32,
        }
    }

    /// Candidate rows for one pattern node.
    fn rows_for(&self, label: &NodeLabel) -> Vec<AdvPosting> {
        match label {
            NodeLabel::Word(w) => self.map.get(&word_key(w)).to_vec(),
            NodeLabel::Pl(l) => self.map.get(&pl_key(l.name())).to_vec(),
            NodeLabel::Pos(p) => self.map.get(&pos_key(p.name())).to_vec(),
            NodeLabel::Wildcard => self.all.clone(),
        }
    }

    /// Semi-join reduction over the pattern tree (a full reducer pass down
    /// and up — Yannakakis on an acyclic query), then report the sentences
    /// of the surviving root rows.
    fn eval(&self, pattern: &TreePattern) -> Vec<Sid> {
        let n = pattern.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let mut cand: Vec<Vec<AdvPosting>> = pattern
            .nodes
            .iter()
            .map(|p| self.rows_for(&p.label))
            .collect();
        if pattern.root_anchored {
            cand[0].retain(|r| r.pid.is_none());
        }
        // Downward pass: children keep rows with a qualifying parent.
        for i in 1..n {
            let parent = pattern.nodes[i].parent.expect("non-root") as usize;
            let axis = pattern.nodes[i].axis;
            cand[i] = semi_join(&cand[parent], &cand[i], axis, JoinSide::KeepChild);
        }
        // Upward pass: parents keep rows with a qualifying child per edge.
        for i in (1..n).rev() {
            let parent = pattern.nodes[i].parent.expect("non-root") as usize;
            let axis = pattern.nodes[i].axis;
            cand[parent] = semi_join(&cand[i], &cand[parent], axis, JoinSide::KeepParent);
        }
        let mut sids: Vec<Sid> = cand[0].iter().map(|r| r.sid).collect();
        sids.sort_unstable();
        sids.dedup();
        sids
    }
}

#[derive(Clone, Copy, PartialEq)]
enum JoinSide {
    KeepChild,
    KeepParent,
}

/// Keep rows of `keep_from` that have a partner in `other` satisfying the
/// axis relation. `other` plays parent when keeping children and child when
/// keeping parents. Merge join on `sid` with per-sentence nested loops.
fn semi_join(
    other: &[AdvPosting],
    keep_from: &[AdvPosting],
    axis: Axis,
    side: JoinSide,
) -> Vec<AdvPosting> {
    let mut out = Vec::new();
    let (mut oi, mut ki) = (0usize, 0usize);
    while oi < other.len() && ki < keep_from.len() {
        let osid = other[oi].sid;
        let ksid = keep_from[ki].sid;
        if osid < ksid {
            oi += 1;
        } else if ksid < osid {
            ki += 1;
        } else {
            let o_end = other[oi..].partition_point(|r| r.sid == osid) + oi;
            let k_end = keep_from[ki..].partition_point(|r| r.sid == ksid) + ki;
            for k in &keep_from[ki..k_end] {
                let ok = other[oi..o_end].iter().any(|o| {
                    let (parent, child) = match side {
                        JoinSide::KeepChild => (o, k),
                        JoinSide::KeepParent => (k, o),
                    };
                    match axis {
                        Axis::Child => child.pid == Some(parent.tid),
                        Axis::Descendant => {
                            parent.left <= child.left
                                && parent.right >= child.right
                                && child.depth > parent.depth
                        }
                    }
                });
                if ok {
                    out.push(*k);
                }
            }
            oi = o_end;
            ki = k_end;
        }
    }
    out
}

impl CandidateIndex for AdvInvertedIndex {
    fn name(&self) -> &'static str {
        "ADVINVERTED"
    }

    fn build_from(corpus: &Corpus) -> Self {
        AdvInvertedIndex::build(corpus)
    }

    fn lookup(&self, pattern: &TreePattern) -> Option<Vec<Sid>> {
        if pattern.is_empty() {
            return Some((0..self.num_sentences).collect());
        }
        // Fully-unconstrained patterns match everything.
        if pattern.nodes.iter().all(|n| n.label == NodeLabel::Wildcard) && !pattern.root_anchored {
            return Some((0..self.num_sentences).collect());
        }
        Some(self.eval(pattern))
    }

    fn approx_bytes(&self) -> usize {
        self.map.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{effectiveness, ground_truth_sids};
    use koko_nlp::{ParseLabel, Pipeline, PosTag};

    fn corpus() -> Corpus {
        Pipeline::new().parse_corpus(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The delicious latte was popular.",
        ])
    }

    #[test]
    fn near_perfect_effectiveness() {
        let c = corpus();
        let idx = AdvInvertedIndex::build(&c);
        let patterns = vec![
            TreePattern::path(
                true,
                vec![
                    (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                    (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
                    (Axis::Descendant, NodeLabel::Word("delicious".into())),
                ],
            ),
            TreePattern::path(
                false,
                vec![
                    (Axis::Descendant, NodeLabel::Pos(PosTag::Verb)),
                    (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
                ],
            ),
            TreePattern::path(
                false,
                vec![
                    (Axis::Descendant, NodeLabel::Word("delicious".into())),
                    (Axis::Descendant, NodeLabel::Word("ate".into())),
                ],
            ),
        ];
        for p in &patterns {
            let truth = ground_truth_sids(&c, p);
            let cands = idx.lookup(p).unwrap();
            for t in &truth {
                assert!(cands.contains(t), "missing {t} for {}", p.render());
            }
            assert_eq!(
                effectiveness(&cands, &truth),
                1.0,
                "semi-join reduction is exact on tree queries: {}",
                p.render()
            );
        }
    }

    #[test]
    fn wildcard_scan() {
        let c = corpus();
        let idx = AdvInvertedIndex::build(&c);
        // //*/nn: any token with an nn child… expressed as parent wildcard.
        let p = TreePattern::path(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Wildcard),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Nn)),
            ],
        );
        let truth = ground_truth_sids(&c, &p);
        let cands = idx.lookup(&p).unwrap();
        assert_eq!(cands, truth);
    }

    #[test]
    fn branching_pattern() {
        let c = corpus();
        let idx = AdvInvertedIndex::build(&c);
        let pattern = TreePattern {
            nodes: vec![
                koko_nlp::PNode {
                    parent: None,
                    axis: Axis::Child,
                    label: NodeLabel::Pl(ParseLabel::Root),
                },
                koko_nlp::PNode {
                    parent: Some(0),
                    axis: Axis::Child,
                    label: NodeLabel::Pl(ParseLabel::Nsubj),
                },
                koko_nlp::PNode {
                    parent: Some(0),
                    axis: Axis::Descendant,
                    label: NodeLabel::Word("delicious".into()),
                },
            ],
            root_anchored: true,
        };
        let truth = ground_truth_sids(&c, &pattern);
        let cands = idx.lookup(&pattern).unwrap();
        assert_eq!(cands, truth);
    }

    #[test]
    fn bigger_footprint_than_koko() {
        // Figure 6(b)'s ordering (KOKO < INVERTED < ADVINVERTED) relies on
        // hierarchy-node merging, which needs more than a couple of
        // sentences to amortize — build a few hundred.
        let templates = [
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The delicious latte was popular. The barista poured a cortado.",
            "The cafe serves espresso in Portland. Maria hired a star barista.",
            "He was born in London, and the couple had a daughter born in 1911.",
        ];
        let texts: Vec<&str> = (0..100).map(|i| templates[i % templates.len()]).collect();
        let c = Pipeline::new().parse_corpus(&texts);
        let adv = AdvInvertedIndex::build(&c);
        let koko = crate::KokoIndex::build(&c);
        let inv = crate::InvertedIndex::build(&c);
        assert!(
            adv.approx_bytes() > inv.approx_bytes(),
            "ADVINVERTED stores wider rows than INVERTED"
        );
        assert!(
            koko.approx_bytes() < inv.approx_bytes(),
            "KOKO ({}) should be smaller than INVERTED ({}) — Figure 6(b)",
            koko.approx_bytes(),
            inv.approx_bytes()
        );
    }
}
