//! The common benchmark interface for all four indexing schemes (§6.2.2)
//! plus the effectiveness metric.

use koko_nlp::{Corpus, Sid, TreePattern};

/// An indexing scheme that can produce candidate sentences for a tree
/// pattern.
pub trait CandidateIndex {
    /// Scheme name as printed in the paper's figures.
    fn name(&self) -> &'static str;

    /// Build the index from a parsed corpus.
    fn build_from(corpus: &Corpus) -> Self
    where
        Self: Sized;

    /// Candidate sentence ids (sorted, deduplicated). Must be *complete*
    /// (a superset of all truly matching sentences). `None` means the
    /// scheme does not support this query (§6.2.1: SUBTREE supports only a
    /// subset of the benchmark).
    fn lookup(&self, pattern: &TreePattern) -> Option<Vec<Sid>>;

    /// Approximate index footprint in bytes (Figure 6(b)).
    fn approx_bytes(&self) -> usize;
}

/// Sentences that truly match `pattern`, by direct tree matching — the
/// denominator-free ground truth of the effectiveness metric.
pub fn ground_truth_sids(corpus: &Corpus, pattern: &TreePattern) -> Vec<Sid> {
    corpus
        .sentences()
        .filter(|(_, s)| koko_nlp::pattern::matches(pattern, s))
        .map(|(sid, _)| sid)
        .collect()
}

/// Index effectiveness (§6.2.2): the ratio of truly matching sentences to
/// sentences returned by the index. 1.0 when the index returns only true
/// matches; defined as 1.0 for an empty candidate set (nothing wrong was
/// returned).
pub fn effectiveness(candidates: &[Sid], truth: &[Sid]) -> f64 {
    if candidates.is_empty() {
        return 1.0;
    }
    let truth_hits = candidates.iter().filter(|c| truth.contains(c)).count();
    truth_hits as f64 / candidates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::{Axis, NodeLabel, ParseLabel, Pipeline};

    #[test]
    fn effectiveness_bounds() {
        assert_eq!(effectiveness(&[], &[1, 2]), 1.0);
        assert_eq!(effectiveness(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(effectiveness(&[1, 2, 3, 4], &[1, 2]), 0.5);
        assert_eq!(effectiveness(&[3, 4], &[1, 2]), 0.0);
    }

    #[test]
    fn ground_truth_matches_direct_evaluation() {
        let p = Pipeline::new();
        let corpus = p.parse_corpus(&["Anna ate some delicious cheesecake.", "The cafe was busy."]);
        let pattern = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
            ],
        );
        assert_eq!(ground_truth_sids(&corpus, &pattern), vec![0]);
    }
}
