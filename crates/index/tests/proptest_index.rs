//! Property tests for the index layer: the decomposed KOKO lookup is
//! *exact* (not merely complete) for pure parse-label paths, and the
//! closure-table export answers the same ancestor queries as the in-memory
//! hierarchy index.

use koko_index::{ground_truth_sids, HierLabel, KokoIndex};
use koko_nlp::{Axis, Corpus, NodeLabel, ParseLabel, Pipeline, TreePattern};
use proptest::prelude::*;

fn corpus() -> Corpus {
    // Deterministic, parsed once per process.
    use std::sync::OnceLock;
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS
        .get_or_init(|| {
            let texts = koko_corpus::happydb::generate(80, 4711);
            Pipeline::new().parse_corpus(&texts)
        })
        .clone()
}

/// Random short parse-label paths.
fn arb_pl_path() -> impl Strategy<Value = (bool, Vec<(Axis, NodeLabel)>)> {
    let label = prop::sample::select(vec![
        ParseLabel::Root,
        ParseLabel::Nsubj,
        ParseLabel::Dobj,
        ParseLabel::Det,
        ParseLabel::Amod,
        ParseLabel::Prep,
        ParseLabel::Pobj,
        ParseLabel::Conj,
        ParseLabel::Advmod,
    ]);
    let axis = prop::sample::select(vec![Axis::Child, Axis::Descendant]);
    (
        any::<bool>(),
        prop::collection::vec((axis, label.prop_map(NodeLabel::Pl)), 1..4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pure-PL paths lose nothing in decomposition: the candidate sentence
    /// set equals the ground truth exactly.
    #[test]
    fn pure_pl_paths_are_answered_exactly((anchored, steps) in arb_pl_path()) {
        let c = corpus();
        let index = KokoIndex::build(&c);
        let mut steps = steps;
        if anchored {
            // Anchored paths must start at the root label to be satisfiable;
            // force it so the test exercises non-empty answers too.
            steps[0] = (Axis::Child, NodeLabel::Pl(ParseLabel::Root));
        }
        let pattern = TreePattern::path(anchored, steps);
        let truth = ground_truth_sids(&c, &pattern);
        let cands = index.candidate_sids(&pattern);
        prop_assert_eq!(cands, truth, "pattern {}", pattern.render());
    }

    /// The closure table agrees with the hierarchy index on parent queries:
    /// a label pair (child, parent-at-gap-1) has closure rows iff the
    /// two-step path has postings.
    #[test]
    fn closure_table_matches_hierarchy(parent_i in 0usize..8, child_i in 0usize..8) {
        let labels = [
            ParseLabel::Root,
            ParseLabel::Nsubj,
            ParseLabel::Dobj,
            ParseLabel::Det,
            ParseLabel::Amod,
            ParseLabel::Prep,
            ParseLabel::Pobj,
            ParseLabel::Conj,
        ];
        let (parent, child) = (labels[parent_i], labels[child_i]);
        let c = corpus();
        let index = KokoIndex::build(&c);
        let ct = index.pl_index().to_closure_table();
        let via_closure = ct.nodes_with_ancestor(child.code(), parent.code(), Some(1));
        let via_index = index
            .pl_index()
            .lookup_nodes(
                &[
                    (Axis::Descendant, Some(parent)),
                    (Axis::Child, Some(child)),
                ],
                false,
            );
        let mut a = via_closure;
        let mut b = via_index;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "{} under {}", child.name(), parent.name());
    }
}
