//! `koko-embed` — paraphrase-based word embeddings and descriptor expansion.
//!
//! The paper (§2.2, §4.4.1(a)) expands descriptors like `"serves coffee"`
//! into semantically close phrases (`"sells espresso"`) using
//! *counter-fitted* paraphrase embeddings plus an optional domain ontology.
//! We cannot ship those trained vectors, so this crate constructs
//! deterministic vectors from a hand-built paraphrase graph with the same
//! *relative similarity structure* (see DESIGN.md §2):
//!
//! * words in the same synset ≈ 0.85–0.95 cosine,
//! * instances vs. their type word (Beijing vs. "city") ≈ 0.3–0.6,
//! * unrelated words ≈ |0.15| noise.
//!
//! This is exactly what descriptor expansion and the `similarTo` operator
//! (Example 2.2) consume.

mod vectors;

pub use vectors::{hash64, DetRng};

use koko_nlp::gazetteer;
use std::collections::HashMap;
use std::sync::OnceLock;

const DIM: usize = 48;
/// Weight of a word's private noise component within a synset.
const MEMBER_NOISE: f32 = 0.35;
/// Weight of an instance's private component relative to its type vector.
const INSTANCE_NOISE: f32 = 1.0;

/// Hand-built paraphrase synsets (the stand-in for the paraphrase database
/// that trains counter-fitting embeddings).
const SYNSETS: &[(&str, &[&str])] = &[
    (
        "serve",
        &[
            "serve", "serves", "served", "serving", "sell", "sells", "sold", "selling", "offer",
            "offers", "offered", "pour", "pours", "poured", "pouring",
        ],
    ),
    (
        "hire",
        &[
            "hire",
            "hires",
            "hired",
            "hiring",
            "employ",
            "employs",
            "employed",
            "recruit",
            "recruits",
            "recruited",
        ],
    ),
    (
        "make",
        &[
            "make", "makes", "made", "brew", "brews", "brewed", "craft", "crafts", "crafted",
            "bake", "bakes", "baked", "roast", "roasts", "roasted",
        ],
    ),
    (
        "coffee",
        &[
            "coffee",
            "espresso",
            "cappuccino",
            "cappuccinos",
            "macchiato",
            "macchiatos",
            "latte",
            "lattes",
            "mocha",
            "cortado",
        ],
    ),
    ("barista", &["barista", "baristas"]),
    (
        "delicious",
        &["delicious", "tasty", "yummy", "flavorful", "scrumptious"],
    ),
    ("city", &["city", "cities", "town", "towns"]),
    ("country", &["country", "countries", "nation", "nations"]),
    ("born", &["born", "birth"]),
    ("call", &["called", "named", "nicknamed", "known", "dubbed"]),
    ("is", &["is", "was", "are", "were", "be", "being"]),
    ("team", &["team", "teams", "squad", "club"]),
    (
        "venue",
        &["stadium", "arena", "hall", "venue", "ballpark", "gym"],
    ),
    (
        "happy",
        &["happy", "glad", "joyful", "delighted", "thrilled"],
    ),
    (
        "visit",
        &[
            "go", "went", "visit", "visits", "visited", "stop", "stopped",
        ],
    ),
    (
        "host",
        &["host", "hosts", "hosted", "hosting", "welcome", "welcomes"],
    ),
    ("menu", &["menu", "list", "lineup", "selection"]),
    ("soccer", &["soccer", "football", "futbol"]),
    ("versus", &["vs", "versus", "against"]),
    ("cafe", &["cafe", "cafes", "coffeehouse", "coffeeshop"]),
];

/// Type–instance links: `(type synset name, members, base weight)`.
/// The per-instance weight is jittered deterministically so similarity
/// values spread out like real embeddings (Example 2.2 shows 0.36–0.51).
fn instance_links() -> Vec<(&'static str, Vec<&'static str>, f32)> {
    vec![
        ("city", gazetteer::CITIES.to_vec(), 0.55),
        ("country", gazetteer::COUNTRIES.to_vec(), 0.62),
        ("coffee", vec!["drip", "pourover"], 0.8),
        ("team", gazetteer::TEAMS.to_vec(), 0.6),
        ("venue", gazetteer::FACILITY_NAMES.to_vec(), 0.55),
    ]
}

/// Deterministic paraphrase embeddings over the KOKO vocabulary.
#[derive(Debug, Clone)]
pub struct Embeddings {
    vecs: HashMap<String, [f32; DIM]>,
}

impl Default for Embeddings {
    fn default() -> Self {
        Self::new()
    }
}

impl Embeddings {
    /// Build the embedding table (≈1 ms; hash-derived, no I/O).
    pub fn new() -> Embeddings {
        let mut vecs: HashMap<String, [f32; DIM]> = HashMap::new();
        let mut bases: HashMap<&str, [f32; DIM]> = HashMap::new();
        for (name, _) in SYNSETS {
            bases.insert(name, vectors::unit_vector::<DIM>(&format!("synset:{name}")));
        }
        for (name, members) in SYNSETS {
            let base = bases[name];
            for m in *members {
                let noise: [f32; DIM] = vectors::unit_vector(&format!("word:{m}"));
                let mut v = [0.0f32; DIM];
                for i in 0..DIM {
                    v[i] = base[i] + MEMBER_NOISE * noise[i];
                }
                // Words in several synsets blend their bases.
                if let Some(prev) = vecs.get(&m.to_lowercase()) {
                    for i in 0..DIM {
                        v[i] += prev[i];
                    }
                }
                vecs.insert(m.to_lowercase(), vectors::normalize(v));
            }
        }
        for (type_name, members, weight) in instance_links() {
            let base = bases[type_name];
            for m in members {
                let lower = m.to_lowercase();
                // Deterministic jitter in [0.85, 1.15] of the base weight.
                let jitter = 0.85 + 0.3 * vectors::unit_fraction(&format!("jitter:{lower}"));
                let w = weight * jitter as f32;
                let noise: [f32; DIM] = vectors::unit_vector(&format!("word:{lower}"));
                let mut v = [0.0f32; DIM];
                for i in 0..DIM {
                    v[i] = w * base[i] + INSTANCE_NOISE * noise[i];
                }
                vecs.insert(lower, vectors::normalize(v));
            }
        }
        Embeddings { vecs }
    }

    /// A process-wide shared instance.
    pub fn shared() -> &'static Embeddings {
        static SHARED: OnceLock<Embeddings> = OnceLock::new();
        SHARED.get_or_init(Embeddings::new)
    }

    /// Merge a user-supplied domain ontology: each set becomes an extra
    /// synset (the paper's "dictionary of different types of coffee",
    /// footnote 1).
    pub fn with_ontology(mut self, sets: &[(&str, &[&str])]) -> Embeddings {
        for (name, members) in sets {
            let base: [f32; DIM] = vectors::unit_vector(&format!("ontology:{name}"));
            for m in *members {
                let noise: [f32; DIM] = vectors::unit_vector(&format!("word:{m}"));
                let mut v = [0.0f32; DIM];
                for i in 0..DIM {
                    v[i] = base[i] + MEMBER_NOISE * noise[i];
                }
                if let Some(prev) = self.vecs.get(&m.to_lowercase()) {
                    for i in 0..DIM {
                        v[i] += prev[i];
                    }
                }
                self.vecs.insert(m.to_lowercase(), vectors::normalize(v));
            }
        }
        self
    }

    /// Vector for a word; unknown words get a deterministic noise vector
    /// (≈ orthogonal to everything).
    fn vec_of(&self, word: &str) -> [f32; DIM] {
        let lower = word.to_lowercase();
        if let Some(v) = self.vecs.get(&lower) {
            return *v;
        }
        vectors::unit_vector::<DIM>(&format!("word:{lower}"))
    }

    /// Cosine similarity between two words in `[-1, 1]`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        if a.eq_ignore_ascii_case(b) {
            return 1.0;
        }
        let (va, vb) = (self.vec_of(a), self.vec_of(b));
        vectors::dot(&va, &vb) as f64
    }

    /// Phrase similarity: cosine of mean word vectors. Multi-token entity
    /// names ("Blue Heron Cafe") and descriptors ("serves coffee") both go
    /// through here.
    pub fn phrase_similarity(&self, a: &str, b: &str) -> f64 {
        let va = self.phrase_vec(a);
        let vb = self.phrase_vec(b);
        vectors::dot(&va, &vb) as f64
    }

    fn phrase_vec(&self, phrase: &str) -> [f32; DIM] {
        let mut acc = [0.0f32; DIM];
        let mut n = 0;
        for w in phrase.split_whitespace() {
            let v = self.vec_of(w);
            for i in 0..DIM {
                acc[i] += v[i];
            }
            n += 1;
        }
        if n == 0 {
            return acc;
        }
        vectors::normalize(acc)
    }

    /// Whether the vocabulary contains the word (known to some synset or
    /// instance link).
    pub fn knows(&self, word: &str) -> bool {
        self.vecs.contains_key(&word.to_lowercase())
    }

    /// Top-`k` vocabulary neighbours of `word` with similarity ≥ `min_sim`,
    /// most similar first. This is IKE's `"word" ~ k` operator and the
    /// per-word step of descriptor expansion.
    pub fn neighbors(&self, word: &str, k: usize, min_sim: f64) -> Vec<(String, f64)> {
        let v = self.vec_of(word);
        let lower = word.to_lowercase();
        let mut out: Vec<(String, f64)> = self
            .vecs
            .iter()
            .filter(|(w, _)| **w != lower)
            .map(|(w, wv)| (w.clone(), vectors::dot(&v, wv) as f64))
            .filter(|(_, s)| *s >= min_sim)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Expand a (possibly multi-word) descriptor into `E(d) = {(d_i, k_i)}`
    /// (§4.4.1(a)): every combination of per-word paraphrases, scored by the
    /// product of word similarities, capped at `max_expansions` (KOKO
    /// "defaults to a fixed number of expanded terms", §5).
    pub fn expand(
        &self,
        descriptor: &str,
        max_expansions: usize,
        min_sim: f64,
    ) -> Vec<(String, f64)> {
        let words: Vec<&str> = descriptor.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        // Per-word alternatives: the word itself (score 1) + neighbours.
        let mut alts: Vec<Vec<(String, f64)>> = Vec::with_capacity(words.len());
        for w in &words {
            let mut a = vec![(w.to_lowercase(), 1.0)];
            // Expand only content words we know; function words stay fixed.
            if self.knows(w) {
                a.extend(self.neighbors(w, 24, min_sim));
            }
            alts.push(a);
        }
        // Cartesian product, scored by product of similarities.
        let mut expansions: Vec<(String, f64)> = vec![(String::new(), 1.0)];
        for a in &alts {
            let mut next = Vec::with_capacity(expansions.len() * a.len());
            for (prefix, score) in &expansions {
                for (w, s) in a {
                    let phrase = if prefix.is_empty() {
                        w.clone()
                    } else {
                        format!("{prefix} {w}")
                    };
                    next.push((phrase, score * s));
                }
            }
            // Keep the beam bounded.
            next.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
            next.truncate(max_expansions.max(1) * 4);
            expansions = next;
        }
        expansions.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
        expansions.truncate(max_expansions.max(1));
        expansions
    }
}

/// Embeddings persist inside engine snapshots so a loaded snapshot scores
/// `similarTo` / descriptor clauses with exactly the vectors it was built
/// with — including any merged ontology, which `Embeddings::new()` could
/// not reproduce. Entries serialize in key order (deterministic bytes);
/// vectors are raw `f32` components.
impl koko_storage::Codec for Embeddings {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        let mut words: Vec<&String> = self.vecs.keys().collect();
        words.sort();
        (words.len() as u32).encode(buf);
        for w in words {
            w.encode(buf);
            for x in &self.vecs[w] {
                x.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, koko_storage::DecodeError> {
        let n = u32::decode(input)? as usize;
        let mut vecs: HashMap<String, [f32; DIM]> = HashMap::with_capacity(n.min(4096));
        for _ in 0..n {
            let word = String::decode(input)?;
            let mut v = [0.0f32; DIM];
            for x in &mut v {
                *x = f32::decode(input)?;
            }
            vecs.insert(word, v);
        }
        Ok(Embeddings { vecs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e() -> &'static Embeddings {
        Embeddings::shared()
    }

    #[test]
    fn codec_round_trip_preserves_similarities() {
        use koko_storage::Codec;
        let orig = Embeddings::new().with_ontology(&[("beans", &["arabica", "robusta"])]);
        let back = Embeddings::from_bytes(&orig.to_bytes()).unwrap();
        for (a, b) in [
            ("coffee", "espresso"),
            ("serve", "sells"),
            ("arabica", "robusta"),
            ("unknownword", "coffee"),
        ] {
            assert_eq!(back.similarity(a, b), orig.similarity(a, b), "{a}/{b}");
        }
        assert!(back.knows("arabica"));
        // Deterministic bytes: encoding twice gives identical output.
        assert_eq!(orig.to_bytes(), orig.to_bytes());
    }

    #[test]
    fn synset_members_are_close() {
        assert!(e().similarity("serves", "sells") > 0.7);
        assert!(e().similarity("hired", "employs") > 0.7);
        assert!(e().similarity("espresso", "cappuccino") > 0.7);
        assert!(e().similarity("delicious", "tasty") > 0.7);
    }

    #[test]
    fn unrelated_words_are_far() {
        assert!(e().similarity("espresso", "stadium").abs() < 0.45);
        assert!(e().similarity("barista", "country").abs() < 0.45);
        assert!(e().similarity("xyzzy", "coffee").abs() < 0.45);
    }

    #[test]
    fn example22_similarity_structure() {
        // Paper Example 2.2: cities score against "city", countries against
        // "country", with values in the 0.3–0.6 band and correct ranking.
        for city in ["Tokyo", "Beijing"] {
            let to_city = e().similarity(city, "city");
            let to_country = e().similarity(city, "country");
            assert!(to_city > 0.25 && to_city < 0.75, "{city}: {to_city}");
            assert!(
                to_city > to_country + 0.1,
                "{city}: {to_city} vs {to_country}"
            );
        }
        for country in ["China", "Japan"] {
            let to_country = e().similarity(country, "country");
            let to_city = e().similarity(country, "city");
            assert!(
                to_country > 0.25 && to_country < 0.8,
                "{country}: {to_country}"
            );
            assert!(
                to_country > to_city + 0.1,
                "{country}: {to_country} vs {to_city}"
            );
        }
    }

    #[test]
    fn similarity_is_symmetric_and_reflexive() {
        let s1 = e().similarity("serves", "coffee");
        let s2 = e().similarity("coffee", "serves");
        assert!((s1 - s2).abs() < 1e-6);
        assert_eq!(e().similarity("coffee", "coffee"), 1.0);
        assert_eq!(e().similarity("Coffee", "coffee"), 1.0);
    }

    #[test]
    fn expansion_contains_paraphrases() {
        // 40 expansions is the engine default (EngineOpts::expansion_k).
        let exps = e().expand("serves coffee", 40, 0.55);
        assert_eq!(exps[0].0, "serves coffee");
        assert!((exps[0].1 - 1.0).abs() < 1e-9);
        let phrases: Vec<&str> = exps.iter().map(|(p, _)| p.as_str()).collect();
        assert!(
            phrases
                .iter()
                .any(|p| p.contains("sells") || p.contains("sell")),
            "{phrases:?}"
        );
        assert!(
            phrases.iter().any(|p| p.contains("espresso")),
            "{phrases:?}"
        );
        // Scores are sorted and within (0, 1].
        for w in exps.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(exps.iter().all(|(_, s)| *s > 0.0 && *s <= 1.0));
    }

    #[test]
    fn expansion_is_capped() {
        let exps = e().expand("serves coffee", 5, 0.5);
        assert!(exps.len() <= 5);
        let exps = e().expand("employs baristas", 20, 0.55);
        assert!(exps.len() <= 20);
        assert!(!exps.is_empty());
    }

    #[test]
    fn unknown_words_do_not_expand() {
        let exps = e().expand("zorbulates quuxify", 20, 0.55);
        assert_eq!(exps.len(), 1, "{exps:?}");
    }

    #[test]
    fn neighbors_ranked_and_bounded() {
        let ns = e().neighbors("coffee", 5, 0.5);
        assert!(ns.len() <= 5);
        assert!(!ns.is_empty());
        for w in ns.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(ns.iter().all(|(w, _)| w != "coffee"));
    }

    #[test]
    fn ontology_extends_vocabulary() {
        let custom = Embeddings::new().with_ontology(&[("tea", &["sencha", "matcha", "oolong"])]);
        assert!(custom.similarity("sencha", "matcha") > 0.7);
        assert!(custom.similarity("sencha", "espresso").abs() < 0.45);
    }

    #[test]
    fn phrase_similarity_blends_words() {
        let s = e().phrase_similarity("serves coffee", "sells espresso");
        assert!(s > 0.7, "{s}");
        let far = e().phrase_similarity("serves coffee", "won the championship");
        assert!(far < 0.5, "{far}");
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Embeddings::new();
        let b = Embeddings::new();
        assert_eq!(
            a.similarity("serves", "sells"),
            b.similarity("serves", "sells")
        );
        assert_eq!(
            a.expand("serves coffee", 10, 0.5),
            b.expand("serves coffee", 10, 0.5)
        );
    }
}
