//! Deterministic vector primitives: a seedable SplitMix64 generator, hashed
//! unit vectors, and dense-vector math. No external RNG so embeddings are
//! bit-identical across builds and platforms.

/// FNV-1a 64-bit hash (delegates to the storage codec's canonical
/// implementation so the workspace has exactly one copy of the constants).
pub fn hash64(s: &str) -> u64 {
    koko_storage::codec::fnv1a64(s.as_bytes())
}

/// SplitMix64: tiny, high-quality deterministic generator.
#[derive(Debug, Clone)]
pub struct DetRng(u64);

impl DetRng {
    pub fn new(seed: u64) -> DetRng {
        DetRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [-1, 1).
    pub fn next_signed(&mut self) -> f32 {
        (self.next_f64() * 2.0 - 1.0) as f32
    }
}

/// A unit vector derived deterministically from a string key.
pub fn unit_vector<const N: usize>(key: &str) -> [f32; N] {
    let mut rng = DetRng::new(hash64(key));
    let mut v = [0.0f32; N];
    for x in v.iter_mut() {
        *x = rng.next_signed();
    }
    normalize(v)
}

/// A deterministic fraction in [0, 1) derived from a string key.
pub fn unit_fraction(key: &str) -> f64 {
    DetRng::new(hash64(key)).next_f64()
}

/// Normalize to unit length (zero vectors stay zero).
pub fn normalize<const N: usize>(mut v: [f32; N]) -> [f32; N] {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    v
}

/// Dot product.
pub fn dot<const N: usize>(a: &[f32; N], b: &[f32; N]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable() {
        assert_eq!(hash64("koko"), hash64("koko"));
        assert_ne!(hash64("koko"), hash64("kokp"));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_vectors_are_unit() {
        let v: [f32; 48] = unit_vector("hello");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn distinct_keys_near_orthogonal() {
        let a: [f32; 48] = unit_vector("alpha");
        let b: [f32; 48] = unit_vector("beta");
        assert!(dot(&a, &b).abs() < 0.4);
    }

    #[test]
    fn fractions_in_range() {
        for k in ["a", "b", "c", "d"] {
            let f = unit_fraction(k);
            assert!((0.0..1.0).contains(&f));
        }
    }
}
