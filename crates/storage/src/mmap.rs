//! Read-only memory mapping with zero dependencies.
//!
//! The v4 snapshot reader serves index sections straight out of the page
//! cache instead of copying the file into anonymous memory: `N` server
//! processes opening the same `.koko` file share one physical copy, and
//! eviction under memory pressure is the kernel's problem. Like
//! `koko-net`'s epoll wrapper, the syscalls are declared locally via
//! `extern "C"` instead of pulling in the `libc` crate.
//!
//! On non-Unix targets [`Mmap::map`] falls back to reading the file into
//! an owned buffer — same API, same semantics, no page sharing.
//!
//! # Safety contract
//!
//! A mapping reflects the file *as it is on disk*: truncating the file
//! while a mapping is live turns reads past the new end into `SIGBUS`.
//! KOKO's writers never truncate a published snapshot below its declared
//! extent (saves go through rename, appends only extend and rewrite the
//! fixed-size header), so within this system the mapping is stable; an
//! external process shrinking the file is outside the contract, exactly
//! as it is for every mmap-based reader.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    pub type CInt = i32;
    pub type CVoid = core::ffi::c_void;

    pub const PROT_READ: CInt = 1;
    pub const MAP_PRIVATE: CInt = 0x02;
    pub const MAP_FAILED: isize = -1;

    extern "C" {
        pub fn mmap(
            addr: *mut CVoid,
            len: usize,
            prot: CInt,
            flags: CInt,
            fd: CInt,
            offset: i64,
        ) -> *mut CVoid;
        pub fn munmap(addr: *mut CVoid, len: usize) -> CInt;
    }
}

/// An immutable view of a whole file. `Send + Sync`: the mapping is
/// read-only and unmapped exactly once, on drop.
pub struct Mmap {
    #[cfg(unix)]
    ptr: *const u8,
    #[cfg(unix)]
    len: usize,
    /// Non-Unix fallback: the file copied into an owned buffer.
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

// SAFETY: the mapping is PROT_READ and never mutated or remapped after
// construction; &[u8] access from any thread is sound.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety. Empty files map to an empty
    /// slice without a syscall (a zero-length `mmap` is `EINVAL`).
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::fd::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        // SAFETY: requesting a fresh PROT_READ, MAP_PRIVATE mapping of a
        // file we hold open; the kernel picks the address. The result is
        // checked against MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Non-Unix fallback: read the file into an owned buffer.
    #[cfg(not(unix))]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut f = file;
        f.read_to_end(&mut buf)?;
        Ok(Mmap { buf })
    }

    /// The mapped bytes.
    #[cfg(unix)]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len come from a successful mmap that lives until
        // drop; the memory is never written through this mapping.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The mapped bytes.
    #[cfg(not(unix))]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: exactly the region returned by mmap in `map`.
            unsafe { sys::munmap(self.ptr as *mut sys::CVoid, self.len) };
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("koko_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp("data.bin");
        std::fs::write(&path, b"hello mapped world").unwrap();
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert_eq!(m.as_slice(), b"hello mapped world");
        assert_eq!(m.len(), 18);
        assert!(!m.is_empty());
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), b"");
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = tmp("shared.bin");
        std::fs::write(&path, vec![7u8; 4096 * 3 + 17]).unwrap();
        let f = File::open(&path).unwrap();
        let m = std::sync::Arc::new(Mmap::map(&f).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || m.as_slice().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * (4096 * 3 + 17));
        }
    }

    #[test]
    fn page_aligned_base() {
        // The v4 format relies on "file offset ≡ memory offset (mod 8)":
        // that holds because mmap returns page-aligned bases. Assert the
        // much weaker 8-byte property we actually depend on.
        let path = tmp("aligned.bin");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert_eq!(m.as_slice().as_ptr() as usize % 8, 0);
    }
}
