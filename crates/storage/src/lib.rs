//! `koko-storage` — the embedded storage substrate standing in for the
//! paper's PostgreSQL backend (§4, §6.2.1).
//!
//! KOKO stores four things in its DBMS: the inverted word/entity tables
//! (`W`, `E`), the closure-table form of the two hierarchy indices
//! (`PL`, `POS`), and the parsed articles themselves (loaded back during
//! query evaluation — the `LoadArticle` stage of Table 2). This crate
//! provides the same capabilities as an embedded library:
//!
//! * [`codec`] — a compact, versioned binary serialization format (built on
//!   `bytes`) for the whole data model, so article loads pay a real
//!   deserialization cost like the paper's DBMS reads;
//! * [`table`] — ordered tables with range scans and byte accounting (the
//!   B-tree indexes every scheme in Figure 6 is charged for);
//! * [`closure`] — the Closure Table representation of hierarchy indices
//!   (Karwin \[25\]);
//! * [`docstore`] — the parsed-article store with per-document lazy decode;
//! * [`db`] — a named collection of the above with directory persistence;
//! * [`snapshot_file`] / [`section`] — the `.koko` container: payload
//!   framing (v1–3) and the offset-indexed sectioned layout (v4);
//! * [`mmap`] / [`view`] — zero-dep memory mapping plus alignment-aware
//!   borrowed-view decoding, so sectioned snapshots open in O(sections)
//!   and serve fixed-width arrays straight from the page cache.

pub mod closure;
pub mod codec;
pub mod db;
pub mod docstore;
pub mod mmap;
pub mod section;
pub mod snapshot_file;
pub mod table;
pub mod view;

pub use closure::{ClosureRow, ClosureTable};
pub use codec::{Codec, DecodeError};
pub use db::Db;
pub use docstore::DocStore;
pub use mmap::Mmap;
pub use section::{
    append_sections, write_sectioned_file, SectionEntry, SectionTable, SectionWriter,
    SectionedFile, SECTIONED_VERSION, SEC_BLOCKS, SEC_BOUNDS, SEC_EMBED, SEC_MANIFEST, SEC_ROUTER,
    SEC_SHARD, SEC_STORE,
};
pub use snapshot_file::{
    is_snapshot_file, read_snapshot_file, read_snapshot_file_versioned, read_snapshot_version,
    write_snapshot_file, SnapshotFileError, MAX_PAYLOAD_SNAPSHOT_VERSION, MIN_SNAPSHOT_VERSION,
    SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use table::{MultiMap, OrderedTable};
pub use view::{SharedBytes, U64View, ViewCursor};
