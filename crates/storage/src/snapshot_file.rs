//! The `.koko` snapshot container: framing for build-once / query-many
//! index files.
//!
//! A snapshot file holds one opaque payload (the engine's serialized
//! `Snapshot` body — encoded by `koko-core`, which owns the payload
//! layout) wrapped in a self-describing, checksummed header:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  b"KOKOSNAP"
//!      8     2  format version (u16 LE) — currently 1
//!     10     8  payload length in bytes (u64 LE)
//!     18     8  FNV-1a 64 checksum of the payload (u64 LE)
//!     26     …  payload
//! ```
//!
//! The magic is distinct from the 4-byte `b"KOKO"` header of plain
//! [`codec`](crate::codec) value files, so callers (notably the CLI) can
//! tell a snapshot from a raw corpus or a single persisted value by
//! sniffing the first 8 bytes — see [`is_snapshot_file`].
//!
//! Every way a file can be unusable maps to a distinct
//! [`SnapshotFileError`] variant naming the offending path, so the CLI can
//! print an actionable message instead of panicking on corrupt input.

use crate::codec::fnv1a64;
use std::fmt;
use std::io::Read;
use std::path::Path;

/// Magic bytes opening every `.koko` snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"KOKOSNAP";
/// Snapshot container format version written by this build. Bump on any
/// layout change to the header *or* the payload encoding. Version 2 added
/// the generational manifest (generation counter + base/delta shard
/// split) for live incremental indices; version 3 added the per-shard
/// score-bound statistics section behind ranked top-k pruning (absent in
/// older files, which load with conservative bounds).
pub const SNAPSHOT_VERSION: u16 = 3;
/// Oldest container version this build still reads. Version-1 files (the
/// pre-live, purely static format) load as generation 1 with every shard
/// treated as base.
pub const MIN_SNAPSHOT_VERSION: u16 = 1;
/// Bytes before the payload: magic + version + length + checksum.
pub const SNAPSHOT_HEADER_LEN: usize = 8 + 2 + 8 + 8;

/// Everything that can make a snapshot file unusable. Each variant names
/// the file so messages stay actionable without extra context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotFileError {
    /// The file could not be read or written at all.
    Io { path: String, error: String },
    /// The file exists but does not start with [`SNAPSHOT_MAGIC`].
    NotASnapshot { path: String },
    /// The container version is not [`SNAPSHOT_VERSION`].
    WrongVersion { path: String, found: u16 },
    /// The file ends before the header or the declared payload length.
    Truncated {
        path: String,
        expected: u64,
        found: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch { path: String },
    /// The payload frame is intact but its contents failed to decode.
    Corrupt { path: String, detail: String },
}

impl SnapshotFileError {
    /// The offending file's path, for callers composing their own message.
    pub fn path(&self) -> &str {
        match self {
            SnapshotFileError::Io { path, .. }
            | SnapshotFileError::NotASnapshot { path }
            | SnapshotFileError::WrongVersion { path, .. }
            | SnapshotFileError::Truncated { path, .. }
            | SnapshotFileError::ChecksumMismatch { path }
            | SnapshotFileError::Corrupt { path, .. } => path,
        }
    }
}

impl fmt::Display for SnapshotFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotFileError::Io { path, error } => write!(f, "{path}: {error}"),
            SnapshotFileError::NotASnapshot { path } => {
                write!(f, "{path}: not a KOKO snapshot (expected magic \"KOKOSNAP\"; build one with `koko build`)")
            }
            SnapshotFileError::WrongVersion { path, found } => write!(
                f,
                "{path}: unsupported snapshot format version {found} (this build reads versions {MIN_SNAPSHOT_VERSION} through {SNAPSHOT_VERSION}; rebuild the snapshot with `koko build`)"
            ),
            SnapshotFileError::Truncated {
                path,
                expected,
                found,
            } => write!(
                f,
                "{path}: truncated snapshot ({found} of {expected} payload bytes present)"
            ),
            SnapshotFileError::ChecksumMismatch { path } => {
                write!(f, "{path}: snapshot payload checksum mismatch (file is corrupt)")
            }
            SnapshotFileError::Corrupt { path, detail } => {
                write!(f, "{path}: corrupt snapshot payload: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotFileError {}

fn io_err(path: &Path, e: std::io::Error) -> SnapshotFileError {
    SnapshotFileError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    }
}

/// Write `payload` to `path` wrapped in the snapshot header.
///
/// The write goes to a sibling temp file first and is renamed into place,
/// so an interrupted save (crash, full disk) never destroys an existing
/// good snapshot at `path` — rebuilds stay atomic on one filesystem.
pub fn write_snapshot_file(path: &Path, payload: &[u8]) -> Result<(), SnapshotFileError> {
    use std::io::Write;
    let mut header = Vec::with_capacity(SNAPSHOT_HEADER_LEN);
    header.extend_from_slice(SNAPSHOT_MAGIC);
    header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    // Temp name: full destination file name + pid + per-call counter, so
    // destinations sharing a stem (model.koko vs model.bak) and concurrent
    // writers — across or within a process — never collide on one temp
    // file.
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(format!(".tmp{}.{seq}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let write_all = || -> std::io::Result<()> {
        let f = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(f);
        w.write_all(&header)?;
        w.write_all(payload)?;
        w.flush()?;
        // Data must be durable before the rename becomes visible, or a
        // power loss could install a zero-length file over a good one.
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write_all().map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        io_err(path, e)
    })
}

/// [`read_snapshot_file`] discarding the version tag, for callers whose
/// payload layout never changed across the supported container versions.
pub fn read_snapshot_file(path: &Path) -> Result<Vec<u8>, SnapshotFileError> {
    read_snapshot_file_versioned(path).map(|(_, payload)| payload)
}

/// Read and verify a snapshot file, returning the container version it was
/// written with (any of `MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION`) plus
/// its payload. Checks (in order): readability, magic, version, declared
/// length, checksum — each failure is its own [`SnapshotFileError`]
/// variant. The payload *decoder* dispatches on the returned version.
pub fn read_snapshot_file_versioned(path: &Path) -> Result<(u16, Vec<u8>), SnapshotFileError> {
    let name = path.display().to_string();
    let mut data = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if data.len() < 8 || &data[..8] != SNAPSHOT_MAGIC {
        // A too-short file can't even hold the magic: not a snapshot.
        return Err(SnapshotFileError::NotASnapshot { path: name });
    }
    if data.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotFileError::Truncated {
            path: name,
            expected: SNAPSHOT_HEADER_LEN as u64,
            found: data.len() as u64,
        });
    }
    let version = u16::from_le_bytes(data[8..10].try_into().expect("sized"));
    if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotFileError::WrongVersion {
            path: name,
            found: version,
        });
    }
    let len = u64::from_le_bytes(data[10..18].try_into().expect("sized"));
    let checksum = u64::from_le_bytes(data[18..26].try_into().expect("sized"));
    let available = (data.len() - SNAPSHOT_HEADER_LEN) as u64;
    if available < len {
        return Err(SnapshotFileError::Truncated {
            path: name,
            expected: len,
            found: available,
        });
    }
    // Strip header and trailing bytes in place — the payload can be large
    // and the file buffer is already in memory, so no second copy.
    data.truncate(SNAPSHOT_HEADER_LEN + len as usize);
    data.drain(..SNAPSHOT_HEADER_LEN);
    if fnv1a64(&data) != checksum {
        return Err(SnapshotFileError::ChecksumMismatch { path: name });
    }
    Ok((version, data))
}

/// Sniff the first 8 bytes of `path`: `true` iff they are
/// [`SNAPSHOT_MAGIC`]. Unreadable / short files are simply `false` — the
/// caller will then treat the path as raw text and surface read errors on
/// that route instead.
pub fn is_snapshot_file(path: &Path) -> bool {
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut head = [0u8; 8];
    f.read_exact(&mut head).is_ok() && &head == SNAPSHOT_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("koko_snapshot_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let path = tmp("ok.koko");
        let payload = b"hello snapshot payload".to_vec();
        write_snapshot_file(&path, &payload).unwrap();
        assert!(is_snapshot_file(&path));
        assert_eq!(read_snapshot_file(&path).unwrap(), payload);
    }

    #[test]
    fn overwrite_is_atomic_and_leaves_no_temp_file() {
        // Own subdirectory: the leftover scan must not race other tests'
        // transient temp files in the shared directory.
        let dir = tmp("atomic_subdir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rewrite.koko");
        write_snapshot_file(&path, b"first generation").unwrap();
        write_snapshot_file(&path, b"second generation").unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), b"second generation");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        // A failed write (destination directory vanished) reports Io and
        // cleans up after itself.
        let gone = tmp("no_such_dir").join("x.koko");
        assert!(matches!(
            write_snapshot_file(&gone, b"payload"),
            Err(SnapshotFileError::Io { .. })
        ));
    }

    #[test]
    fn empty_payload_round_trips() {
        let path = tmp("empty.koko");
        write_snapshot_file(&path, &[]).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = tmp("does_not_exist.koko");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            read_snapshot_file(&path),
            Err(SnapshotFileError::Io { .. })
        ));
        assert!(!is_snapshot_file(&path));
    }

    #[test]
    fn wrong_magic_is_not_a_snapshot() {
        let path = tmp("text.koko");
        std::fs::write(&path, "just a text corpus line\n").unwrap();
        assert!(!is_snapshot_file(&path));
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(matches!(err, SnapshotFileError::NotASnapshot { .. }));
        assert!(err.to_string().contains("text.koko"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected_with_both_versions_named() {
        let path = tmp("future.koko");
        write_snapshot_file(&path, b"payload").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&99u16.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert_eq!(
            err,
            SnapshotFileError::WrongVersion {
                path: path.display().to_string(),
                found: 99
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("99") && msg.contains('1'), "{msg}");
    }

    #[test]
    fn every_supported_version_is_readable_and_reported() {
        let path = tmp("window.koko");
        write_snapshot_file(&path, b"payload").unwrap();
        let written = std::fs::read(&path).unwrap();
        for v in MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION {
            let mut data = written.clone();
            data[8..10].copy_from_slice(&v.to_le_bytes());
            std::fs::write(&path, &data).unwrap();
            let (version, payload) = read_snapshot_file_versioned(&path).unwrap();
            assert_eq!(version, v);
            assert_eq!(payload, b"payload");
        }
        // One past each end of the window is rejected.
        for v in [MIN_SNAPSHOT_VERSION - 1, SNAPSHOT_VERSION + 1] {
            let mut data = written.clone();
            data[8..10].copy_from_slice(&v.to_le_bytes());
            std::fs::write(&path, &data).unwrap();
            assert!(matches!(
                read_snapshot_file_versioned(&path),
                Err(SnapshotFileError::WrongVersion { found, .. }) if found == v
            ));
        }
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let path = tmp("cut.koko");
        write_snapshot_file(&path, b"0123456789").unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 8..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = read_snapshot_file(&path).unwrap_err();
            assert!(
                matches!(err, SnapshotFileError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let path = tmp("flip.koko");
        write_snapshot_file(&path, b"some payload bytes").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_snapshot_file(&path),
            Err(SnapshotFileError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_beyond_declared_length_is_ignored() {
        // The frame is length-prefixed, so appended bytes (e.g. from a
        // partially overwritten file) don't corrupt the payload.
        let path = tmp("tail.koko");
        write_snapshot_file(&path, b"payload").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(b"garbage");
        std::fs::write(&path, &data).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), b"payload".to_vec());
    }
}
