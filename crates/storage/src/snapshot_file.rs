//! The `.koko` snapshot container: framing for build-once / query-many
//! index files.
//!
//! Every container starts with the same self-describing, checksummed
//! 26-byte header:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  b"KOKOSNAP"
//!      8     2  format version (u16 LE)
//!     10     8  versions 1–3: payload length in bytes (u64 LE)
//!               version 4:    section-table offset (u64 LE)
//!     18     8  versions 1–3: FNV-1a 64 checksum of the payload
//!               version 4:    FNV-1a 64 checksum of the table bytes
//!     26     …  versions 1–3: the payload
//!               version 4:    8-aligned sections + section table
//! ```
//!
//! Versions 1–3 ("payload-framed") wrap one opaque payload — the
//! engine's serialized `Snapshot` body, encoded by `koko-core` — and are
//! read whole by [`read_snapshot_file_versioned`]. Version 4 replaces
//! the payload with offset-indexed, independently-checksummed sections
//! (see [`crate::section`]) so opening is O(sections) and payload bytes
//! are verified per-touch; a reader dispatches on the version field
//! *before* interpreting header offsets 10..26.
//!
//! The magic is distinct from the 4-byte `b"KOKO"` header of plain
//! [`codec`](crate::codec) value files, so callers (notably the CLI) can
//! tell a snapshot from a raw corpus or a single persisted value by
//! sniffing the first 8 bytes — see [`is_snapshot_file`].
//!
//! Every way a file can be unusable maps to a distinct
//! [`SnapshotFileError`] variant naming the offending path, so the CLI can
//! print an actionable message instead of panicking on corrupt input.

use crate::codec::fnv1a64;
use std::fmt;
use std::io::Read;
use std::path::Path;

/// Magic bytes opening every `.koko` snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"KOKOSNAP";
/// Snapshot container format version written by this build. Bump on any
/// layout change to the header *or* the payload encoding. Version 2 added
/// the generational manifest (generation counter + base/delta shard
/// split) for live incremental indices; version 3 added the per-shard
/// score-bound statistics section behind ranked top-k pruning (absent in
/// older files, which load with conservative bounds); version 4 replaced
/// the single payload with offset-indexed sections for O(1) mmap opens
/// and append-on-add (see [`crate::section`]).
pub const SNAPSHOT_VERSION: u16 = 4;
/// Newest *payload-framed* container version. Versions up to this one
/// carry a single length-prefixed, whole-file-checksummed payload and go
/// through [`read_snapshot_file_versioned`] / [`write_snapshot_file`];
/// later versions are sectioned and go through [`crate::section`].
pub const MAX_PAYLOAD_SNAPSHOT_VERSION: u16 = 3;
/// Oldest container version this build still reads. Version-1 files (the
/// pre-live, purely static format) load as generation 1 with every shard
/// treated as base.
pub const MIN_SNAPSHOT_VERSION: u16 = 1;
/// Bytes before the payload: magic + version + length + checksum.
pub const SNAPSHOT_HEADER_LEN: usize = 8 + 2 + 8 + 8;

/// Everything that can make a snapshot file unusable. Each variant names
/// the file so messages stay actionable without extra context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotFileError {
    /// The file could not be read or written at all.
    Io { path: String, error: String },
    /// The file exists but does not start with [`SNAPSHOT_MAGIC`].
    NotASnapshot { path: String },
    /// The container version is outside the supported window.
    WrongVersion { path: String, found: u16 },
    /// The file ends before the header or the declared payload length.
    Truncated {
        path: String,
        expected: u64,
        found: u64,
    },
    /// The file continues past the declared payload length. A
    /// payload-framed container's extent is exactly `header + length`;
    /// extra bytes mean a torn rewrite or foreign data appended to the
    /// file, neither of which this frame can represent — reject rather
    /// than silently drop them.
    TrailingBytes {
        path: String,
        declared: u64,
        actual: u64,
    },
    /// A declared length does not fit this target's address space
    /// (`usize`), e.g. a >4 GiB payload on a 32-bit build.
    TooLarge { path: String, declared: u64 },
    /// The payload checksum does not match the header.
    ChecksumMismatch { path: String },
    /// The payload frame is intact but its contents failed to decode.
    Corrupt { path: String, detail: String },
}

impl SnapshotFileError {
    /// The offending file's path, for callers composing their own message.
    pub fn path(&self) -> &str {
        match self {
            SnapshotFileError::Io { path, .. }
            | SnapshotFileError::NotASnapshot { path }
            | SnapshotFileError::WrongVersion { path, .. }
            | SnapshotFileError::Truncated { path, .. }
            | SnapshotFileError::TrailingBytes { path, .. }
            | SnapshotFileError::TooLarge { path, .. }
            | SnapshotFileError::ChecksumMismatch { path }
            | SnapshotFileError::Corrupt { path, .. } => path,
        }
    }
}

impl fmt::Display for SnapshotFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotFileError::Io { path, error } => write!(f, "{path}: {error}"),
            SnapshotFileError::NotASnapshot { path } => {
                write!(f, "{path}: not a KOKO snapshot (expected magic \"KOKOSNAP\"; build one with `koko build`)")
            }
            SnapshotFileError::WrongVersion { path, found } => write!(
                f,
                "{path}: unsupported snapshot format version {found} (this build reads versions {MIN_SNAPSHOT_VERSION} through {SNAPSHOT_VERSION}; rebuild the snapshot with `koko build`)"
            ),
            SnapshotFileError::Truncated {
                path,
                expected,
                found,
            } => write!(
                f,
                "{path}: truncated snapshot ({found} of {expected} payload bytes present)"
            ),
            SnapshotFileError::TrailingBytes {
                path,
                declared,
                actual,
            } => write!(
                f,
                "{path}: {} bytes of trailing data past the declared {declared}-byte payload (file is damaged or was appended to)",
                actual - declared
            ),
            SnapshotFileError::TooLarge { path, declared } => write!(
                f,
                "{path}: declared size {declared} exceeds this platform's address space"
            ),
            SnapshotFileError::ChecksumMismatch { path } => {
                write!(f, "{path}: snapshot payload checksum mismatch (file is corrupt)")
            }
            SnapshotFileError::Corrupt { path, detail } => {
                write!(f, "{path}: corrupt snapshot payload: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotFileError {}

pub(crate) fn io_err(path: &Path, e: std::io::Error) -> SnapshotFileError {
    SnapshotFileError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    }
}

/// Flush a directory's entries to stable storage. On POSIX, `rename`
/// and file creation update the *directory*, and that update is only
/// durable once the directory itself is fsynced — syncing the file alone
/// leaves the publish able to vanish on power loss.
#[cfg(unix)]
pub(crate) fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}
/// Non-Unix: directory handles can't be opened/fsynced portably (and
/// Windows metadata semantics differ); the rename itself is the best
/// available publish.
#[cfg(not(unix))]
pub(crate) fn fsync_dir(_dir: &Path) -> std::io::Result<()> {
    Ok(())
}

/// Atomically publish `parts` (concatenated) as the contents of `path`.
///
/// Durability invariant: on `Ok(())`, both the bytes *and* the directory
/// entry are on stable storage — the data is fsynced before the rename
/// (so a crash can't install a hole where a good file was) and the
/// parent directory is fsynced after it (so the rename itself survives
/// power loss). Shared by the payload-framed writer and the v4 section
/// writer.
pub(crate) fn atomic_publish(path: &Path, parts: &[&[u8]]) -> Result<(), SnapshotFileError> {
    use std::io::Write;
    // Temp name: full destination file name + pid + per-call counter, so
    // destinations sharing a stem (model.koko vs model.bak) and concurrent
    // writers — across or within a process — never collide on one temp
    // file.
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(format!(".tmp{}.{seq}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let write_all = || -> std::io::Result<()> {
        let f = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(f);
        for part in parts {
            w.write_all(part)?;
        }
        w.flush()?;
        // Data must be durable before the rename becomes visible, or a
        // power loss could install a zero-length file over a good one.
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        // …and the rename is only durable once the directory entry is.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fsync_dir(parent)?;
        }
        Ok(())
    };
    write_all().map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        io_err(path, e)
    })
}

/// Write `payload` to `path` wrapped in the payload-framed snapshot
/// header (version [`MAX_PAYLOAD_SNAPSHOT_VERSION`] — the sectioned v4
/// format is written by [`crate::section::SectionWriter`] instead).
///
/// The write goes to a sibling temp file first and is renamed into place,
/// so an interrupted save (crash, full disk) never destroys an existing
/// good snapshot at `path` — rebuilds stay atomic on one filesystem. See
/// `atomic_publish` for the durability invariant.
pub fn write_snapshot_file(path: &Path, payload: &[u8]) -> Result<(), SnapshotFileError> {
    let mut header = Vec::with_capacity(SNAPSHOT_HEADER_LEN);
    header.extend_from_slice(SNAPSHOT_MAGIC);
    header.extend_from_slice(&MAX_PAYLOAD_SNAPSHOT_VERSION.to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    atomic_publish(path, &[&header, payload])
}

/// [`read_snapshot_file`] discarding the version tag, for callers whose
/// payload layout never changed across the supported container versions.
pub fn read_snapshot_file(path: &Path) -> Result<Vec<u8>, SnapshotFileError> {
    read_snapshot_file_versioned(path).map(|(_, payload)| payload)
}

/// Sniff a snapshot's container version without reading its body: checks
/// the magic and that the version is in the supported window, returning
/// it so the caller can route payload-framed files to
/// [`read_snapshot_file_versioned`] and v4 files to [`crate::section`].
pub fn read_snapshot_version(path: &Path) -> Result<u16, SnapshotFileError> {
    let name = path.display().to_string();
    let mut f = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    let mut head = [0u8; 10];
    let mut got = 0;
    while got < head.len() {
        match f.read(&mut head[got..]).map_err(|e| io_err(path, e))? {
            0 => break,
            n => got += n,
        }
    }
    if got < 8 || &head[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotFileError::NotASnapshot { path: name });
    }
    if got < 10 {
        return Err(SnapshotFileError::Truncated {
            path: name,
            expected: SNAPSHOT_HEADER_LEN as u64,
            found: got as u64,
        });
    }
    let version = u16::from_le_bytes(head[8..10].try_into().expect("sized"));
    if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotFileError::WrongVersion {
            path: name,
            found: version,
        });
    }
    Ok(version)
}

/// Read and verify a payload-framed snapshot file, returning the
/// container version it was written with (any of
/// `MIN_SNAPSHOT_VERSION..=MAX_PAYLOAD_SNAPSHOT_VERSION`) plus its
/// payload. Checks (in order): readability, magic, version, declared
/// length (truncation *and* trailing bytes are both rejected — the frame
/// must cover the file exactly), checksum — each failure is its own
/// [`SnapshotFileError`] variant. The payload *decoder* dispatches on
/// the returned version. Sectioned (v4) files have no single payload
/// frame and are reported as [`SnapshotFileError::Corrupt`] here; route
/// them through [`crate::section::SectionedFile`] instead (see
/// [`read_snapshot_version`]).
pub fn read_snapshot_file_versioned(path: &Path) -> Result<(u16, Vec<u8>), SnapshotFileError> {
    let name = path.display().to_string();
    let mut data = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if data.len() < 8 || &data[..8] != SNAPSHOT_MAGIC {
        // A too-short file can't even hold the magic: not a snapshot.
        return Err(SnapshotFileError::NotASnapshot { path: name });
    }
    if data.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotFileError::Truncated {
            path: name,
            expected: SNAPSHOT_HEADER_LEN as u64,
            found: data.len() as u64,
        });
    }
    let version = u16::from_le_bytes(data[8..10].try_into().expect("sized"));
    if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotFileError::WrongVersion {
            path: name,
            found: version,
        });
    }
    if version > MAX_PAYLOAD_SNAPSHOT_VERSION {
        // Supported container, wrong framing: v4 headers carry a table
        // offset where v1–3 carry a payload length.
        return Err(SnapshotFileError::Corrupt {
            path: name,
            detail: format!(
                "version {version} snapshots are section-indexed and have no payload frame; open through the section reader"
            ),
        });
    }
    let len = u64::from_le_bytes(data[10..18].try_into().expect("sized"));
    let checksum = u64::from_le_bytes(data[18..26].try_into().expect("sized"));
    let available = (data.len() - SNAPSHOT_HEADER_LEN) as u64;
    if available < len {
        return Err(SnapshotFileError::Truncated {
            path: name,
            expected: len,
            found: available,
        });
    }
    if available > len {
        // Bytes past the declared payload used to be silently dropped,
        // which masked torn rewrites; the frame must cover the file
        // exactly. (The sectioned v4 format tolerates a tail by design —
        // there it's an aborted append below the commit point.)
        return Err(SnapshotFileError::TrailingBytes {
            path: name,
            declared: len,
            actual: available,
        });
    }
    // `len` fits in memory on this target or the file couldn't have been
    // read — but check explicitly rather than `as`-cast: on a 32-bit
    // target a >4 GiB declared length would wrap and frame garbage.
    let len_usize = usize::try_from(len).map_err(|_| SnapshotFileError::TooLarge {
        path: name.clone(),
        declared: len,
    })?;
    // Strip the header in place — the payload can be large and the file
    // buffer is already in memory, so no second copy.
    debug_assert_eq!(data.len(), SNAPSHOT_HEADER_LEN + len_usize);
    data.drain(..SNAPSHOT_HEADER_LEN);
    if fnv1a64(&data) != checksum {
        return Err(SnapshotFileError::ChecksumMismatch { path: name });
    }
    Ok((version, data))
}

/// Sniff the first 8 bytes of `path`: `true` iff they are
/// [`SNAPSHOT_MAGIC`]. Unreadable / short files are simply `false` — the
/// caller will then treat the path as raw text and surface read errors on
/// that route instead.
pub fn is_snapshot_file(path: &Path) -> bool {
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut head = [0u8; 8];
    f.read_exact(&mut head).is_ok() && &head == SNAPSHOT_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("koko_snapshot_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let path = tmp("ok.koko");
        let payload = b"hello snapshot payload".to_vec();
        write_snapshot_file(&path, &payload).unwrap();
        assert!(is_snapshot_file(&path));
        assert_eq!(read_snapshot_file(&path).unwrap(), payload);
        assert_eq!(
            read_snapshot_version(&path).unwrap(),
            MAX_PAYLOAD_SNAPSHOT_VERSION
        );
    }

    #[test]
    fn overwrite_is_atomic_and_leaves_no_temp_file() {
        // Own subdirectory: the leftover scan must not race other tests'
        // transient temp files in the shared directory.
        let dir = tmp("atomic_subdir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rewrite.koko");
        write_snapshot_file(&path, b"first generation").unwrap();
        write_snapshot_file(&path, b"second generation").unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), b"second generation");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        // A failed write (destination directory vanished) reports Io and
        // cleans up after itself.
        let gone = tmp("no_such_dir").join("x.koko");
        assert!(matches!(
            write_snapshot_file(&gone, b"payload"),
            Err(SnapshotFileError::Io { .. })
        ));
    }

    #[test]
    fn empty_payload_round_trips() {
        let path = tmp("empty.koko");
        write_snapshot_file(&path, &[]).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = tmp("does_not_exist.koko");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            read_snapshot_file(&path),
            Err(SnapshotFileError::Io { .. })
        ));
        assert!(matches!(
            read_snapshot_version(&path),
            Err(SnapshotFileError::Io { .. })
        ));
        assert!(!is_snapshot_file(&path));
    }

    #[test]
    fn wrong_magic_is_not_a_snapshot() {
        let path = tmp("text.koko");
        std::fs::write(&path, "just a text corpus line\n").unwrap();
        assert!(!is_snapshot_file(&path));
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(matches!(err, SnapshotFileError::NotASnapshot { .. }));
        assert!(err.to_string().contains("text.koko"), "{err}");
        assert!(matches!(
            read_snapshot_version(&path),
            Err(SnapshotFileError::NotASnapshot { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected_with_both_versions_named() {
        let path = tmp("future.koko");
        write_snapshot_file(&path, b"payload").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&99u16.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert_eq!(
            err,
            SnapshotFileError::WrongVersion {
                path: path.display().to_string(),
                found: 99
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("99") && msg.contains('1'), "{msg}");
        assert!(matches!(
            read_snapshot_version(&path),
            Err(SnapshotFileError::WrongVersion { found: 99, .. })
        ));
    }

    #[test]
    fn every_payload_framed_version_is_readable_and_reported() {
        let path = tmp("window.koko");
        write_snapshot_file(&path, b"payload").unwrap();
        let written = std::fs::read(&path).unwrap();
        for v in MIN_SNAPSHOT_VERSION..=MAX_PAYLOAD_SNAPSHOT_VERSION {
            let mut data = written.clone();
            data[8..10].copy_from_slice(&v.to_le_bytes());
            std::fs::write(&path, &data).unwrap();
            let (version, payload) = read_snapshot_file_versioned(&path).unwrap();
            assert_eq!(version, v);
            assert_eq!(payload, b"payload");
            assert_eq!(read_snapshot_version(&path).unwrap(), v);
        }
        // A sectioned (v4) stamp over a payload frame is a supported
        // *version* (read_snapshot_version accepts it) but not a payload
        // frame — the payload reader rejects it with a pointer to the
        // section reader instead of misreading the header.
        let mut data = written.clone();
        data[8..10].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert_eq!(read_snapshot_version(&path).unwrap(), SNAPSHOT_VERSION);
        assert!(matches!(
            read_snapshot_file_versioned(&path),
            Err(SnapshotFileError::Corrupt { .. })
        ));
        // One past each end of the window is rejected outright.
        for v in [MIN_SNAPSHOT_VERSION - 1, SNAPSHOT_VERSION + 1] {
            let mut data = written.clone();
            data[8..10].copy_from_slice(&v.to_le_bytes());
            std::fs::write(&path, &data).unwrap();
            assert!(matches!(
                read_snapshot_file_versioned(&path),
                Err(SnapshotFileError::WrongVersion { found, .. }) if found == v
            ));
        }
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let path = tmp("cut.koko");
        write_snapshot_file(&path, b"0123456789").unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 8..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = read_snapshot_file(&path).unwrap_err();
            assert!(
                matches!(err, SnapshotFileError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let path = tmp("flip.koko");
        write_snapshot_file(&path, b"some payload bytes").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_snapshot_file(&path),
            Err(SnapshotFileError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_beyond_declared_length_are_rejected() {
        // Regression: these used to be silently truncated away, which
        // masked torn rewrites (and would mask aborted v4-style appends
        // routed to the wrong reader). The frame must cover the file
        // exactly.
        let path = tmp("tail.koko");
        write_snapshot_file(&path, b"payload").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(b"garbage");
        std::fs::write(&path, &data).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert_eq!(
            err,
            SnapshotFileError::TrailingBytes {
                path: path.display().to_string(),
                declared: 7,
                actual: 14,
            }
        );
        assert!(
            err.to_string().contains("7 bytes of trailing data"),
            "{err}"
        );
    }

    #[test]
    fn declared_length_past_address_space_is_structured_not_wrapping() {
        // A 64-bit declared length that can't fit in usize must report
        // TooLarge, never wrap in an `as` cast. On 64-bit targets the
        // huge length is caught earlier as Truncated (the bytes aren't
        // there); both ways the error is structured.
        let path = tmp("huge.koko");
        write_snapshot_file(&path, b"small").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[10..18].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotFileError::Truncated { .. } | SnapshotFileError::TooLarge { .. }
            ),
            "{err:?}"
        );
    }
}
