//! The Closure Table representation of hierarchy indices (§4, §6.2.1).
//!
//! The paper stores each hierarchy index as a closure table
//! `PL/POS(id, label, depth, aid, alabel, adepth)` — one row per
//! (node, ancestor-or-self) pair — and answers path lookups with self-joins.
//! `koko-index` exports its in-memory hierarchy index here for persistence
//! and size accounting, and the closure table can itself answer
//! ancestor/descendant queries (tested against the in-memory index).

use crate::codec::{Codec, DecodeError};
use crate::table::MultiMap;
use bytes::BytesMut;

/// One `(node, ancestor)` row. `depth` counts from the hierarchy root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosureRow {
    pub id: u32,
    pub label: u16,
    pub depth: u16,
    pub aid: u32,
    pub alabel: u16,
    pub adepth: u16,
}

impl Codec for ClosureRow {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.label.encode(buf);
        self.depth.encode(buf);
        self.aid.encode(buf);
        self.alabel.encode(buf);
        self.adepth.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ClosureRow {
            id: u32::decode(input)?,
            label: u16::decode(input)?,
            depth: u16::decode(input)?,
            aid: u32::decode(input)?,
            alabel: u16::decode(input)?,
            adepth: u16::decode(input)?,
        })
    }
}

/// Encoded width of a row (6.2.1 size accounting).
pub const CLOSURE_ROW_BYTES: usize = 16;

/// A closure table with secondary indexes on `id` and `(alabel, adepth)`.
#[derive(Debug, Clone, Default)]
pub struct ClosureTable {
    rows: Vec<ClosureRow>,
    /// node id → row indexes where this node is the descendant.
    by_id: MultiMap<u32, usize>,
    /// label → row indexes where this label is the descendant label.
    by_label: MultiMap<u16, usize>,
}

impl ClosureTable {
    pub fn new() -> ClosureTable {
        ClosureTable::default()
    }

    pub fn insert(&mut self, row: ClosureRow) {
        let idx = self.rows.len();
        self.by_id.push(row.id, idx, 8);
        self.by_label.push(row.label, idx, 8);
        self.rows.push(row);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn rows(&self) -> &[ClosureRow] {
        &self.rows
    }

    /// All ancestors (and self) of node `id`, nearest first.
    pub fn ancestors_of(&self, id: u32) -> Vec<ClosureRow> {
        let mut out: Vec<ClosureRow> = self.by_id.get(&id).iter().map(|&i| self.rows[i]).collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.adepth));
        out
    }

    /// Node ids with label `label` whose ancestor set contains a node with
    /// label `alabel` exactly `gap` levels above (`gap = 1` → parent). This
    /// is the self-join the paper issues per path step.
    pub fn nodes_with_ancestor(&self, label: u16, alabel: u16, gap: Option<u16>) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .by_label
            .get(&label)
            .iter()
            .map(|&i| self.rows[i])
            .filter(|r| {
                r.alabel == alabel
                    && r.adepth < r.depth
                    && match gap {
                        Some(g) => r.depth - r.adepth == g,
                        None => true,
                    }
            })
            .map(|r| r.id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Approximate byte footprint (rows + two secondary indexes).
    pub fn approx_bytes(&self) -> usize {
        self.rows.len() * CLOSURE_ROW_BYTES
            + self.by_id.approx_bytes()
            + self.by_label.approx_bytes()
    }
}

impl Codec for ClosureTable {
    fn encode(&self, buf: &mut BytesMut) {
        self.rows.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let rows: Vec<ClosureRow> = Vec::decode(input)?;
        let mut t = ClosureTable::new();
        for r in rows {
            t.insert(r);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy hierarchy:  0(root) → 1(dobj) → 2(nn); 0 → 3(nsubj)
    fn toy() -> ClosureTable {
        let mut t = ClosureTable::new();
        let rows = [
            // (id, label, depth, aid, alabel, adepth) — self rows included.
            (0, 10, 0, 0, 10, 0),
            (1, 20, 1, 1, 20, 1),
            (1, 20, 1, 0, 10, 0),
            (2, 30, 2, 2, 30, 2),
            (2, 30, 2, 1, 20, 1),
            (2, 30, 2, 0, 10, 0),
            (3, 40, 1, 3, 40, 1),
            (3, 40, 1, 0, 10, 0),
        ];
        for (id, label, depth, aid, alabel, adepth) in rows {
            t.insert(ClosureRow {
                id,
                label,
                depth,
                aid,
                alabel,
                adepth,
            });
        }
        t
    }

    #[test]
    fn ancestors_nearest_first() {
        let t = toy();
        let anc = t.ancestors_of(2);
        let ids: Vec<u32> = anc.iter().map(|r| r.aid).collect();
        assert_eq!(ids, vec![2, 1, 0]);
    }

    #[test]
    fn parent_join() {
        let t = toy();
        // nn(30) nodes whose *parent* is dobj(20):
        assert_eq!(t.nodes_with_ancestor(30, 20, Some(1)), vec![2]);
        // nn(30) nodes with root(10) ancestor at any depth:
        assert_eq!(t.nodes_with_ancestor(30, 10, None), vec![2]);
        // nsubj(40) with dobj(20) ancestor: none.
        assert!(t.nodes_with_ancestor(40, 20, None).is_empty());
    }

    #[test]
    fn codec_round_trip() {
        let t = toy();
        let bytes = t.to_bytes();
        let back = ClosureTable::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.nodes_with_ancestor(30, 20, Some(1)), vec![2]);
    }

    #[test]
    fn size_accounting_grows() {
        let t = toy();
        assert!(t.approx_bytes() >= t.len() * CLOSURE_ROW_BYTES);
    }
}
