//! Versioned binary serialization for the KOKO data model.
//!
//! A small hand-rolled format (varint-free, little-endian, length-prefixed)
//! chosen over a general-purpose serializer so decode cost is predictable —
//! the Table 2 `LoadArticle` stage measures exactly this path.

use bytes::{BufMut, BytesMut};
use koko_nlp::{
    Document, EntityMention, EntityPosting, EntityType, ParseLabel, PosTag, Posting, Sentence,
    Token,
};
use std::fmt;

/// Format version written into every file header.
pub const FORMAT_VERSION: u8 = 1;
/// Magic bytes identifying KOKO storage files.
pub const MAGIC: &[u8; 4] = b"KOKO";

/// Decoding failure (truncation, bad tag, version mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(msg: &str) -> Result<T, DecodeError> {
    Err(DecodeError(msg.to_string()))
}

/// Binary encode/decode. Implemented for primitives, containers, and the
/// whole `koko-nlp` data model.
pub trait Codec: Sized {
    fn encode(&self, buf: &mut BytesMut);
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.to_vec()
    }

    /// Convenience: decode a whole buffer, requiring full consumption.
    fn from_bytes(mut input: &[u8]) -> Result<Self, DecodeError> {
        let v = Self::decode(&mut input)?;
        if !input.is_empty() {
            return err("trailing bytes");
        }
        Ok(v)
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return err("unexpected end of input");
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_codec_le {
    ($t:ty, $put:ident, $n:expr) => {
        impl Codec for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let b = take(input, $n)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized slice")))
            }
        }
    };
}

impl_codec_le!(u16, put_u16_le, 2);
impl_codec_le!(u32, put_u32_le, 4);
impl_codec_le!(u64, put_u64_le, 8);
impl_codec_le!(f32, put_f32_le, 4);
impl_codec_le!(f64, put_f64_le, 8);

impl Codec for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(take(input, 1)?[0])
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => err("invalid bool"),
        }
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u32::decode(input)? as usize;
        let b = take(input, len)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError("invalid utf8".into()))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u32::decode(input)? as usize;
        // Guard against corrupt huge lengths: cap the pre-allocation.
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            _ => err("invalid option tag"),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

macro_rules! impl_codec_enum {
    ($t:ty) => {
        impl Codec for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.put_u8(*self as u8);
            }
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let v = take(input, 1)?[0] as usize;
                <$t>::ALL
                    .get(v)
                    .copied()
                    .ok_or_else(|| DecodeError(format!("invalid {} tag {v}", stringify!($t))))
            }
        }
    };
}

impl_codec_enum!(PosTag);
impl_codec_enum!(ParseLabel);
impl_codec_enum!(EntityType);

impl Codec for Token {
    fn encode(&self, buf: &mut BytesMut) {
        self.text.encode(buf);
        self.pos.encode(buf);
        self.label.encode(buf);
        self.head.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let text = String::decode(input)?;
        let mut t = Token::new(text);
        t.pos = PosTag::decode(input)?;
        t.label = ParseLabel::decode(input)?;
        t.head = Option::<u32>::decode(input)?;
        Ok(t)
    }
}

impl Codec for EntityMention {
    fn encode(&self, buf: &mut BytesMut) {
        self.start.encode(buf);
        self.end.encode(buf);
        self.etype.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(EntityMention {
            start: u32::decode(input)?,
            end: u32::decode(input)?,
            etype: EntityType::decode(input)?,
        })
    }
}

impl Codec for Sentence {
    fn encode(&self, buf: &mut BytesMut) {
        self.tokens.encode(buf);
        self.entities.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Sentence {
            tokens: Vec::decode(input)?,
            entities: Vec::decode(input)?,
        })
    }
}

impl Codec for Document {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.sentences.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Document {
            id: u32::decode(input)?,
            sentences: Vec::decode(input)?,
        })
    }
}

impl Codec for Posting {
    fn encode(&self, buf: &mut BytesMut) {
        self.sid.encode(buf);
        self.tid.encode(buf);
        self.left.encode(buf);
        self.right.encode(buf);
        self.depth.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Posting {
            sid: u32::decode(input)?,
            tid: u32::decode(input)?,
            left: u32::decode(input)?,
            right: u32::decode(input)?,
            depth: u16::decode(input)?,
        })
    }
}

impl Codec for EntityPosting {
    fn encode(&self, buf: &mut BytesMut) {
        self.sid.encode(buf);
        self.left.encode(buf);
        self.right.encode(buf);
        self.etype.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(EntityPosting {
            sid: u32::decode(input)?,
            left: u32::decode(input)?,
            right: u32::decode(input)?,
            etype: EntityType::decode(input)?,
        })
    }
}

/// FNV-1a 64-bit hash — the snapshot container's payload checksum. Chosen
/// over CRC for simplicity (no table) while still catching truncation and
/// bit flips; collision resistance is not a goal.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Write a value to a file with the KOKO header (magic + version).
pub fn save_to_file<T: Codec>(path: &std::path::Path, value: &T) -> std::io::Result<()> {
    use std::io::Write;
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(FORMAT_VERSION);
    value.encode(&mut buf);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&buf)?;
    f.flush()
}

/// Read a value written by [`save_to_file`].
pub fn load_from_file<T: Codec>(path: &std::path::Path) -> std::io::Result<T> {
    let data = std::fs::read(path)?;
    let mut input: &[u8] = &data;
    let magic =
        take(&mut input, 4).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    if magic != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a KOKO storage file",
        ));
    }
    let version = take(&mut input, 1)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?[0];
    if version != FORMAT_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unsupported format version {version}"),
        ));
    }
    T::from_bytes(input).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives() {
        round_trip(&42u8);
        round_trip(&0xBEEFu16);
        round_trip(&0xDEADBEEFu32);
        round_trip(&u64::MAX);
        round_trip(&3.25f64);
        round_trip(&true);
        round_trip(&"héllo wörld".to_string());
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Some(7u32));
        round_trip(&Option::<u32>::None);
        round_trip(&(3u32, "x".to_string()));
    }

    #[test]
    fn enums() {
        for t in PosTag::ALL {
            round_trip(&t);
        }
        for l in ParseLabel::ALL {
            round_trip(&l);
        }
        for e in EntityType::ALL {
            round_trip(&e);
        }
    }

    #[test]
    fn document_round_trip() {
        let p = Pipeline::new();
        let doc = p.parse_document(
            9,
            "Anna ate some delicious cheesecake that she bought at a grocery store. She was happy.",
        );
        round_trip(&doc);
    }

    #[test]
    fn posting_round_trip() {
        round_trip(&Posting {
            sid: 1,
            tid: 2,
            left: 0,
            right: 12,
            depth: 3,
        });
    }

    #[test]
    fn truncated_input_errors() {
        let doc = Document::default();
        let bytes = doc.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Document::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_enum_tag_errors() {
        assert!(PosTag::from_bytes(&[200]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("koko_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.koko");
        let p = Pipeline::new();
        let doc = p.parse_document(3, "go Falcons!");
        save_to_file(&path, &doc).unwrap();
        let back: Document = load_from_file(&path).unwrap();
        assert_eq!(back, doc);
        // Corrupt magic.
        std::fs::write(&path, b"NOPE\x01").unwrap();
        assert!(load_from_file::<Document>(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
