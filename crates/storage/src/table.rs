//! Ordered tables: the B-tree-indexed relations every indexing scheme in
//! §6.2.1 stores its postings in, with byte accounting for the Figure 6(b)
//! index-size comparison.

use crate::codec::{Codec, DecodeError};
use bytes::BytesMut;
use std::collections::BTreeMap;
use std::ops::RangeBounds;

/// An ordered single-value table (unique key → value), modelling a relation
/// with a B-tree primary index.
#[derive(Debug, Clone, Default)]
pub struct OrderedTable<K: Ord + Clone, V> {
    map: BTreeMap<K, V>,
    approx_bytes: usize,
}

impl<K: Ord + Clone, V> OrderedTable<K, V> {
    pub fn new() -> Self {
        OrderedTable {
            map: BTreeMap::new(),
            approx_bytes: 0,
        }
    }

    /// Insert, accounting `entry_bytes` toward the table footprint (callers
    /// know their row encoding width; see `koko-index`).
    pub fn insert_sized(&mut self, key: K, value: V, entry_bytes: usize) -> Option<V> {
        let old = self.map.insert(key, value);
        if old.is_none() {
            self.approx_bytes += entry_bytes;
        }
        old
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.map.get_mut(key)
    }

    pub fn range<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        self.map.range(range)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate on-disk footprint in bytes (payload + per-entry B-tree
    /// overhead).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes + self.map.len() * BTREE_ENTRY_OVERHEAD
    }
}

/// Charged per B-tree entry: key slot + child pointers amortized, the same
/// constant for every indexing scheme so comparisons stay fair.
pub const BTREE_ENTRY_OVERHEAD: usize = 16;

/// An ordered multi-map (key → list of rows): the posting-list tables
/// (`W`, `E`, `P`) of §6.2.1.
#[derive(Debug, Clone, Default)]
pub struct MultiMap<K: Ord + Clone, V> {
    map: BTreeMap<K, Vec<V>>,
    rows: usize,
    approx_bytes: usize,
}

impl<K: Ord + Clone, V> MultiMap<K, V> {
    pub fn new() -> Self {
        MultiMap {
            map: BTreeMap::new(),
            rows: 0,
            approx_bytes: 0,
        }
    }

    /// Append a row under `key`, accounting `row_bytes`.
    pub fn push(&mut self, key: K, value: V, row_bytes: usize) {
        self.map.entry(key).or_default().push(value);
        self.rows += 1;
        self.approx_bytes += row_bytes;
    }

    /// The posting list for `key` (empty slice when absent).
    pub fn get(&self, key: &K) -> &[V] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&K, &Vec<V>)> {
        self.map.iter()
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of rows across all keys.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes + self.map.len() * BTREE_ENTRY_OVERHEAD
    }
}

/// Posting-list tables serialize in key order (deterministic bytes for
/// identical contents); the byte accounting is persisted so a reloaded
/// index reports the same footprint it did when built.
impl<K: Ord + Clone + Codec, V: Codec> Codec for MultiMap<K, V> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.map.len() as u32).encode(buf);
        for (k, v) in &self.map {
            k.encode(buf);
            v.encode(buf);
        }
        (self.rows as u64).encode(buf);
        (self.approx_bytes as u64).encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u32::decode(input)? as usize;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = Vec::<V>::decode(input)?;
            map.insert(k, v);
        }
        Ok(MultiMap {
            map,
            rows: u64::decode(input)? as usize,
            approx_bytes: u64::decode(input)? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_table_basics() {
        let mut t: OrderedTable<u32, String> = OrderedTable::new();
        assert!(t.is_empty());
        t.insert_sized(2, "b".into(), 10);
        t.insert_sized(1, "a".into(), 10);
        t.insert_sized(3, "c".into(), 10);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&2), Some(&"b".to_string()));
        let keys: Vec<u32> = t.range(1..3).map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2]);
        assert!(t.approx_bytes() >= 30);
    }

    #[test]
    fn overwrite_does_not_double_count() {
        let mut t: OrderedTable<u32, u32> = OrderedTable::new();
        t.insert_sized(1, 10, 100);
        let before = t.approx_bytes();
        t.insert_sized(1, 20, 100);
        assert_eq!(t.approx_bytes(), before);
        assert_eq!(t.get(&1), Some(&20));
    }

    #[test]
    fn multimap_posting_lists() {
        let mut m: MultiMap<String, u32> = MultiMap::new();
        m.push("ate".into(), 1, 8);
        m.push("ate".into(), 2, 8);
        m.push("pie".into(), 3, 8);
        assert_eq!(m.get(&"ate".to_string()), &[1, 2]);
        assert_eq!(m.get(&"nope".to_string()), &[] as &[u32]);
        assert_eq!(m.num_keys(), 2);
        assert_eq!(m.num_rows(), 3);
        assert!(m.approx_bytes() >= 24);
    }

    #[test]
    fn multimap_codec_round_trip() {
        let mut m: MultiMap<String, u32> = MultiMap::new();
        m.push("ate".into(), 1, 8);
        m.push("ate".into(), 2, 8);
        m.push("pie".into(), 3, 8);
        let back = MultiMap::<String, u32>::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.get(&"ate".to_string()), m.get(&"ate".to_string()));
        assert_eq!(back.num_keys(), m.num_keys());
        assert_eq!(back.num_rows(), m.num_rows());
        assert_eq!(back.approx_bytes(), m.approx_bytes());
    }

    #[test]
    fn multimap_iteration_is_ordered() {
        let mut m: MultiMap<u32, u32> = MultiMap::new();
        for k in [5, 1, 3] {
            m.push(k, k * 10, 4);
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }
}
