//! Borrowed-view decoding over shared byte backings.
//!
//! The classic [`crate::codec::Codec`] decode copies every field into
//! owned structures. For memory-mapped snapshots that copy is exactly
//! what we want to avoid: a 10 GiB doc store should stay in the page
//! cache until a query touches one document. This module provides the
//! alignment-aware building blocks:
//!
//! * [`SharedBytes`] — a cheaply-clonable `(backing, offset, len)` view
//!   over any `Arc`-shared byte source (an `Mmap`, an owned `Vec<u8>`);
//! * [`U64View`] — a `&[u64]` reinterpretation of a `SharedBytes`,
//!   constructed only when the *absolute* pointer is 8-byte aligned and
//!   the target is little-endian, so it is sound and byte-identical to
//!   an owned decode (callers fall back to copying otherwise);
//! * [`ViewCursor`] — the borrowed-view analogue of `Codec::decode`'s
//!   `&[u8]` cursor: consumes integers by value and sub-ranges by view.
//!
//! Soundness rule: alignment is checked against the **absolute memory
//! address**, never the file offset alone. The v4 writer 8-aligns file
//! offsets and `mmap` returns page-aligned bases, so the two agree for
//! mapped backings — but an `Owned(Vec<u8>)` backing only guarantees
//! align-1, which is why [`U64View::new`] is fallible rather than a
//! constructor that trusts the format.

use crate::codec::DecodeError;
use std::sync::Arc;

/// A cheaply-clonable view of a byte range inside a shared backing.
///
/// Cloning bumps an `Arc`; sub-slicing is offset arithmetic. The backing
/// is type-erased so the same machinery serves `Mmap` files and owned
/// buffers (tests, non-Unix fallback) identically.
#[derive(Clone)]
pub struct SharedBytes {
    data: Arc<dyn AsRef<[u8]> + Send + Sync>,
    offset: usize,
    len: usize,
}

impl SharedBytes {
    /// View the whole backing.
    pub fn new(data: Arc<dyn AsRef<[u8]> + Send + Sync>) -> SharedBytes {
        let len = data.as_ref().as_ref().len();
        SharedBytes {
            data,
            offset: 0,
            len,
        }
    }

    /// Wrap an owned buffer (align-1 guarantee only).
    pub fn from_vec(bytes: Vec<u8>) -> SharedBytes {
        SharedBytes::new(Arc::new(bytes))
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data.as_ref().as_ref()[self.offset..self.offset + self.len]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `range` within this view (same backing, no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds — callers validate ranges
    /// against section lengths before slicing.
    pub fn slice(&self, range: std::ops::Range<usize>) -> SharedBytes {
        assert!(range.start <= range.end && range.end <= self.len);
        SharedBytes {
            data: self.data.clone(),
            offset: self.offset + range.start,
            len: range.end - range.start,
        }
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBytes")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &SharedBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for SharedBytes {}

/// A `&[u64]` view over little-endian 8-aligned bytes.
///
/// Constructed by [`U64View::new`] only when reinterpretation is sound
/// *and* byte-identical to decoding each `u64` with `from_le_bytes`:
/// the absolute pointer must be 8-byte aligned, the length a multiple
/// of 8, and the target little-endian. Callers keep an owned-copy
/// fallback for the (rare) cases where any check fails.
#[derive(Clone)]
pub struct U64View {
    bytes: SharedBytes,
}

impl U64View {
    /// Try to reinterpret `bytes` as `&[u64]`; `None` if unaligned,
    /// ragged, or big-endian.
    pub fn new(bytes: SharedBytes) -> Option<U64View> {
        if !cfg!(target_endian = "little") {
            return None;
        }
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        if !(bytes.as_slice().as_ptr() as usize).is_multiple_of(8) {
            return None;
        }
        Some(U64View { bytes })
    }

    /// The values, served straight from the backing.
    pub fn as_slice(&self) -> &[u64] {
        let raw = self.bytes.as_slice();
        // SAFETY: `new` verified 8-byte pointer alignment and that the
        // length is a whole number of u64s; the backing is immutable
        // and outlives `self` via the Arc. Little-endian target makes
        // the reinterpretation value-identical to from_le_bytes.
        unsafe { std::slice::from_raw_parts(raw.as_ptr() as *const u64, raw.len() / 8) }
    }

    /// Number of `u64` values.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl std::fmt::Debug for U64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("U64View").field("len", &self.len()).finish()
    }
}

/// Cursor for borrowed-view decoding: the `ViewCursor` analogue of the
/// `&mut &[u8]` cursor that [`crate::codec::Codec::decode`] threads.
///
/// Integers are decoded by value (they're tiny); variable-length ranges
/// come back as [`SharedBytes`] sub-views so payloads stay un-copied.
#[derive(Debug, Clone)]
pub struct ViewCursor {
    bytes: SharedBytes,
    pos: usize,
}

impl ViewCursor {
    /// Start decoding at the beginning of `bytes`.
    pub fn new(bytes: SharedBytes) -> ViewCursor {
        ViewCursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current offset from the start of the view.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Take the next `n` bytes as a sub-view.
    pub fn take(&mut self, n: usize) -> Result<SharedBytes, DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError(format!(
                "view truncated: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = self.bytes.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(out)
    }

    /// Decode a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        let s = b.as_slice();
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Decode a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let s = b.as_slice();
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reject trailing bytes, mirroring `Codec::from_bytes`.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError(format!(
                "{} trailing bytes after view decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_bytes_slicing_and_eq() {
        let b = SharedBytes::from_vec(vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(b.len(), 6);
        let mid = b.slice(2..5);
        assert_eq!(mid.as_slice(), &[3, 4, 5]);
        let mid2 = mid.slice(1..3);
        assert_eq!(mid2.as_slice(), &[4, 5]);
        assert_eq!(mid2, SharedBytes::from_vec(vec![4, 5]));
        assert!(b.slice(6..6).is_empty());
    }

    #[test]
    #[should_panic]
    fn shared_bytes_out_of_range_slice_panics() {
        let b = SharedBytes::from_vec(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn u64_view_requires_alignment() {
        // A Vec<u64> backing re-exposed as bytes is 8-aligned at +0 and
        // misaligned at +4.
        let vals: Vec<u64> = vec![10, 20, 30];
        let mut bytes = Vec::new();
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Force an 8-aligned allocation by over-allocating and finding
        // an aligned start inside it.
        let backing = SharedBytes::from_vec(bytes.clone());
        let base = backing.as_slice().as_ptr() as usize;
        if base.is_multiple_of(8) {
            let v = U64View::new(backing.clone()).expect("aligned view");
            assert_eq!(v.as_slice(), &[10, 20, 30]);
            assert_eq!(v.len(), 3);
            // A +4 sub-view keeps len a multiple of 8 but breaks the
            // pointer alignment, so it must be rejected.
            assert!(U64View::new(backing.slice(4..20)).is_none());
        } else {
            assert!(U64View::new(backing).is_none());
        }
        // Ragged length is always rejected.
        let ragged = SharedBytes::from_vec(vec![0u8; 12]);
        assert!(U64View::new(ragged).is_none());
    }

    #[test]
    fn view_cursor_decodes_and_rejects_truncation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&0xdead_beef_cafe_f00du64.to_le_bytes());
        buf.extend_from_slice(b"tail");
        let mut c = ViewCursor::new(SharedBytes::from_vec(buf));
        assert_eq!(c.u32().unwrap(), 7);
        assert_eq!(c.u64().unwrap(), 0xdead_beef_cafe_f00d);
        assert!(c.finish().is_err());
        let tail = c.take(4).unwrap();
        assert_eq!(tail.as_slice(), b"tail");
        c.finish().unwrap();
        assert!(c.u32().is_err());
        assert!(c.take(1).is_err());
    }
}
