//! The parsed-article store.
//!
//! Articles live *encoded*; [`DocStore::load`] pays a real decode cost, which
//! is what the paper's `LoadArticle` stage (Table 2 — more than 50% of query
//! time) measures when KOKO pulls candidate articles out of PostgreSQL.

use crate::codec::{self, Codec, DecodeError};
use bytes::BytesMut;
use koko_nlp::Document;

/// An encoded document; a newtype so the codec can copy whole byte slices
/// instead of going element-by-element through the generic `Vec<u8>` path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Blob(pub Vec<u8>);

impl Codec for Blob {
    fn encode(&self, buf: &mut BytesMut) {
        (self.0.len() as u32).encode(buf);
        buf.extend_from_slice(&self.0);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u32::decode(input)? as usize;
        if input.len() < len {
            return Err(DecodeError("truncated blob".into()));
        }
        let (head, tail) = input.split_at(len);
        *input = tail;
        Ok(Blob(head.to_vec()))
    }
}

/// Append-only store of encoded documents, addressed by document index.
#[derive(Debug, Clone, Default)]
pub struct DocStore {
    blobs: Vec<Blob>,
}

impl DocStore {
    pub fn new() -> DocStore {
        DocStore::default()
    }

    /// Encode and append a document; returns its store index.
    pub fn put(&mut self, doc: &Document) -> u32 {
        self.blobs.push(Blob(doc.to_bytes()));
        (self.blobs.len() - 1) as u32
    }

    /// Decode document `idx`. This is the `LoadArticle` cost.
    pub fn load(&self, idx: u32) -> Result<Document, DecodeError> {
        let blob = self
            .blobs
            .get(idx as usize)
            .ok_or_else(|| DecodeError(format!("no document {idx}")))?;
        Document::from_bytes(&blob.0)
    }

    /// Append every blob of `other`, preserving order. Lets the sharded
    /// engine assemble a global store from per-shard stores without paying
    /// the encode cost twice.
    pub fn append_store(&mut self, other: &DocStore) {
        self.blobs.extend(other.blobs.iter().cloned());
    }

    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total encoded bytes.
    pub fn approx_bytes(&self) -> usize {
        self.blobs.iter().map(|b| b.0.len()).sum()
    }

    /// Persist to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        codec::save_to_file(path, &self.blobs)
    }

    /// Load a store persisted by [`DocStore::save`].
    pub fn open(path: &std::path::Path) -> std::io::Result<DocStore> {
        let blobs: Vec<Blob> = codec::load_from_file(path)?;
        Ok(DocStore { blobs })
    }
}

/// A store serializes as its blob list — encoded documents are copied
/// verbatim, so snapshot encode/decode never re-encodes articles.
impl Codec for DocStore {
    fn encode(&self, buf: &mut BytesMut) {
        self.blobs.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(DocStore {
            blobs: Vec::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    #[test]
    fn codec_round_trip_preserves_blobs() {
        let p = Pipeline::new();
        let mut store = DocStore::new();
        for i in 0..3 {
            store.put(&p.parse_document(i, "Anna ate cake. The cafe was busy."));
        }
        let back = DocStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(back.blobs, store.blobs);
    }

    #[test]
    fn put_load_round_trip() {
        let p = Pipeline::new();
        let mut store = DocStore::new();
        let d0 = p.parse_document(0, "Anna ate cake.");
        let d1 = p.parse_document(1, "go Falcons! at Riverside Arena tonight.");
        assert_eq!(store.put(&d0), 0);
        assert_eq!(store.put(&d1), 1);
        assert_eq!(store.load(0).unwrap(), d0);
        assert_eq!(store.load(1).unwrap(), d1);
        assert!(store.load(2).is_err());
        assert!(store.approx_bytes() > 0);
    }

    #[test]
    fn file_persistence() {
        let p = Pipeline::new();
        let mut store = DocStore::new();
        for i in 0..5 {
            store.put(&p.parse_document(i, "The cafe serves espresso. The barista was happy."));
        }
        let dir = std::env::temp_dir().join("koko_docstore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("docs.koko");
        store.save(&path).unwrap();
        let back = DocStore::open(&path).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back.load(3).unwrap(), store.load(3).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
