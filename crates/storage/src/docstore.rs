//! The parsed-article store.
//!
//! Articles live *encoded*; [`DocStore::load`] pays a real decode cost, which
//! is what the paper's `LoadArticle` stage (Table 2 — more than 50% of query
//! time) measures when KOKO pulls candidate articles out of PostgreSQL.
//!
//! Each blob is either owned (built in memory, or decoded from a v1–3
//! payload) or a [`SharedBytes`] view into a memory-mapped v4 snapshot
//! section — in the mapped case an article's bytes stay in the page cache
//! until [`DocStore::load`] touches that one document. Both backings
//! encode byte-identically, so snapshots never re-encode articles.

use crate::codec::{self, Codec, DecodeError};
use crate::view::{SharedBytes, ViewCursor};
use bytes::BytesMut;
use koko_nlp::Document;

/// An encoded document; a newtype so the codec can copy whole byte slices
/// instead of going element-by-element through the generic `Vec<u8>` path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Blob(pub Vec<u8>);

impl Codec for Blob {
    fn encode(&self, buf: &mut BytesMut) {
        (self.0.len() as u32).encode(buf);
        buf.extend_from_slice(&self.0);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u32::decode(input)? as usize;
        if input.len() < len {
            return Err(DecodeError("truncated blob".into()));
        }
        let (head, tail) = input.split_at(len);
        *input = tail;
        Ok(Blob(head.to_vec()))
    }
}

/// One encoded document's bytes: owned, or a zero-copy view into a
/// shared (usually memory-mapped) backing. Equality is by content, so a
/// store decoded from a mapping compares equal to the store that wrote
/// it.
#[derive(Debug, Clone)]
enum BlobBytes {
    Owned(Vec<u8>),
    Mapped(SharedBytes),
}

impl BlobBytes {
    fn as_slice(&self) -> &[u8] {
        match self {
            BlobBytes::Owned(v) => v,
            BlobBytes::Mapped(b) => b.as_slice(),
        }
    }
}

impl PartialEq for BlobBytes {
    fn eq(&self, other: &BlobBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for BlobBytes {}

/// Append-only store of encoded documents, addressed by document index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DocStore {
    blobs: Vec<BlobBytes>,
}

impl DocStore {
    pub fn new() -> DocStore {
        DocStore::default()
    }

    /// Encode and append a document; returns its store index.
    pub fn put(&mut self, doc: &Document) -> u32 {
        self.blobs.push(BlobBytes::Owned(doc.to_bytes()));
        (self.blobs.len() - 1) as u32
    }

    /// Decode document `idx`. This is the `LoadArticle` cost — and, for a
    /// mapped store, the point where the document's pages fault in.
    pub fn load(&self, idx: u32) -> Result<Document, DecodeError> {
        let blob = self
            .blobs
            .get(idx as usize)
            .ok_or_else(|| DecodeError(format!("no document {idx}")))?;
        Document::from_bytes(blob.as_slice())
    }

    /// The raw encoded bytes of document `idx`, without decoding.
    pub fn blob_bytes(&self, idx: u32) -> Option<&[u8]> {
        self.blobs.get(idx as usize).map(|b| b.as_slice())
    }

    /// Peek document `idx`'s sentence count without decoding the article.
    ///
    /// The `Document` frame is `id (u32 LE)` then its sentence list,
    /// which the codec prefixes with a `u32 LE` count — bytes 4..8. The
    /// sharded engine uses this to rebuild per-document sentence offsets
    /// from a mapped store in O(docs) instead of decoding every article.
    pub fn sentence_count(&self, idx: u32) -> Result<u32, DecodeError> {
        let blob = self
            .blobs
            .get(idx as usize)
            .ok_or_else(|| DecodeError(format!("no document {idx}")))?;
        let b = blob.as_slice();
        if b.len() < 8 {
            return Err(DecodeError(format!(
                "document blob {idx} too short ({} bytes) for a header",
                b.len()
            )));
        }
        Ok(u32::from_le_bytes(b[4..8].try_into().expect("sized")))
    }

    /// Append every blob of `other`, preserving order. Lets the sharded
    /// engine assemble a global store from per-shard stores without paying
    /// the encode cost twice (mapped blobs are carried by reference).
    pub fn append_store(&mut self, other: &DocStore) {
        self.blobs.extend(other.blobs.iter().cloned());
    }

    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total encoded bytes.
    pub fn approx_bytes(&self) -> usize {
        self.blobs.iter().map(|b| b.as_slice().len()).sum()
    }

    /// Persist to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        codec::save_to_file(path, self)
    }

    /// Load a store persisted by [`DocStore::save`].
    pub fn open(path: &std::path::Path) -> std::io::Result<DocStore> {
        codec::load_from_file(path)
    }

    /// Borrowed-view decode: same wire format as [`Codec::decode`], but
    /// every blob becomes a sub-view of `bytes` instead of a copy. Used
    /// by the v4 mmap open path so article payloads stay un-faulted
    /// until first load.
    pub fn decode_view(bytes: SharedBytes) -> Result<DocStore, DecodeError> {
        let mut c = ViewCursor::new(bytes);
        let count = c.u32()? as usize;
        let mut blobs = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let len = c.u32()? as usize;
            blobs.push(BlobBytes::Mapped(c.take(len)?));
        }
        c.finish()?;
        Ok(DocStore { blobs })
    }
}

/// A store serializes as its blob list — encoded documents are copied
/// verbatim, so snapshot encode/decode never re-encodes articles. The
/// wire format is identical to `Vec<Blob>` regardless of whether blobs
/// are owned or mapped.
impl Codec for DocStore {
    fn encode(&self, buf: &mut BytesMut) {
        (self.blobs.len() as u32).encode(buf);
        for b in &self.blobs {
            let s = b.as_slice();
            (s.len() as u32).encode(buf);
            buf.extend_from_slice(s);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let blobs: Vec<Blob> = Vec::decode(input)?;
        Ok(DocStore {
            blobs: blobs.into_iter().map(|b| BlobBytes::Owned(b.0)).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    #[test]
    fn codec_round_trip_preserves_blobs() {
        let p = Pipeline::new();
        let mut store = DocStore::new();
        for i in 0..3 {
            store.put(&p.parse_document(i, "Anna ate cake. The cafe was busy."));
        }
        let back = DocStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(back, store);
    }

    #[test]
    fn view_decode_matches_owned_decode() {
        let p = Pipeline::new();
        let mut store = DocStore::new();
        for i in 0..4 {
            store.put(&p.parse_document(i, "Anna ate cake. The cafe was busy. Bob left."));
        }
        let bytes = store.to_bytes();
        let viewed = DocStore::decode_view(SharedBytes::from_vec(bytes.clone())).unwrap();
        assert_eq!(viewed, store);
        // Re-encode from the viewed store is byte-identical.
        assert_eq!(viewed.to_bytes(), bytes);
        assert_eq!(viewed.load(2).unwrap(), store.load(2).unwrap());
        assert_eq!(viewed.approx_bytes(), store.approx_bytes());
        // Truncated views fail structurally.
        assert!(
            DocStore::decode_view(SharedBytes::from_vec(bytes[..bytes.len() - 1].to_vec()))
                .is_err()
        );
        // Trailing bytes are rejected like Codec::from_bytes.
        let mut long = bytes.clone();
        long.push(0);
        assert!(DocStore::decode_view(SharedBytes::from_vec(long)).is_err());
    }

    #[test]
    fn sentence_count_peek_matches_decode() {
        let p = Pipeline::new();
        let mut store = DocStore::new();
        store.put(&p.parse_document(0, "Anna ate cake. The cafe was busy. Bob left."));
        store.put(&p.parse_document(1, "One sentence only."));
        for i in 0..2 {
            assert_eq!(
                store.sentence_count(i).unwrap() as usize,
                store.load(i).unwrap().sentences.len()
            );
        }
        assert!(store.sentence_count(2).is_err());
    }

    #[test]
    fn put_load_round_trip() {
        let p = Pipeline::new();
        let mut store = DocStore::new();
        let d0 = p.parse_document(0, "Anna ate cake.");
        let d1 = p.parse_document(1, "go Falcons! at Riverside Arena tonight.");
        assert_eq!(store.put(&d0), 0);
        assert_eq!(store.put(&d1), 1);
        assert_eq!(store.load(0).unwrap(), d0);
        assert_eq!(store.load(1).unwrap(), d1);
        assert!(store.load(2).is_err());
        assert!(store.approx_bytes() > 0);
    }

    #[test]
    fn file_persistence() {
        let p = Pipeline::new();
        let mut store = DocStore::new();
        for i in 0..5 {
            store.put(&p.parse_document(i, "The cafe serves espresso. The barista was happy."));
        }
        let dir = std::env::temp_dir().join("koko_docstore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("docs.koko");
        store.save(&path).unwrap();
        let back = DocStore::open(&path).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back.load(3).unwrap(), store.load(3).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
