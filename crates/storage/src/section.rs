//! Snapshot container format v4: offset-indexed, per-section-checksummed
//! sections behind the classic 26-byte `KOKOSNAP` header.
//!
//! Versions 1–3 wrap one opaque payload; opening one means reading and
//! checksumming the whole file. Version 4 replaces the payload with
//! independent sections located by a table at the end of the file, so a
//! reader validates the header plus table in O(sections) and pays for a
//! section's bytes (page faults + checksum) only when it first touches
//! it:
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------------------------------
//!      0     8  magic  b"KOKOSNAP"
//!      8     2  format version (u16 LE) = 4
//!     10     8  section-table offset (u64 LE, absolute, 8-aligned)
//!     18     8  FNV-1a 64 checksum of the section-table bytes (u64 LE)
//!     32     …  sections, each 8-aligned, zero-padded between
//!      …     …  section table: count (u32 LE) + count × 30-byte entries
//! ```
//!
//! Offsets 10..26 are the same header slots that carry payload length +
//! payload checksum in v1–3 — a v4 reader dispatches on the version
//! field *before* interpreting them. Each table entry is
//! `(kind u16, index u32, offset u64, len u64, checksum u64)` — 30
//! bytes, packed LE. Sections always precede their table
//! (`offset + len <= table_offset`), and every section offset is
//! 8-aligned so fixed-width `u64` arrays inside a section can be served
//! as zero-copy views from a page-aligned `mmap` base.
//!
//! **Append-on-add**: a writer extends a v4 file by writing new sections
//! plus a fresh table *past the current extent* (`table_offset +
//! table_len`), fsyncing, then atomically publishing with an in-place
//! rewrite of the 26-byte header — the single commit point. Bytes past
//! the extent are therefore tolerated by the reader: they are an aborted
//! append, unreachable from the committed table. Superseded sections and
//! tables become dead bytes reclaimed by the next full save.

use crate::codec::fnv1a64;
use crate::snapshot_file::{
    fsync_dir, io_err, SnapshotFileError, SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC,
};
use crate::view::SharedBytes;
use std::path::Path;

/// Container version introducing the sectioned layout.
pub const SECTIONED_VERSION: u16 = 4;

/// First possible section offset: the header rounded up to 8.
pub const FIRST_SECTION_OFFSET: u64 = 32;

/// Bytes per section-table entry.
pub const SECTION_ENTRY_LEN: usize = 2 + 4 + 8 + 8 + 8;

/// Section kind: generation manifest (generation u64 + num_base u64).
pub const SEC_MANIFEST: u16 = 1;
/// Section kind: embeddings codec frame.
pub const SEC_EMBED: u16 = 2;
/// Section kind: shard-router codec frame.
pub const SEC_ROUTER: u16 = 3;
/// Section kind: per-shard id/ranges/index frame (`index` = shard slot).
pub const SEC_SHARD: u16 = 4;
/// Section kind: per-shard doc store frame (`index` = shard slot).
pub const SEC_STORE: u16 = 5;
/// Section kind: per-shard score-bound hashes (`index` = shard slot);
/// absent when the shard has no bound stats.
pub const SEC_BOUNDS: u16 = 6;
/// Section kind: per-shard block-max statistics — per-block token-hash
/// vocabularies refining `SEC_BOUNDS` to fixed doc ranges (`index` =
/// shard slot); absent when the shard has no block stats. Readers
/// predating this kind skip it (unknown kinds are tolerated).
pub const SEC_BLOCKS: u16 = 7;

/// One row of the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// One of the `SEC_*` kinds (unknown kinds are tolerated and skipped,
    /// for forward-compatible additions within v4).
    pub kind: u16,
    /// Disambiguates repeated kinds — the shard slot for per-shard kinds.
    pub index: u32,
    /// Absolute file offset of the section start (8-aligned).
    pub offset: u64,
    /// Section length in bytes.
    pub len: u64,
    /// FNV-1a 64 checksum of the section bytes, verified on first touch.
    pub checksum: u64,
}

impl SectionEntry {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
    }

    fn decode(b: &[u8]) -> SectionEntry {
        SectionEntry {
            kind: u16::from_le_bytes(b[0..2].try_into().expect("sized")),
            index: u32::from_le_bytes(b[2..6].try_into().expect("sized")),
            offset: u64::from_le_bytes(b[6..14].try_into().expect("sized")),
            len: u64::from_le_bytes(b[14..22].try_into().expect("sized")),
            checksum: u64::from_le_bytes(b[22..30].try_into().expect("sized")),
        }
    }
}

/// The decoded section table of a v4 file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SectionTable {
    /// Entries in file order.
    pub entries: Vec<SectionEntry>,
}

impl SectionTable {
    /// Serialize: count + packed entries.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.entries.len() * SECTION_ENTRY_LEN);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            e.encode_into(&mut out);
        }
        out
    }

    /// The unique entry of `kind`/`index`, if present.
    pub fn find(&self, kind: u16, index: u32) -> Option<&SectionEntry> {
        self.entries
            .iter()
            .find(|e| e.kind == kind && e.index == index)
    }

    /// All entries of `kind`, in file order.
    pub fn of_kind(&self, kind: u16) -> impl Iterator<Item = &SectionEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }
}

fn pad8(len: u64) -> u64 {
    len.div_ceil(8) * 8
}

/// Builds the byte image of a complete v4 file in memory (full saves).
/// Appends go through [`append_sections`] instead.
#[derive(Debug)]
pub struct SectionWriter {
    buf: Vec<u8>,
    entries: Vec<SectionEntry>,
}

impl SectionWriter {
    /// Start a v4 image: header placeholder + padding to the first
    /// 8-aligned section offset.
    pub fn new() -> SectionWriter {
        SectionWriter {
            buf: vec![0u8; FIRST_SECTION_OFFSET as usize],
            entries: Vec::new(),
        }
    }

    /// Append one section, 8-aligning its start.
    pub fn add_section(&mut self, kind: u16, index: u32, bytes: &[u8]) {
        self.buf.resize(pad8(self.buf.len() as u64) as usize, 0);
        let offset = self.buf.len() as u64;
        self.buf.extend_from_slice(bytes);
        self.entries.push(SectionEntry {
            kind,
            index,
            offset,
            len: bytes.len() as u64,
            checksum: fnv1a64(bytes),
        });
    }

    /// Seal the image: write the table, then fill the header (magic,
    /// version 4, table offset, table checksum).
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.resize(pad8(self.buf.len() as u64) as usize, 0);
        let table_offset = self.buf.len() as u64;
        let table = SectionTable {
            entries: self.entries,
        }
        .encode();
        let table_checksum = fnv1a64(&table);
        self.buf.extend_from_slice(&table);
        self.buf[0..8].copy_from_slice(SNAPSHOT_MAGIC);
        self.buf[8..10].copy_from_slice(&SECTIONED_VERSION.to_le_bytes());
        self.buf[10..18].copy_from_slice(&table_offset.to_le_bytes());
        self.buf[18..26].copy_from_slice(&table_checksum.to_le_bytes());
        self.buf
    }
}

impl Default for SectionWriter {
    fn default() -> Self {
        SectionWriter::new()
    }
}

/// A validated v4 container over any shared backing (mmap or owned).
///
/// Construction cost is O(sections): header sanity, table checksum, and
/// per-entry range/alignment invariants — section *payloads* are neither
/// read nor checksummed until [`SectionedFile::section_bytes`] touches
/// them.
#[derive(Debug, Clone)]
pub struct SectionedFile {
    backing: SharedBytes,
    table: SectionTable,
    table_offset: u64,
    header: [u8; SNAPSHOT_HEADER_LEN],
    path: String,
}

impl SectionedFile {
    /// Memory-map and validate the v4 container at `path`. The mapping is
    /// shared by every section view handed out, so the file's pages fault
    /// in only as sections are touched.
    pub fn open_mmap(path: &Path) -> Result<SectionedFile, SnapshotFileError> {
        let f = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
        let map = crate::mmap::Mmap::map(&f).map_err(|e| io_err(path, e))?;
        let backing = SharedBytes::new(std::sync::Arc::new(map));
        SectionedFile::open_bytes(&path.display().to_string(), backing)
    }

    /// Validate `backing` as a v4 container. `path` labels errors only.
    pub fn open_bytes(
        path: &str,
        backing: SharedBytes,
    ) -> Result<SectionedFile, SnapshotFileError> {
        let name = path.to_string();
        let data = backing.as_slice();
        if data.len() < 8 || &data[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotFileError::NotASnapshot { path: name });
        }
        if data.len() < SNAPSHOT_HEADER_LEN {
            return Err(SnapshotFileError::Truncated {
                path: name,
                expected: SNAPSHOT_HEADER_LEN as u64,
                found: data.len() as u64,
            });
        }
        let version = u16::from_le_bytes(data[8..10].try_into().expect("sized"));
        if version != SECTIONED_VERSION {
            return Err(SnapshotFileError::WrongVersion {
                path: name,
                found: version,
            });
        }
        let table_offset = u64::from_le_bytes(data[10..18].try_into().expect("sized"));
        let table_checksum = u64::from_le_bytes(data[18..26].try_into().expect("sized"));
        let file_len = data.len() as u64;
        if table_offset < FIRST_SECTION_OFFSET || table_offset % 8 != 0 {
            return Err(SnapshotFileError::Corrupt {
                path: name,
                detail: format!("section table offset {table_offset} invalid"),
            });
        }
        if table_offset + 4 > file_len {
            return Err(SnapshotFileError::Truncated {
                path: name,
                expected: table_offset + 4,
                found: file_len,
            });
        }
        let to = usize::try_from(table_offset).map_err(|_| SnapshotFileError::TooLarge {
            path: name.clone(),
            declared: table_offset,
        })?;
        let count = u32::from_le_bytes(data[to..to + 4].try_into().expect("sized")) as u64;
        let table_len = 4 + count * SECTION_ENTRY_LEN as u64;
        if table_offset + table_len > file_len {
            return Err(SnapshotFileError::Truncated {
                path: name,
                expected: table_offset + table_len,
                found: file_len,
            });
        }
        let tl = usize::try_from(table_len).map_err(|_| SnapshotFileError::TooLarge {
            path: name.clone(),
            declared: table_len,
        })?;
        let table_bytes = &data[to..to + tl];
        if fnv1a64(table_bytes) != table_checksum {
            return Err(SnapshotFileError::ChecksumMismatch { path: name });
        }
        // Bytes past the extent (table_offset + table_len) are an aborted
        // append — unreachable from this table, so tolerated by design.
        let mut entries = Vec::with_capacity(count as usize);
        let mut seen = std::collections::HashSet::with_capacity(count as usize);
        for i in 0..count as usize {
            let start = 4 + i * SECTION_ENTRY_LEN;
            let e = SectionEntry::decode(&table_bytes[start..start + SECTION_ENTRY_LEN]);
            if e.offset < FIRST_SECTION_OFFSET
                || !e.offset.is_multiple_of(8)
                || e.offset
                    .checked_add(e.len)
                    .is_none_or(|end| end > table_offset)
            {
                return Err(SnapshotFileError::Corrupt {
                    path: name,
                    detail: format!(
                        "section (kind {}, index {}) range {}+{} escapes [{}..{}]",
                        e.kind, e.index, e.offset, e.len, FIRST_SECTION_OFFSET, table_offset
                    ),
                });
            }
            if !seen.insert((e.kind, e.index)) {
                return Err(SnapshotFileError::Corrupt {
                    path: name,
                    detail: format!("duplicate section (kind {}, index {})", e.kind, e.index),
                });
            }
            entries.push(e);
        }
        let mut header = [0u8; SNAPSHOT_HEADER_LEN];
        header.copy_from_slice(&data[..SNAPSHOT_HEADER_LEN]);
        Ok(SectionedFile {
            backing,
            table: SectionTable { entries },
            table_offset,
            header,
            path: name,
        })
    }

    /// The validated table.
    pub fn table(&self) -> &SectionTable {
        &self.table
    }

    /// The 26 header bytes as validated at open — the append path
    /// compares these against the file before reusing sections.
    pub fn header(&self) -> [u8; SNAPSHOT_HEADER_LEN] {
        self.header
    }

    /// The committed extent: first byte past the table. Bytes beyond it
    /// are an aborted append and carry no meaning.
    pub fn extent(&self) -> u64 {
        self.table_offset + 4 + self.table.entries.len() as u64 * SECTION_ENTRY_LEN as u64
    }

    /// Error-label path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The unique entry of `kind`/`index`, if present.
    pub fn find(&self, kind: u16, index: u32) -> Option<SectionEntry> {
        self.table.find(kind, index).copied()
    }

    /// Like [`SectionedFile::find`] but a missing section is a
    /// structured [`SnapshotFileError::Corrupt`].
    pub fn require(&self, kind: u16, index: u32) -> Result<SectionEntry, SnapshotFileError> {
        self.find(kind, index)
            .ok_or_else(|| SnapshotFileError::Corrupt {
                path: self.path.clone(),
                detail: format!("missing required section (kind {kind}, index {index})"),
            })
    }

    /// Fetch and checksum-verify one section's bytes. This is the
    /// per-touch verification point: the first access to a section pays
    /// its page faults + FNV pass, later accesses are plain slices.
    pub fn section_bytes(&self, entry: &SectionEntry) -> Result<SharedBytes, SnapshotFileError> {
        let start = usize::try_from(entry.offset).map_err(|_| SnapshotFileError::TooLarge {
            path: self.path.clone(),
            declared: entry.offset,
        })?;
        let len = usize::try_from(entry.len).map_err(|_| SnapshotFileError::TooLarge {
            path: self.path.clone(),
            declared: entry.len,
        })?;
        let bytes = self.backing.slice(start..start + len);
        if fnv1a64(bytes.as_slice()) != entry.checksum {
            return Err(SnapshotFileError::ChecksumMismatch {
                path: self.path.clone(),
            });
        }
        Ok(bytes)
    }
}

/// Atomically publish a complete v4 image (built by
/// [`SectionWriter::finish`]) as the contents of `path` — the full-save
/// counterpart of [`append_sections`], with the same durability
/// invariant as the payload-framed writer (data fsynced before the
/// rename, parent directory fsynced after).
pub fn write_sectioned_file(path: &Path, image: &[u8]) -> Result<(), SnapshotFileError> {
    crate::snapshot_file::atomic_publish(path, &[image])
}

/// Append `new` sections to the v4 file at `path`, carrying forward the
/// still-valid `keep` entries, and atomically publish by rewriting the
/// 26-byte header in place.
///
/// Returns `Ok(None)` — *without modifying the file* — when the on-disk
/// header no longer matches `expected_header`, i.e. the file was
/// replaced or appended to by someone else since it was opened; the
/// caller then falls back to a full rewrite. On success returns the new
/// header + table.
///
/// Commit protocol (the order is the invariant):
/// 1. `set_len(extent)` — clear any torn tail from an earlier aborted
///    append; committed sections and table all live below `extent`.
/// 2. Write new sections (8-aligned) and the new table past the extent;
///    `fsync` the file. Nothing committed yet: a crash here leaves the
///    old header pointing at the old table, and the reader ignores the
///    tail.
/// 3. Rewrite the 26 header bytes (new table offset + checksum) in
///    place; `fsync` the file, then `fsync` the parent directory. The
///    header rewrite is the single commit point — 26 bytes inside one
///    filesystem block, so a crash leaves either the old or the new
///    header, both of which describe a fully-written table.
#[allow(clippy::type_complexity)]
pub fn append_sections(
    path: &Path,
    expected_header: &[u8; SNAPSHOT_HEADER_LEN],
    extent: u64,
    keep: &[SectionEntry],
    new: &[(u16, u32, Vec<u8>)],
) -> Result<Option<([u8; SNAPSHOT_HEADER_LEN], SectionTable)>, SnapshotFileError> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    let mut on_disk = [0u8; SNAPSHOT_HEADER_LEN];
    if f.read_exact(&mut on_disk).is_err() || &on_disk != expected_header {
        return Ok(None);
    }
    let run =
        |f: &mut std::fs::File| -> std::io::Result<([u8; SNAPSHOT_HEADER_LEN], SectionTable)> {
            f.set_len(extent)?;
            let mut pos = pad8(extent);
            let mut entries: Vec<SectionEntry> = keep.to_vec();
            f.seek(SeekFrom::Start(extent))?;
            let mut w = std::io::BufWriter::new(f);
            w.write_all(&vec![0u8; (pos - extent) as usize])?;
            for (kind, index, bytes) in new {
                entries.push(SectionEntry {
                    kind: *kind,
                    index: *index,
                    offset: pos,
                    len: bytes.len() as u64,
                    checksum: fnv1a64(bytes),
                });
                w.write_all(bytes)?;
                let next = pad8(pos + bytes.len() as u64);
                w.write_all(&vec![0u8; (next - pos - bytes.len() as u64) as usize])?;
                pos = next;
            }
            let table = SectionTable { entries };
            let table_bytes = table.encode();
            let table_offset = pos;
            w.write_all(&table_bytes)?;
            w.flush()?;
            let f = w.into_inner().map_err(|e| e.into_error())?;
            // Step 2 barrier: table + sections durable before the header
            // points at them.
            f.sync_all()?;
            let mut header = [0u8; SNAPSHOT_HEADER_LEN];
            header[0..8].copy_from_slice(SNAPSHOT_MAGIC);
            header[8..10].copy_from_slice(&SECTIONED_VERSION.to_le_bytes());
            header[10..18].copy_from_slice(&table_offset.to_le_bytes());
            header[18..26].copy_from_slice(&fnv1a64(&table_bytes).to_le_bytes());
            #[cfg(unix)]
            {
                use std::os::unix::fs::FileExt;
                f.write_at(&header, 0)?;
            }
            #[cfg(not(unix))]
            {
                use std::io::{Seek, SeekFrom, Write};
                let mut f2 = f.try_clone()?;
                f2.seek(SeekFrom::Start(0))?;
                f2.write_all(&header)?;
            }
            // Step 3 barrier: the commit point must be durable, and so must
            // the directory entry (a fresh file that was never fsync-ed at
            // the directory level can vanish wholesale on power loss).
            f.sync_all()?;
            if let Some(parent) = path.parent() {
                fsync_dir(parent)?;
            }
            Ok((header, table))
        };
    run(&mut f).map(Some).map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("koko_section_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn open(bytes: Vec<u8>) -> Result<SectionedFile, SnapshotFileError> {
        SectionedFile::open_bytes("test.koko", SharedBytes::from_vec(bytes))
    }

    #[test]
    fn writer_reader_round_trip_with_alignment() {
        let mut w = SectionWriter::new();
        w.add_section(SEC_MANIFEST, 0, &[1u8; 16]);
        w.add_section(SEC_SHARD, 0, &[2u8; 13]); // odd length → next padded
        w.add_section(SEC_STORE, 0, &[3u8; 1]);
        let img = w.finish();
        let sf = open(img).unwrap();
        assert_eq!(sf.table().entries.len(), 3);
        for e in &sf.table().entries {
            assert_eq!(e.offset % 8, 0, "section offsets are 8-aligned");
            let bytes = sf.section_bytes(e).unwrap();
            assert_eq!(bytes.len() as u64, e.len);
        }
        assert_eq!(
            sf.section_bytes(&sf.find(SEC_SHARD, 0).unwrap())
                .unwrap()
                .as_slice(),
            &[2u8; 13]
        );
        assert!(sf.find(SEC_BOUNDS, 0).is_none());
        assert!(sf.require(SEC_BOUNDS, 0).is_err());
    }

    #[test]
    fn empty_table_round_trips() {
        let sf = open(SectionWriter::new().finish()).unwrap();
        assert!(sf.table().entries.is_empty());
        assert_eq!(sf.extent(), FIRST_SECTION_OFFSET + 4);
    }

    #[test]
    fn trailing_bytes_past_extent_are_tolerated() {
        // An aborted append leaves bytes past the committed table; the
        // reader must treat them as dead.
        let mut w = SectionWriter::new();
        w.add_section(SEC_MANIFEST, 0, b"manifest");
        let mut img = w.finish();
        img.extend_from_slice(b"torn half-written append garbage");
        let sf = open(img).unwrap();
        assert_eq!(
            sf.section_bytes(&sf.find(SEC_MANIFEST, 0).unwrap())
                .unwrap()
                .as_slice(),
            b"manifest"
        );
    }

    #[test]
    fn section_corruption_is_detected_at_touch_not_open() {
        let mut w = SectionWriter::new();
        w.add_section(SEC_MANIFEST, 0, b"aaaaaaaa");
        w.add_section(SEC_ROUTER, 0, b"bbbbbbbb");
        let mut img = w.finish();
        let sf0 = open(img.clone()).unwrap();
        let router = sf0.find(SEC_ROUTER, 0).unwrap();
        img[router.offset as usize] ^= 0xFF;
        let sf = open(img).unwrap(); // open succeeds: payloads unread
        let manifest = sf.find(SEC_MANIFEST, 0).unwrap();
        assert!(sf.section_bytes(&manifest).is_ok());
        assert!(matches!(
            sf.section_bytes(&router),
            Err(SnapshotFileError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn table_corruption_fails_open() {
        let mut w = SectionWriter::new();
        w.add_section(SEC_MANIFEST, 0, b"payload!");
        let good = w.finish();
        let table_offset = u64::from_le_bytes(good[10..18].try_into().unwrap()) as usize;

        // Flip a table byte → checksum mismatch at open.
        let mut img = good.clone();
        img[table_offset + 5] ^= 0x01;
        assert!(matches!(
            open(img),
            Err(SnapshotFileError::ChecksumMismatch { .. })
        ));

        // Truncate mid-table → Truncated.
        assert!(matches!(
            open(good[..good.len() - 3].to_vec()),
            Err(SnapshotFileError::Truncated { .. })
        ));

        // Table offset past EOF (8-aligned so the range check is what
        // fires) → Truncated.
        let mut img = good.clone();
        let past_eof = (good.len() as u64).div_ceil(8) * 8 + 64;
        img[10..18].copy_from_slice(&past_eof.to_le_bytes());
        assert!(matches!(
            open(img),
            Err(SnapshotFileError::Truncated { .. })
        ));

        // Misaligned table offset → Corrupt.
        let mut img = good.clone();
        img[10..18].copy_from_slice(&(FIRST_SECTION_OFFSET + 1).to_le_bytes());
        assert!(matches!(open(img), Err(SnapshotFileError::Corrupt { .. })));
    }

    #[test]
    fn entry_range_and_duplicate_invariants() {
        // Hand-build a table whose entry escapes the section region.
        let mut w = SectionWriter::new();
        w.add_section(SEC_MANIFEST, 0, b"payload!");
        let good = w.finish();
        let table_offset = u64::from_le_bytes(good[10..18].try_into().unwrap()) as usize;
        let entry_at = table_offset + 4;

        // offset+len past table_offset → Corrupt.
        let mut img = good.clone();
        img[entry_at + 14..entry_at + 22].copy_from_slice(&(table_offset as u64).to_le_bytes());
        // fix the table checksum so the range check is what fires
        let tl = 4 + SECTION_ENTRY_LEN;
        let ck = fnv1a64(&img[table_offset..table_offset + tl]);
        img[18..26].copy_from_slice(&ck.to_le_bytes());
        assert!(matches!(open(img), Err(SnapshotFileError::Corrupt { .. })));

        // Duplicate (kind,index) → Corrupt.
        let mut w = SectionWriter::new();
        w.add_section(SEC_SHARD, 3, b"one");
        w.add_section(SEC_SHARD, 3, b"two");
        assert!(matches!(
            open(w.finish()),
            Err(SnapshotFileError::Corrupt { .. })
        ));
    }

    #[test]
    fn append_commits_atomically_and_reuses_kept_sections() {
        let path = tmp("append.koko");
        let mut w = SectionWriter::new();
        w.add_section(SEC_EMBED, 0, b"embedding-bytes");
        w.add_section(SEC_MANIFEST, 0, b"old-manifest....");
        std::fs::write(&path, w.finish()).unwrap();
        let before = {
            let bytes = std::fs::read(&path).unwrap();
            SectionedFile::open_bytes(&path.display().to_string(), SharedBytes::from_vec(bytes))
                .unwrap()
        };
        let keep = [before.find(SEC_EMBED, 0).unwrap()];
        let new = [
            (SEC_MANIFEST, 0u32, b"new-manifest!!!!".to_vec()),
            (SEC_SHARD, 0u32, b"a fresh shard frame".to_vec()),
        ];
        let (header, table) =
            append_sections(&path, &before.header(), before.extent(), &keep, &new)
                .unwrap()
                .expect("header matched");
        assert_eq!(table.entries.len(), 3);

        let after = {
            let bytes = std::fs::read(&path).unwrap();
            SectionedFile::open_bytes(&path.display().to_string(), SharedBytes::from_vec(bytes))
                .unwrap()
        };
        assert_eq!(after.header(), header);
        // Kept section: same offset, same bytes, no rewrite.
        assert_eq!(after.find(SEC_EMBED, 0).unwrap(), keep[0]);
        assert_eq!(
            after
                .section_bytes(&after.find(SEC_EMBED, 0).unwrap())
                .unwrap()
                .as_slice(),
            b"embedding-bytes"
        );
        assert_eq!(
            after
                .section_bytes(&after.find(SEC_MANIFEST, 0).unwrap())
                .unwrap()
                .as_slice(),
            b"new-manifest!!!!"
        );
        assert_eq!(
            after
                .section_bytes(&after.find(SEC_SHARD, 0).unwrap())
                .unwrap()
                .as_slice(),
            b"a fresh shard frame"
        );

        // A second append against the *old* header refuses (file moved on).
        assert!(
            append_sections(&path, &before.header(), before.extent(), &keep, &new)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn append_clears_torn_tail_first() {
        let path = tmp("torn.koko");
        let mut w = SectionWriter::new();
        w.add_section(SEC_MANIFEST, 0, b"manifest");
        std::fs::write(&path, w.finish()).unwrap();
        let before = {
            let bytes = std::fs::read(&path).unwrap();
            SectionedFile::open_bytes("torn.koko", SharedBytes::from_vec(bytes)).unwrap()
        };
        // Simulate an aborted earlier append: garbage past the extent.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xAB; 777]).unwrap();
        }
        let new = [(SEC_ROUTER, 0u32, b"router-frame".to_vec())];
        let (_, table) = append_sections(
            &path,
            &before.header(),
            before.extent(),
            &[before.find(SEC_MANIFEST, 0).unwrap()],
            &new,
        )
        .unwrap()
        .expect("tail must not block the append");
        assert_eq!(table.entries.len(), 2);
        let after = {
            let bytes = std::fs::read(&path).unwrap();
            SectionedFile::open_bytes("torn.koko", SharedBytes::from_vec(bytes)).unwrap()
        };
        for e in &after.table().entries {
            after.section_bytes(e).unwrap();
        }
    }
}
