//! `Db` — a named collection of storage objects with directory persistence,
//! playing the role of the PostgreSQL database in Figure 2's "On disk
//! version".

use crate::closure::ClosureTable;
use crate::codec;
use crate::docstore::DocStore;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A tiny embedded database: one document store plus named closure tables
/// and named raw blobs (the inverted tables serialize themselves into
/// blobs). Concurrent readers are allowed during query evaluation; builds
/// take the write lock.
#[derive(Debug, Default)]
pub struct Db {
    inner: RwLock<DbInner>,
}

#[derive(Debug, Default)]
struct DbInner {
    docs: DocStore,
    closures: BTreeMap<String, ClosureTable>,
    blobs: BTreeMap<String, Vec<u8>>,
}

impl Db {
    pub fn new() -> Db {
        Db::default()
    }

    /// Replace the document store.
    pub fn set_docs(&self, docs: DocStore) {
        self.inner.write().docs = docs;
    }

    /// Run `f` with read access to the document store.
    pub fn with_docs<R>(&self, f: impl FnOnce(&DocStore) -> R) -> R {
        f(&self.inner.read().docs)
    }

    /// Decode one document (the `LoadArticle` path).
    pub fn load_document(&self, idx: u32) -> Result<koko_nlp::Document, crate::DecodeError> {
        self.inner.read().docs.load(idx)
    }

    pub fn put_closure(&self, name: &str, table: ClosureTable) {
        self.inner.write().closures.insert(name.to_string(), table);
    }

    pub fn with_closure<R>(&self, name: &str, f: impl FnOnce(Option<&ClosureTable>) -> R) -> R {
        f(self.inner.read().closures.get(name))
    }

    pub fn put_blob(&self, name: &str, bytes: Vec<u8>) {
        self.inner.write().blobs.insert(name.to_string(), bytes);
    }

    pub fn get_blob(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.read().blobs.get(name).cloned()
    }

    /// Total approximate footprint of everything stored.
    pub fn approx_bytes(&self) -> usize {
        let g = self.inner.read();
        g.docs.approx_bytes()
            + g.closures.values().map(|c| c.approx_bytes()).sum::<usize>()
            + g.blobs.values().map(Vec::len).sum::<usize>()
    }

    /// Persist everything under `dir` (one file per object).
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let g = self.inner.read();
        g.docs.save(&dir.join("docs.koko"))?;
        for (name, table) in &g.closures {
            codec::save_to_file(&dir.join(format!("closure_{name}.koko")), table)?;
        }
        for (name, blob) in &g.blobs {
            std::fs::write(dir.join(format!("blob_{name}.bin")), blob)?;
        }
        Ok(())
    }

    /// Open a database persisted by [`Db::save_dir`].
    pub fn open_dir(dir: &Path) -> std::io::Result<Db> {
        let mut inner = DbInner {
            docs: DocStore::open(&dir.join("docs.koko"))?,
            ..DbInner::default()
        };
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path: PathBuf = entry.path();
            let Some(fname) = path.file_name().and_then(|s| s.to_str()) else {
                continue;
            };
            if let Some(name) = fname
                .strip_prefix("closure_")
                .and_then(|s| s.strip_suffix(".koko"))
            {
                inner
                    .closures
                    .insert(name.to_string(), codec::load_from_file(&path)?);
            } else if let Some(name) = fname
                .strip_prefix("blob_")
                .and_then(|s| s.strip_suffix(".bin"))
            {
                inner.blobs.insert(name.to_string(), std::fs::read(&path)?);
            }
        }
        Ok(Db {
            inner: RwLock::new(inner),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::ClosureRow;
    use koko_nlp::Pipeline;

    #[test]
    fn db_round_trip_through_directory() {
        let p = Pipeline::new();
        let db = Db::new();
        let mut docs = DocStore::new();
        docs.put(&p.parse_document(0, "Anna ate cake."));
        docs.put(&p.parse_document(1, "The cafe serves espresso."));
        db.set_docs(docs);

        let mut ct = ClosureTable::new();
        ct.insert(ClosureRow {
            id: 1,
            label: 2,
            depth: 1,
            aid: 0,
            alabel: 0,
            adepth: 0,
        });
        db.put_closure("pl", ct);
        db.put_blob("word_index", vec![1, 2, 3, 4]);

        let dir = std::env::temp_dir().join("koko_db_test");
        std::fs::remove_dir_all(&dir).ok();
        db.save_dir(&dir).unwrap();

        let back = Db::open_dir(&dir).unwrap();
        assert_eq!(back.with_docs(|d| d.len()), 2);
        assert_eq!(
            back.load_document(1).unwrap().sentences[0].tokens[1].text,
            "cafe"
        );
        back.with_closure("pl", |c| assert_eq!(c.unwrap().len(), 1));
        assert_eq!(back.get_blob("word_index"), Some(vec![1, 2, 3, 4]));
        assert!(back.approx_bytes() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_closure_is_none() {
        let db = Db::new();
        db.with_closure("nope", |c| assert!(c.is_none()));
        assert!(db.get_blob("nope").is_none());
    }
}
