//! The KOKO engine: Figure 2's full workflow — preprocessing (parse text &
//! build per-shard indices), then per query: Normalize → per-shard
//! {DPLI → LoadArticle → GSP/extract} → merge → Aggregate.
//!
//! The engine is split into immutable [`Snapshot`] generations published
//! through a [`LiveIndex`] (shards + embeddings, `Send + Sync`, shared by
//! `Arc`) and a stateless executor ([`execute_query`]). [`Koko`] is the
//! user-facing façade tying one live index to one [`EngineOpts`]; clones
//! share the live index, so an [`Koko::add_texts`] on any clone is
//! visible to queries on every other. The per-shard stage fans out over
//! worker threads when `opts.parallel` is set; partial results and
//! [`Profile`] timers merge deterministically, so sharded output is
//! byte-identical (rows, order, scores) to the single-shard sequential
//! evaluator — and, because results are shard-layout independent, a
//! corpus ingested incrementally (any split, compacted or not) answers
//! byte-identically to a one-shot batch build.

use crate::aggregate::{AggOpts, Aggregator, ShardScoreBound};
use crate::binder::{bind_domains, CompiledQuery, SentCtx};
use crate::cache::{CacheStats, CachedCompile, CachedResult, QueryCaches};
use crate::error::Error;
use crate::live::LiveIndex;
use crate::profile::Profile;
use crate::request::{Explain, Order, QueryRequest, ShardExplain};
use crate::snapshot::Snapshot;
use crate::{dpli, gsp};
use koko_embed::Embeddings;
use koko_lang::{normalize, parse_query, NVarKind, Query};
use koko_nlp::{Document, Sid};
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineOpts {
    /// Use the Generate-Skip-Plan evaluator (§4.3). `false` selects the
    /// naive nested-loop evaluator (`KOKO&NOGSP`, Table 1).
    pub use_gsp: bool,
    /// Load candidate articles from the document store (paying the real
    /// `LoadArticle` decode cost of Table 2) instead of borrowing the
    /// in-memory corpus.
    pub store_backed: bool,
    /// Expand descriptors with paraphrase embeddings (Figure 5 ablation).
    pub use_descriptors: bool,
    /// Threshold for satisfying clauses that omit `with threshold`.
    pub default_threshold: f64,
    /// Descriptor expansion cap and per-word similarity floor.
    pub expansion_k: usize,
    pub expansion_min_sim: f64,
    /// Number of index/storage shards to partition the corpus into.
    /// `0` (the default) means one shard per available core. Results are
    /// independent of the shard count; only parallelism changes.
    pub num_shards: usize,
    /// Run ingest, shard builds, the per-shard query stage, and
    /// `query_batch` on worker threads. `false` forces fully sequential
    /// execution regardless of the shard count.
    pub parallel: bool,
    /// Cache parse → normalize → compile per distinct query text, so
    /// repeat traffic skips the whole front end. On by default;
    /// compilation is deterministic so this never changes results.
    pub compiled_cache: bool,
    /// Capacity of the bounded LRU result cache, in entries. `0` (the
    /// default) disables it. A hit serves the previously computed rows and
    /// skips DPLI / LoadArticle / GSP / extract / aggregation entirely;
    /// hits and misses are reported in [`Profile`]. The cache key includes
    /// the normalized query and every result-relevant option, so cached
    /// rows are always byte-identical to a fresh evaluation.
    pub result_cache: usize,
    /// Force [`Koko::open`] to fully materialize the snapshot up front
    /// (decode every shard + rebuild the corpus) instead of memory-mapping
    /// it and decoding shards on first touch. Off by default: the lazy
    /// open is O(sections) regardless of corpus size, and answers are
    /// byte-identical either way. Write paths (`koko add`, writable
    /// serving) force this on so corruption surfaces at open, not behind
    /// the infallible write APIs. Never part of the result fingerprint —
    /// it cannot change results, only when decode costs are paid.
    pub eager_load: bool,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            use_gsp: true,
            store_backed: true,
            use_descriptors: true,
            default_threshold: 0.5,
            expansion_k: 120,
            expansion_min_sim: 0.55,
            num_shards: 0,
            parallel: true,
            compiled_cache: true,
            result_cache: 0,
            eager_load: false,
        }
    }
}

impl EngineOpts {
    /// The subset of options that can change query *results* (as opposed
    /// to wall-clock), rendered canonically — part of the result-cache key
    /// so mutating `koko.opts` between queries can never serve stale rows.
    fn result_fingerprint(&self) -> String {
        format!(
            "gsp={},store={},desc={},thr={},k={},sim={}",
            self.use_gsp,
            self.store_backed,
            self.use_descriptors,
            self.default_threshold,
            self.expansion_k,
            self.expansion_min_sim,
        )
    }
}

/// One output value in a result row.
#[derive(Debug, Clone, PartialEq)]
pub struct OutValue {
    pub name: String,
    pub text: String,
    pub sid: Sid,
    /// Half-open token span within the sentence.
    pub start: u32,
    pub end: u32,
}

/// One result tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Document index in the corpus.
    pub doc: u32,
    pub values: Vec<OutValue>,
    /// Aggregated satisfying-clause score of the row's first scored
    /// variable (1.0 when the query has no satisfying clause).
    pub score: f64,
}

/// Query result: the (possibly windowed) rows, totals describing what the
/// window was cut from, the optional [`Explain`] report, and the
/// per-stage profile.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Result rows, in the requested [`Order`]. For a plain
    /// [`Koko::query`] this is every match; a [`QueryRequest`] with
    /// `limit`/`offset` returns the corresponding window.
    pub rows: Vec<Row>,
    /// Matching rows known to exist (after `min_score`, before the
    /// `limit`/`offset` window). Exact when no top-k early termination
    /// stopped the scan (always, for unlimited requests); a lower bound
    /// otherwise.
    pub total_matches: usize,
    /// `true` when matches may exist *beyond the end* of the returned
    /// window — the limit cut them off, or early termination stopped
    /// before the corpus was exhausted. Rows skipped by `offset` do not
    /// count (they were requested away), so paging forward until
    /// `truncated` is `false` visits every match exactly once. Always
    /// `false` for an unlimited, un-offset request.
    pub truncated: bool,
    /// The explain report, present iff the request asked for one
    /// ([`QueryRequest::explain`](crate::QueryRequest::explain)).
    pub explain: Option<Explain>,
    /// Per-stage timers and counters.
    pub profile: Profile,
}

impl QueryOutput {
    /// Distinct values of one output variable (case-preserving, first
    /// occurrence wins), e.g. the extracted cafe names.
    pub fn distinct(&self, var: &str) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for v in &row.values {
                if v.name == var && seen.insert(v.text.to_lowercase()) {
                    out.push(v.text.clone());
                }
            }
        }
        out
    }

    /// Distinct `(doc, value)` pairs for one variable — the unit the
    /// extraction experiments score against ground truth.
    pub fn doc_values(&self, var: &str) -> Vec<(u32, String)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for v in &row.values {
                if v.name == var {
                    let key = (row.doc, v.text.to_lowercase());
                    if seen.insert(key.clone()) {
                        out.push((row.doc, v.text.clone()));
                    }
                }
            }
        }
        out
    }
}

/// What one [`Koko::add_texts`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddReport {
    /// Documents ingested by this call.
    pub added: usize,
    /// Total documents in the published snapshot.
    pub documents: usize,
    /// Epoch of the published snapshot (unchanged if `added == 0`).
    pub epoch: u64,
    /// Generation of the published snapshot (adds never change it).
    pub generation: u64,
    /// Delta shards currently awaiting compaction.
    pub delta_shards: usize,
    /// Documents living in those delta shards.
    pub delta_documents: usize,
}

/// What one [`Koko::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Delta shards merged into the base (0 = the call was a no-op).
    pub merged_deltas: usize,
    /// Base shards after compaction.
    pub shards: usize,
    /// Epoch of the published snapshot (unchanged on a no-op).
    pub epoch: u64,
    /// Generation of the published snapshot (+1 unless a no-op).
    pub generation: u64,
}

/// The KOKO system: a [`LiveIndex`] of immutable [`Snapshot`] generations
/// plus the options queries run with. Cheap to clone; clones share the
/// live index and the caches, so updates and cache hits propagate across
/// every clone (server worker threads rely on this).
#[derive(Clone)]
pub struct Koko {
    live: Arc<LiveIndex>,
    /// Query caches (compiled + results). Shared by every clone, so server
    /// worker threads pool their hits; replaced wholesale when options or
    /// embeddings change. Live updates do *not* replace it: the result
    /// cache is epoch-keyed, so publishing a new snapshot strands the old
    /// epoch's rows (they age out of the LRU) while compiled queries
    /// survive.
    caches: Arc<QueryCaches>,
    pub opts: EngineOpts,
}

impl Koko {
    /// Parse raw documents (concurrently, when the default options allow)
    /// and build every shard index — Figure 2's preprocessing box.
    ///
    /// ```
    /// use koko_core::Koko;
    ///
    /// let koko = Koko::from_texts(&["Anna ate cake.", "The cafe was busy."]);
    /// assert_eq!(koko.num_documents(), 2);
    /// ```
    pub fn from_texts<S: AsRef<str> + Sync>(texts: &[S]) -> Koko {
        Koko::from_texts_with_opts(texts, EngineOpts::default())
    }

    /// [`Koko::from_texts`] with explicit options (parallelism and shard
    /// count take effect during ingest, not just at query time).
    pub fn from_texts_with_opts<S: AsRef<str> + Sync>(texts: &[S], opts: EngineOpts) -> Koko {
        let pipeline = koko_nlp::Pipeline::new();
        let corpus = if opts.parallel {
            pipeline.parse_corpus_parallel(texts, 0)
        } else {
            pipeline.parse_corpus(texts)
        };
        Koko::from_corpus_with_opts(corpus, opts)
    }

    /// Build from an already parsed corpus with default options.
    pub fn from_corpus(corpus: koko_nlp::Corpus) -> Koko {
        Koko::from_corpus_with_opts(corpus, EngineOpts::default())
    }

    /// Build from an already parsed corpus with explicit options.
    pub fn from_corpus_with_opts(corpus: koko_nlp::Corpus, opts: EngineOpts) -> Koko {
        Koko::from_snapshot(
            Snapshot::build(corpus, opts.num_shards, opts.parallel),
            opts,
        )
    }

    /// Wrap an existing snapshot (e.g. one returned by [`Snapshot::load`])
    /// without rebuilding anything. The snapshot's shard layout wins:
    /// `opts.num_shards` is ignored here, unlike [`Koko::with_opts`].
    pub fn from_snapshot(snapshot: Snapshot, opts: EngineOpts) -> Koko {
        Koko {
            live: Arc::new(LiveIndex::new(snapshot)),
            caches: Arc::new(QueryCaches::new(opts.compiled_cache, opts.result_cache)),
            opts,
        }
    }

    /// Persist the engine's current snapshot to a `.koko` file — the
    /// "build" half of the build-once / query-many workflow. Returns the
    /// file size in bytes. Snapshots saved after incremental adds keep
    /// their generation and base/delta split, and reload to answer
    /// identically.
    pub fn save(&self, path: &std::path::Path) -> Result<u64, Error> {
        self.snapshot().save(path, self.opts.parallel)
    }

    /// Open a `.koko` snapshot file with default options — the "query"
    /// half of the build-once / query-many workflow. Queries against the
    /// loaded engine return byte-identical rows to an engine freshly built
    /// from the same text.
    ///
    /// ```
    /// use koko_core::Koko;
    ///
    /// let built = Koko::from_texts(&["Anna ate some delicious cheesecake."]);
    /// let path = std::env::temp_dir().join("doctest_open.koko");
    /// built.save(&path).unwrap();
    ///
    /// let loaded = Koko::open(&path).unwrap();
    /// let q = koko_lang::queries::EXAMPLE_2_1;
    /// assert_eq!(loaded.query(q).unwrap().rows, built.query(q).unwrap().rows);
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn open(path: &std::path::Path) -> Result<Koko, Error> {
        Koko::open_with_opts(path, EngineOpts::default())
    }

    /// [`Koko::open`] with explicit options. The shard layout is read from
    /// the file (`opts.num_shards` does not trigger a rebuild); `parallel`
    /// gates both the load fan-out and later query execution.
    ///
    /// By default v4 snapshots are memory-mapped ([`Snapshot::open_mmap`]):
    /// the open validates the header + section table and returns in
    /// O(sections), shards decode out of the mapping on first query
    /// touch, and payload-framed (v1–3) files fall back to the eager
    /// load. `opts.eager_load` forces full up-front materialization.
    pub fn open_with_opts(path: &std::path::Path, opts: EngineOpts) -> Result<Koko, Error> {
        let snap = if opts.eager_load {
            Snapshot::load(path, opts.parallel)?
        } else {
            Snapshot::open_mmap(path)?
        };
        Ok(Koko::from_snapshot(snap, opts))
    }

    /// Replace the embedding model (e.g. with a domain ontology merged in).
    /// The returned engine publishes through a fresh live index, so
    /// existing clones keep their embeddings; caches reset because new
    /// embeddings can change descriptor scores.
    pub fn with_embeddings(self, embed: Embeddings) -> Koko {
        Koko {
            live: Arc::new(LiveIndex::new(self.snapshot().with_embeddings(embed))),
            caches: Arc::new(QueryCaches::new(
                self.opts.compiled_cache,
                self.opts.result_cache,
            )),
            opts: self.opts,
        }
    }

    /// Replace the options. If the requested shard count differs from the
    /// current base layout, the shards are rebuilt (compacting any deltas
    /// along the way); embeddings carry over. Like
    /// [`Koko::with_embeddings`], the returned engine has its own live
    /// index and fresh caches.
    pub fn with_opts(self, opts: EngineOpts) -> Koko {
        let snap = self.snapshot();
        let want = koko_par::resolve_threads(opts.num_shards, snap.num_documents());
        let live = if want != snap.num_base_shards() || snap.num_delta_shards() > 0 {
            LiveIndex::new(snap.compacted(opts.num_shards, opts.parallel))
        } else {
            // Layout already matches: the new live index republishes the
            // pinned snapshot as-is (shared, same epoch — safe because
            // the caches below are fresh).
            LiveIndex::new(snap)
        };
        Koko {
            live: Arc::new(live),
            caches: Arc::new(QueryCaches::new(opts.compiled_cache, opts.result_cache)),
            opts,
        }
    }

    /// Parse `texts` through the full NLP pipeline and publish them as new
    /// documents — incremental ingest. The documents join the index as an
    /// append-only delta shard (or extend the open one); concurrent
    /// queries keep reading the snapshot they started on and observe the
    /// new epoch on their next call. Writers serialize; readers are never
    /// blocked beyond the publication pointer swap.
    ///
    /// Equivalence guarantee: however a corpus is split across
    /// `add_texts` calls — compacted or not — every query answers
    /// byte-identically (rows, order, scores) to a one-shot
    /// [`Koko::from_texts`] build of the concatenated corpus.
    ///
    /// ```
    /// use koko_core::Koko;
    ///
    /// let koko = Koko::from_texts(&["Anna ate cake."]);
    /// let report = koko.add_texts(&["The cafe was busy."]);
    /// assert_eq!(report.added, 1);
    /// assert_eq!(koko.num_documents(), 2);
    /// ```
    pub fn add_texts<S: AsRef<str> + Sync>(&self, texts: &[S]) -> AddReport {
        let guard = self.live.write_lock();
        let snap = self.live.current();
        let first = snap.num_documents() as u32;
        let threads = if self.opts.parallel { 0 } else { 1 };
        let docs = koko_nlp::Pipeline::new().parse_documents(texts, first, threads);
        let added = docs.len();
        let published = if added == 0 {
            snap
        } else {
            guard.publish(snap.with_added_documents(docs))
        };
        drop(guard);
        AddReport {
            added,
            documents: published.num_documents(),
            epoch: published.epoch(),
            generation: published.generation(),
            delta_shards: published.num_delta_shards(),
            delta_documents: published.num_delta_documents(),
        }
    }

    /// Merge every delta shard into balanced base shards (a full shard
    /// rebuild via `plan_shards`) and publish the result. A no-op when no
    /// deltas exist. Readers mid-query are unaffected; the compacted
    /// layout is exactly what a batch build of the current corpus with
    /// the same shard count produces.
    pub fn compact(&self) -> CompactReport {
        let guard = self.live.write_lock();
        let snap = self.live.current();
        let merged_deltas = snap.num_delta_shards();
        // With `num_shards` unset (0 = auto), preserve the snapshot's own
        // base layout rather than re-sharding to the machine's core count
        // — compacting a loaded 2-shard snapshot must not silently turn
        // it into an N-shard one ("snapshots keep their layout").
        let target_shards = if self.opts.num_shards == 0 {
            snap.num_base_shards()
        } else {
            self.opts.num_shards
        };
        let published = if merged_deltas == 0 {
            snap
        } else {
            guard.publish(snap.compacted(target_shards, self.opts.parallel))
        };
        drop(guard);
        CompactReport {
            merged_deltas,
            shards: published.num_shards(),
            epoch: published.epoch(),
            generation: published.generation(),
        }
    }

    /// The currently published snapshot (shards + embeddings). The
    /// returned `Arc` pins that generation: it stays valid and immutable
    /// across concurrent [`Koko::add_texts`] / [`Koko::compact`] calls,
    /// which publish successors instead of mutating it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.live.current()
    }

    /// Epoch of the currently published snapshot (changes on every
    /// successful update; result-cache entries are keyed by it).
    pub fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// Generation of the currently published snapshot (base rebuilds).
    pub fn generation(&self) -> u64 {
        self.snapshot().generation()
    }

    /// Documents in the currently published snapshot (router-derived — no
    /// shard or corpus materialization).
    pub fn num_documents(&self) -> usize {
        self.snapshot().num_documents()
    }

    /// Shards (base + delta) in the currently published snapshot.
    pub fn num_shards(&self) -> usize {
        self.snapshot().num_shards()
    }

    /// Delta shards awaiting compaction in the current snapshot.
    pub fn num_delta_shards(&self) -> usize {
        self.snapshot().num_delta_shards()
    }

    /// Parse, normalize and evaluate a KOKO query (see
    /// `docs/QUERYLANG.md` for the language).
    ///
    /// ```
    /// use koko_core::Koko;
    ///
    /// let koko = Koko::from_texts(&["Anna ate some delicious cheesecake."]);
    /// let out = koko.query(koko_lang::queries::EXAMPLE_2_1).unwrap();
    /// assert_eq!(out.rows[0].values[0].text, "cheesecake");
    /// ```
    /// Equivalent to `QueryRequest::new(text).run(self)` — a thin wrapper
    /// over the [`QueryRequest`] path kept for the common case. Reach for
    /// the builder when you need `limit`/`offset`, a score floor, a
    /// deadline, an explain report, or per-call cache control.
    pub fn query(&self, text: &str) -> Result<QueryOutput, Error> {
        self.run_request(&QueryRequest::new(text), self.opts.parallel)
    }

    /// [`Koko::query`] with an explicit cache switch: `use_cache = false`
    /// bypasses both the compiled-query cache and the result cache for
    /// this call only (the caches are neither read nor written, and no
    /// hit/miss is counted). Results are byte-identical either way.
    ///
    /// Equivalent to `QueryRequest::new(text).cache(use_cache).run(self)`
    /// — prefer the [`QueryRequest`] builder, which composes the switch
    /// with every other per-request option.
    pub fn query_with_cache(&self, text: &str, use_cache: bool) -> Result<QueryOutput, Error> {
        self.run_request(
            &QueryRequest::new(text).cache(use_cache),
            self.opts.parallel,
        )
    }

    /// Evaluate one [`QueryRequest`] — the single execution entry path
    /// (every other query API delegates here).
    pub fn run(&self, request: &QueryRequest) -> Result<QueryOutput, Error> {
        self.run_request(request, self.opts.parallel)
    }

    /// Evaluate an already parsed query (`t0` anchors the Normalize
    /// timer). Bypasses both caches — callers holding an AST have already
    /// paid the front-end cost, and the raw-text key is gone.
    pub fn query_ast(&self, parsed: &Query, t0: std::time::Instant) -> Result<QueryOutput, Error> {
        let snap = self.live.current();
        execute_query(&snap, &self.opts, parsed, t0, self.opts.parallel)
    }

    /// Cumulative cache hit/miss counters across all clones of this
    /// engine (server workers share them).
    pub fn cache_stats(&self) -> CacheStats {
        self.caches.stats()
    }

    /// The full request path with both caches: compiled-query lookup (or
    /// front-end run + fill), then result-cache lookup (or evaluation +
    /// fill). `shard_parallel` gates the per-shard fan-out.
    ///
    /// Result-cache contract: only *complete* results (nothing windowed
    /// off, nothing early-terminated) are stored, keyed by normalized
    /// query + result-relevant engine options + the request's `min_score`
    /// and `order`. A hit can therefore serve **any** narrower
    /// `limit`/`offset` slice of the cached rows without re-evaluating.
    fn run_request(
        &self,
        request: &QueryRequest,
        shard_parallel: bool,
    ) -> Result<QueryOutput, Error> {
        let t0 = std::time::Instant::now();
        let text = request.text.as_str();
        let use_cache = request.cache;
        // Pin the current generation: the whole query — including the
        // result-cache key — runs against this one snapshot, so a
        // concurrent add/compact can neither tear the read nor leak rows
        // across epochs.
        let snap = self.live.current();

        // ---- Front end: compiled-query cache ---------------------------
        let use_compiled = use_cache && self.opts.compiled_cache;
        let mut compiled_hit = false;
        let compiled: Arc<CachedCompile> = match use_compiled
            .then(|| self.caches.get_compiled(text))
            .flatten()
        {
            Some(hit) => {
                compiled_hit = true;
                hit
            }
            None => {
                let parsed = parse_query(text)?;
                let norm = normalize(&parsed)?;
                let cq = CompiledQuery::compile(norm)?;
                let norm_key = format!("{:?}", cq.norm);
                let entry = Arc::new(CachedCompile { cq, norm_key });
                if use_compiled {
                    self.caches.store_compiled(text, Arc::clone(&entry));
                }
                entry
            }
        };
        let normalize_time = t0.elapsed();
        let count_compiled = |profile: &mut Profile| {
            if use_compiled {
                profile.compiled_cache_hits = usize::from(compiled_hit);
                profile.compiled_cache_misses = usize::from(!compiled_hit);
            }
        };

        // ---- Result cache (epoch-keyed) --------------------------------
        // The snapshot epoch leads the key: any published update (adds,
        // compaction, new embeddings) strands every older entry, and two
        // engines sharing one cache can never serve each other's rows.
        // `min_score` and `order` change the row set / sequence, so they
        // join the key; `limit`/`offset` do not — cached entries hold the
        // complete result and any window is sliced from them on a hit.
        // Explain reports require a real evaluation, so explain requests
        // leave the result cache alone entirely.
        let use_results = use_cache && !request.explain && self.caches.results_enabled();
        let result_key = if use_results {
            format!(
                "e{}|{}|ms={:?}|ord={:?}|{}",
                snap.epoch(),
                self.opts.result_fingerprint(),
                request.min_score,
                request.order,
                compiled.norm_key
            )
        } else {
            String::new()
        };
        if use_results {
            if let Some(hit) = self.caches.get_result(&result_key) {
                // Every evaluation stage is skipped: only the front-end
                // timer and the counters of the producing run survive.
                let mut profile = Profile {
                    normalize: normalize_time,
                    candidate_sentences: hit.candidate_sentences,
                    delta_candidates: hit.delta_candidates,
                    raw_tuples: hit.raw_tuples,
                    result_cache_hits: 1,
                    ..Profile::default()
                };
                count_compiled(&mut profile);
                let full = hit.rows.as_ref();
                let start = request.offset.min(full.len());
                let end = match request.limit {
                    Some(k) => start.saturating_add(k).min(full.len()),
                    None => full.len(),
                };
                return Ok(QueryOutput {
                    rows: full[start..end].to_vec(),
                    total_matches: full.len(),
                    truncated: end < full.len(),
                    explain: None,
                    profile,
                });
            }
        }

        // ---- Evaluate --------------------------------------------------
        let exec = ExecParams {
            limit: request.limit,
            offset: request.offset,
            min_score: request.min_score,
            order: request.order,
            deadline: request.deadline.map(|budget| (t0, budget)),
            explain: request.explain,
        };
        let mut out = execute_request(
            &snap,
            &self.opts,
            &compiled.cq,
            normalize_time,
            shard_parallel,
            &exec,
        )?;
        count_compiled(&mut out.profile);
        if use_results {
            out.profile.result_cache_misses = 1;
            // Only complete results are cacheable: a windowed or
            // early-terminated run does not hold the rows it skipped, so
            // serving a wider request from it would drop matches.
            if !out.truncated && out.rows.len() == out.total_matches {
                self.caches.store_result(
                    result_key,
                    CachedResult {
                        rows: Arc::new(out.rows.clone()),
                        candidate_sentences: out.profile.candidate_sentences,
                        delta_candidates: out.profile.delta_candidates,
                        raw_tuples: out.profile.raw_tuples,
                    },
                );
            }
        }
        Ok(out)
    }

    /// Evaluate many queries against the shared snapshot — equivalent to
    /// [`Koko::run_batch`] over default [`QueryRequest`]s. Build the
    /// requests yourself when the batch needs per-query options.
    pub fn query_batch(&self, queries: &[&str]) -> Vec<Result<QueryOutput, Error>> {
        let requests: Vec<QueryRequest> = queries.iter().map(|q| QueryRequest::new(*q)).collect();
        self.run_batch(&requests)
    }

    /// Evaluate many [`QueryRequest`]s against the shared snapshot. With
    /// `opts.parallel` the requests fan out over worker threads (each one
    /// then runs its shard stage sequentially, so thread usage stays
    /// bounded by the batch width); results keep input order and are
    /// identical to calling [`Koko::run`] per request. The batch goes
    /// through the same caches as single queries.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryOutput, Error>> {
        // Shard-stage parallelism off: the batch is the fan-out unit.
        if self.opts.parallel && requests.len() > 1 {
            koko_par::par_map(requests, 0, |_, request| self.run_request(request, false))
        } else {
            requests
                .iter()
                .map(|request| self.run_request(request, false))
                .collect()
        }
    }
}

/// Internal per-request execution parameters, derived from a
/// [`QueryRequest`] (or defaulted for the legacy entry points).
#[derive(Debug, Clone, Copy)]
struct ExecParams {
    limit: Option<usize>,
    offset: usize,
    min_score: Option<f64>,
    order: Order,
    /// Query start + wall-clock budget; checked between pipeline stages
    /// and at document boundaries.
    deadline: Option<(std::time::Instant, std::time::Duration)>,
    explain: bool,
}

impl ExecParams {
    /// Today's `Koko::query` semantics: everything, in `DocOrder`, no
    /// deadline, no explain.
    fn unrestricted() -> ExecParams {
        ExecParams {
            limit: None,
            offset: 0,
            min_score: None,
            order: Order::DocOrder,
            deadline: None,
            explain: false,
        }
    }

    /// Rows each shard must find before it may stop scanning documents.
    /// Prefix-based early termination is sound only under `DocOrder`
    /// (shard-local row prefixes are prefixes of the global order);
    /// ranked requests prune through [`ExecParams::heap_cap`] instead.
    fn need_rows(&self) -> Option<usize> {
        match (self.order, self.limit) {
            (Order::DocOrder, Some(k)) => Some(self.offset.saturating_add(k)),
            _ => None,
        }
    }

    /// Heap capacity for the `ScoreDesc` bounded top-k: each shard only
    /// ever needs its best `offset + limit` rows (every row of the global
    /// window is within its own shard's best `offset + limit` under the
    /// same comparator), so a shard-local min-heap of that size plus the
    /// shard score bound drives WAND-style document skipping. `None` for
    /// unlimited or `DocOrder` requests.
    fn heap_cap(&self) -> Option<usize> {
        match (self.order, self.limit) {
            (Order::ScoreDesc, Some(k)) => Some(self.offset.saturating_add(k)),
            _ => None,
        }
    }

    fn check_deadline(&self) -> Result<(), Error> {
        if let Some((start, budget)) = self.deadline {
            let elapsed = start.elapsed();
            if elapsed >= budget {
                return Err(Error::DeadlineExceeded { budget, elapsed });
            }
        }
        Ok(())
    }
}

/// Partial result of evaluating one shard: aggregated rows (each carrying
/// the canonical tuple key the deterministic merge sorts by), the shard's
/// stage timers, and its explain counters.
struct ShardPartial {
    rows: Vec<(String, Row)>,
    /// Rows that survived aggregation in the documents this shard
    /// actually processed — under a ranked top-k this can exceed
    /// `rows.len()` (heap-evicted rows still count toward the
    /// `total_matches` lower bound).
    rows_found: usize,
    profile: Profile,
    early_stopped: bool,
    explain: ShardExplain,
    plans: Vec<String>,
}

/// One entry of the `ScoreDesc` bounded top-k heap. The `BinaryHeap`
/// max-element is the *worst* held row — lowest score, ties resolved to
/// the larger canonical key — so `peek()` is the floor a new row must
/// beat. `total_cmp` keeps the order total (and deterministic) even for
/// pathological NaN scores.
struct HeapRow {
    key: String,
    row: Row,
}

impl Ord for HeapRow {
    fn cmp(&self, other: &HeapRow) -> std::cmp::Ordering {
        other
            .row
            .score
            .total_cmp(&self.row.score)
            .then_with(|| self.key.cmp(&other.key))
    }
}
impl PartialOrd for HeapRow {
    fn partial_cmp(&self, other: &HeapRow) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for HeapRow {
    fn eq(&self, other: &HeapRow) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapRow {}

/// Keep the best `cap` rows under the (score desc, key asc) comparator.
/// Returns without inserting when the candidate cannot beat the floor —
/// rows from later documents carry strictly larger keys, so score ties
/// always resolve against the newcomer.
fn push_bounded(heap: &mut BinaryHeap<HeapRow>, cap: usize, key: String, row: Row) {
    let entry = HeapRow { key, row };
    if heap.len() < cap {
        heap.push(entry);
    } else if let Some(mut worst) = heap.peek_mut() {
        if entry.cmp(&worst) == std::cmp::Ordering::Less {
            *worst = entry;
        }
    }
}

/// The final `ScoreDesc` ordering: descending score, ties keeping their
/// prior (DocOrder) position. `total_cmp` makes the comparator total, so
/// NaN or infinite scores can never panic or destabilize the sort (NaN
/// sorts as larger than +inf, deterministically).
fn sort_rows_score_desc(rows: &mut [Row]) {
    rows.sort_by(|a, b| b.score.total_cmp(&a.score));
}

/// Evaluate a parsed query against a snapshot — the stateless executor.
///
/// `shard_parallel` gates the per-shard fan-out (callers that already run
/// many queries concurrently keep it off). Merging is deterministic: shard
/// partials are combined in shard order and raw tuples are re-sorted with
/// the same comparator the sequential evaluator uses, so the final rows
/// match the single-shard result exactly.
pub fn execute_query(
    snapshot: &Snapshot,
    opts: &EngineOpts,
    parsed: &Query,
    t0: std::time::Instant,
    shard_parallel: bool,
) -> Result<QueryOutput, Error> {
    // ---- Normalize (once, on the calling thread) -----------------------
    let norm = normalize(parsed)?;
    let cq = CompiledQuery::compile(norm)?;
    execute_compiled(snapshot, opts, &cq, t0.elapsed(), shard_parallel)
}

/// [`execute_query`] for an already compiled query: the per-shard stages,
/// merge, and aggregation with default request semantics (everything, in
/// `DocOrder`). `normalize_time` seeds the profile's front-end timer
/// (measured by the caller, who may have hit the compiled cache).
pub fn execute_compiled(
    snapshot: &Snapshot,
    opts: &EngineOpts,
    cq: &CompiledQuery,
    normalize_time: std::time::Duration,
    shard_parallel: bool,
) -> Result<QueryOutput, Error> {
    execute_request(
        snapshot,
        opts,
        cq,
        normalize_time,
        shard_parallel,
        &ExecParams::unrestricted(),
    )
}

/// The request-aware executor every query path funnels into: per-shard
/// DPLI → LoadArticle → GSP/extract → per-document aggregation (with the
/// `min_score` floor and top-k early termination applied inside the
/// shard), then a deterministic merge, the requested ordering, and the
/// `limit`/`offset` window.
///
/// Determinism: each row carries the canonical key of the raw tuple it
/// came from (the same `Debug` rendering the historical evaluator sorted
/// by), and the merge sorts on those keys — so for an unrestricted
/// request the rows are byte-identical (content *and* order) to the
/// pre-request engine, regardless of shard count or parallelism.
fn execute_request(
    snapshot: &Snapshot,
    opts: &EngineOpts,
    cq: &CompiledQuery,
    normalize_time: std::time::Duration,
    shard_parallel: bool,
    exec: &ExecParams,
) -> Result<QueryOutput, Error> {
    let mut profile = Profile {
        normalize: normalize_time,
        ..Profile::default()
    };
    exec.check_deadline()?;

    // ---- Aggregation context (shared read-only by every shard) ---------
    // Descriptor expansion happens once per query, not once per shard.
    let t = std::time::Instant::now();
    let agg = Aggregator::new(
        cq,
        snapshot.embeddings(),
        AggOpts {
            use_descriptors: opts.use_descriptors,
            default_threshold: opts.default_threshold,
            expansion_k: opts.expansion_k,
            expansion_min_sim: opts.expansion_min_sim,
        },
    );
    // Score cache scope: clauses whose conditions never consult the
    // corpus (similarTo / contains / matches / in dict) are cached once
    // for all documents.
    let doc_independent: Vec<bool> = cq
        .norm
        .satisfying
        .iter()
        .map(|clause| {
            clause.conds.iter().all(|wc| {
                matches!(
                    wc.cond.pred,
                    koko_lang::Pred::Contains(_)
                        | koko_lang::Pred::Mentions(_)
                        | koko_lang::Pred::Matches(_)
                        | koko_lang::Pred::SimilarTo(_)
                        | koko_lang::Pred::InDict(_)
                )
            })
        })
        .collect();
    profile.satisfying += t.elapsed();

    // ---- Per-shard: DPLI → LoadArticle → GSP/extract → aggregate -------
    // Base and delta shards fan out uniformly; only the profile records
    // which candidates came from deltas (freshly ingested documents).
    let needed = needed_vars(cq);
    // Fallible materialization: on a mapped snapshot this decodes any
    // not-yet-touched shard, surfacing file corruption as a structured
    // query error instead of a panic.
    let shards = snapshot.try_shards().map_err(Error::Snapshot)?;
    let num_base = snapshot.num_base_shards();
    let threads = if shard_parallel && shards.len() > 1 {
        0
    } else {
        1
    };
    let partials = koko_par::par_map(shards, threads, |i, shard| {
        eval_shard(
            snapshot,
            opts,
            cq,
            &needed,
            &agg,
            &doc_independent,
            shard,
            i,
            i >= num_base,
            exec,
        )
    });

    // ---- Merge (canonical tuple-key sort; byte-compatible with the
    // historical single-threaded evaluator) ------------------------------
    let mut keyed: Vec<(String, Row)> = Vec::new();
    let mut early_stopped = false;
    let mut total_matches = 0usize;
    let mut shard_explains: Vec<ShardExplain> = Vec::new();
    let mut plans: Vec<String> = Vec::new();
    for partial in partials {
        let partial = partial?;
        early_stopped |= partial.early_stopped;
        total_matches += partial.rows_found;
        keyed.extend(partial.rows);
        profile.merge(&partial.profile);
        if exec.explain {
            if plans.is_empty() {
                plans = partial.plans;
            }
            shard_explains.push(partial.explain);
        }
    }
    exec.check_deadline()?;
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    let mut rows: Vec<Row> = keyed.into_iter().map(|(_, row)| row).collect();
    if exec.order == Order::ScoreDesc {
        // Stable sort: ties keep their DocOrder position, so the
        // effective key is (score desc, doc, row).
        sort_rows_score_desc(&mut rows);
    }

    // ---- Window ---------------------------------------------------------
    // `total_matches` counts every row that survived aggregation in the
    // processed documents (including rows a ranked shard's bounded heap
    // later evicted) — exact on complete runs, a lower bound whenever a
    // shard stopped early.
    let start = exec.offset.min(rows.len());
    let end = match exec.limit {
        Some(k) => start.saturating_add(k).min(rows.len()),
        None => rows.len(),
    };
    rows.truncate(end);
    rows.drain(..start);
    // Truncation = matches may exist past the window's end. Rows the
    // offset skipped were requested away, so they don't count — a pager
    // advancing `offset` terminates when this goes false.
    let truncated = early_stopped || end < total_matches;
    let explain = exec.explain.then_some(Explain {
        plans,
        shards: shard_explains,
        remote_shards: vec![],
    });

    Ok(QueryOutput {
        rows,
        total_matches,
        truncated,
        explain,
        profile,
    })
}

/// Pulls the lazy DPLI candidate stream ([`dpli::CandidateStream`]) one
/// *document* at a time. Candidates arrive in ascending sid order and the
/// sids of one document are contiguous, so each [`DocBatcher::next_doc`]
/// call collects exactly one document's global sids into `buf` — no
/// shard-wide candidate vector ever materializes. Time spent pulling the
/// stream (the galloping intersection) is charged to the DPLI timer.
struct DocBatcher<'a> {
    cands: dpli::CandidateStream<'a>,
    /// First sid of the next document, already pulled from the stream.
    pending: Option<Sid>,
    /// Global sids of the most recently returned document.
    buf: Vec<Sid>,
    /// Distinct candidate documents seen so far; once the stream drains
    /// this is the shard's candidate-document count.
    docs_seen: usize,
}

impl DocBatcher<'_> {
    /// The next candidate document (global id), with its sids in `buf`.
    fn next_doc(&mut self, shard: &koko_index::Shard, profile: &mut Profile) -> Option<u32> {
        let t = std::time::Instant::now();
        let first = self
            .pending
            .take()
            .or_else(|| self.cands.next_sid().map(|s| shard.to_global_sid(s)));
        let Some(first) = first else {
            profile.dpli += t.elapsed();
            return None;
        };
        let doc = shard.doc_of_sid(first);
        self.buf.clear();
        self.buf.push(first);
        while let Some(local) = self.cands.next_sid() {
            let sid = shard.to_global_sid(local);
            if shard.doc_of_sid(sid) == doc {
                self.buf.push(sid);
            } else {
                self.pending = Some(sid);
                break;
            }
        }
        profile.dpli += t.elapsed();
        self.docs_seen += 1;
        Some(doc)
    }
}

/// Mutable per-shard evaluation state threaded through [`process_doc`]:
/// stage timers and counters, the aggregation caches, and the
/// accumulating results (flat rows, or the bounded top-k heap under a
/// ranked limit).
struct ShardEvalState {
    profile: Profile,
    /// (doc, clause#, lowercased value) → score; `u32::MAX` doc slot for
    /// doc-independent clauses.
    scores: std::collections::HashMap<(u32, usize, String), f64>,
    /// (doc, value) → excluded.
    excl_cache: std::collections::HashMap<(u32, String), bool>,
    rows: Vec<(String, Row)>,
    heap: BinaryHeap<HeapRow>,
    rows_found: usize,
    plans_rendered: Vec<String>,
    docs_processed: usize,
    tuples_total: usize,
}

/// With the heap at capacity, can the given document still change the
/// final top-k? Returns `true` (skip it) exactly when its score upper
/// bound falls below the heap floor, or ties the floor while every
/// canonical key the document could mint loses the tie-break. Sound in
/// *any* visit order: every key of document `d` extends `prefix`
/// (`"RawTuple { doc: d,"`), and `worst.key < prefix` implies `worst.key`
/// is lexicographically smaller than every extension of `prefix`, so a
/// tied newcomer always loses to the held row. A NaN bound compares
/// `false` on both arms and is never skipped on.
fn doc_cannot_improve(heap: &BinaryHeap<HeapRow>, bound: f64, prefix: &str) -> bool {
    heap.peek().is_some_and(|worst| {
        bound < worst.row.score || (bound == worst.row.score && worst.key.as_str() < prefix)
    })
}

/// Load, extract, dedup and aggregate one candidate document (the
/// historical per-document loop body, identical across all request
/// modes). Appends surviving rows to `st.rows`, or to the bounded heap
/// when `ranked_cap` is set.
#[allow(clippy::too_many_arguments)]
fn process_doc(
    snapshot: &Snapshot,
    opts: &EngineOpts,
    cq: &CompiledQuery,
    needed: &[(usize, String)],
    agg: &Aggregator<'_>,
    doc_independent: &[bool],
    shard: &koko_index::Shard,
    exec: &ExecParams,
    ranked_cap: Option<usize>,
    doc_id: u32,
    sids: &[Sid],
    st: &mut ShardEvalState,
) -> Result<(), Error> {
    // ---- LoadArticle from the shard store ------------------------------
    let t = std::time::Instant::now();
    let doc = if opts.store_backed {
        shard
            .load_document(doc_id)
            .map_err(|e| Error::Storage(e.to_string()))?
    } else {
        // Corpus-borrowing mode materializes the whole corpus on a
        // mapped snapshot — store-backed (the default) does not.
        snapshot
            .try_corpus()
            .map_err(Error::Snapshot)?
            .document(doc_id)
            .clone()
    };
    st.profile.load_article += t.elapsed();

    // ---- GSP + extract -------------------------------------------------
    let mut tuples: Vec<RawTuple> = Vec::new();
    let first_sid = shard.doc_first_sid(doc_id);
    for &sid in sids {
        let local = (sid - first_sid) as usize;
        let sentence = &doc.sentences[local];
        let ctx = SentCtx::new(sentence);

        let te = std::time::Instant::now();
        let domains = bind_domains(cq, &ctx);
        st.profile.extract += te.elapsed();

        let tg = std::time::Instant::now();
        let plans = gsp::plan(cq, &domains, ctx.len());
        st.profile.gsp += tg.elapsed();
        if exec.explain && st.plans_rendered.is_empty() && !plans.is_empty() {
            st.plans_rendered = render_plans(cq, &plans);
        }

        let te = std::time::Instant::now();
        let assignments = gsp::evaluate(cq, &ctx, &domains, &plans, opts.use_gsp);
        for a in assignments {
            let mut values = Vec::with_capacity(needed.len());
            let mut complete = true;
            for &(vi, ref name) in needed {
                match a[vi] {
                    Some(span) => values.push(TupleValue {
                        var: name.clone(),
                        sid,
                        span,
                        text: span_text(sentence, span),
                    }),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                tuples.push(RawTuple {
                    doc: doc_id,
                    values,
                });
            }
        }
        st.profile.extract += te.elapsed();
    }

    // ---- Canonical per-document sort + dedup ---------------------------
    // Bag semantics with per-sentence duplicates removed. Keys are
    // the historical evaluator's comparator (the tuple's `Debug`
    // rendering), computed once per tuple; duplicates are always
    // intra-document, so per-doc dedup equals the old global dedup.
    let mut keyed: Vec<(String, RawTuple)> =
        tuples.into_iter().map(|t| (format!("{t:?}"), t)).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.dedup_by(|a, b| a.0 == b.0);
    st.profile.raw_tuples += keyed.len();
    st.tuples_total += keyed.len();

    // ---- Aggregate (satisfying + excluding + min_score) ----------------
    let t = std::time::Instant::now();
    for (key, tuple) in keyed {
        if let Some(row) = aggregate_tuple(
            agg,
            cq,
            doc_independent,
            exec.min_score,
            &doc,
            tuple,
            &mut st.scores,
            &mut st.excl_cache,
            &mut st.profile.min_score_pruned,
        ) {
            st.rows_found += 1;
            match ranked_cap {
                Some(cap) => push_bounded(&mut st.heap, cap, key, row),
                None => st.rows.push((key, row)),
            }
        }
    }
    st.profile.satisfying += t.elapsed();
    st.docs_processed += 1;
    Ok(())
}

/// DPLI, article loading, GSP/extract and per-document aggregation for
/// one shard. Index lookups run in the shard's local sid space;
/// everything emitted uses global ids. Candidates are *streamed* from the
/// galloping DPLI intersection one document at a time ([`DocBatcher`]) —
/// the hot path never materializes a shard-wide candidate vector.
///
/// Top-k early termination: when the request carries a `DocOrder` limit,
/// candidate documents are visited in *result order* (the lexicographic
/// order of their decimal ids — the grouping the canonical tuple sort
/// induces, since the doc id is the key's first field), and the scan
/// stops at the first document boundary after `offset + limit` surviving
/// rows. The skipped documents are never loaded, extracted, or scored.
///
/// Ranked top-k (`ScoreDesc` + limit): the shard keeps a bounded min-heap
/// of its best `offset + limit` rows and consults two score bounds at
/// every document boundary, both computed from build-time statistics
/// before the document is touched: the shard-wide bound
/// (`bound_skipped_docs`) and — when the snapshot carries block
/// statistics — the document's block-max bound
/// (`block_bound_skipped_docs`), a per-128-doc-block refinement that
/// keeps pruning inside shards whose union vocabulary looks promising. A
/// document is skipped only when pruning is provably exact
/// ([`doc_cannot_improve`]); an infeasible shard or block bound skips its
/// documents outright without marking `early_stopped`. Returned rows are
/// byte-identical to the full-scan reference in every mode.
#[allow(clippy::too_many_arguments)]
fn eval_shard(
    snapshot: &Snapshot,
    opts: &EngineOpts,
    cq: &CompiledQuery,
    needed: &[(usize, String)],
    agg: &Aggregator<'_>,
    doc_independent: &[bool],
    shard: &koko_index::Shard,
    shard_index: usize,
    is_delta: bool,
    exec: &ExecParams,
) -> Result<ShardPartial, Error> {
    use std::fmt::Write as _;

    let mut st = ShardEvalState {
        profile: Profile::default(),
        scores: std::collections::HashMap::new(),
        excl_cache: std::collections::HashMap::new(),
        rows: Vec::new(),
        heap: BinaryHeap::new(),
        rows_found: 0,
        plans_rendered: Vec::new(),
        docs_processed: 0,
        tuples_total: 0,
    };
    let need_rows = exec.need_rows();
    let ranked_cap = exec.heap_cap();

    // ---- DPLI candidate stream over the shard index --------------------
    let t = std::time::Instant::now();
    let cands = dpli::stream(cq, shard.index());
    st.profile.dpli += t.elapsed();
    exec.check_deadline()?;
    let mut batcher = DocBatcher {
        cands,
        pending: None,
        buf: Vec::new(),
        docs_seen: 0,
    };

    // ---- Shard score bound (WAND-style, pre-extraction) ----------------
    // Derived from the compiled query + build-time shard statistics alone;
    // computed for ranked top-k pruning and for explain reports.
    let score_bound =
        (ranked_cap.is_some() || exec.explain).then(|| agg.shard_score_bound(shard.bound_stats()));
    // A bound below every possible row (infeasible clause, or under the
    // `min_score` floor) proves the shard contributes nothing: skip all
    // its documents outright. Exact — not early termination.
    let shard_infeasible = ranked_cap.is_some()
        && score_bound
            .as_ref()
            .is_some_and(|b| !b.feasible || exec.min_score.is_some_and(|floor| b.bound < floor));

    let mut early_stopped = false;
    if let Some(need) = need_rows {
        // ---- `DocOrder` + limit: result-order scan, early stop ---------
        // Result order is the *string* order of doc ids, not the stream's
        // numeric order, so this mode drains the stream up front (sids
        // only — no loads, extraction, or scoring) and sorts the document
        // list; the early stop still skips all loading past the limit.
        let mut by_doc: BTreeMap<u32, Vec<Sid>> = BTreeMap::new();
        while let Some(doc_id) = batcher.next_doc(shard, &mut st.profile) {
            by_doc.insert(doc_id, batcher.buf.clone());
        }
        let mut doc_order: Vec<u32> = by_doc.keys().copied().collect();
        doc_order.sort_by_cached_key(|d| d.to_string());
        for (di, &doc_id) in doc_order.iter().enumerate() {
            if st.rows.len() >= need {
                early_stopped = true;
                st.profile.docs_skipped = doc_order.len() - di;
                st.profile.candidates_skipped =
                    doc_order[di..].iter().map(|d| by_doc[d].len()).sum();
                break;
            }
            exec.check_deadline()?;
            process_doc(
                snapshot,
                opts,
                cq,
                needed,
                agg,
                doc_independent,
                shard,
                exec,
                None,
                doc_id,
                &by_doc[&doc_id],
                &mut st,
            )?;
        }
    } else if let Some(cap) = ranked_cap {
        if shard_infeasible || cap == 0 {
            // Nothing in this shard can clear the clause thresholds (or
            // the score floor), or the request window is empty: drain the
            // stream count-only. The infeasible-shard zero-row result is
            // exact, so it leaves `early_stopped` false.
            while batcher.next_doc(shard, &mut st.profile).is_some() {
                st.profile.docs_skipped += 1;
                st.profile.candidates_skipped += batcher.buf.len();
                if shard_infeasible {
                    st.profile.bound_skipped_docs += 1;
                } else {
                    early_stopped = true;
                }
            }
        } else {
            let shard_bound = score_bound.as_ref().map_or(1.0, |b| b.bound);
            let blocks = shard.block_stats();
            // Block bounds are computed lazily — once per block that a
            // candidate document lands in — and capped by the shard
            // bound (a block vocabulary is a subset of its shard's).
            let mut block_bounds: Vec<Option<ShardScoreBound>> =
                vec![None; blocks.map_or(0, |b| b.num_blocks())];
            let mut prefix = String::new();
            while let Some(doc_id) = batcher.next_doc(shard, &mut st.profile) {
                prefix.clear();
                let _ = write!(prefix, "RawTuple {{ doc: {doc_id},");
                // Shard-wide floor check (WAND-style).
                if st.heap.len() >= cap && doc_cannot_improve(&st.heap, shard_bound, &prefix) {
                    early_stopped = true;
                    st.profile.docs_skipped += 1;
                    st.profile.bound_skipped_docs += 1;
                    st.profile.candidates_skipped += batcher.buf.len();
                    continue;
                }
                // Block-max refinement.
                if let Some(bstats) = blocks {
                    let bi = bstats.block_of_doc(shard.to_local_doc(doc_id));
                    let b = block_bounds[bi].get_or_insert_with(|| {
                        let mut b = agg.block_score_bound(&bstats.block(bi));
                        b.bound = b.bound.min(shard_bound);
                        b
                    });
                    if !b.feasible || exec.min_score.is_some_and(|floor| b.bound < floor) {
                        // The block provably contributes no rows at all —
                        // exact, like an infeasible shard.
                        st.profile.docs_skipped += 1;
                        st.profile.block_bound_skipped_docs += 1;
                        st.profile.candidates_skipped += batcher.buf.len();
                        continue;
                    }
                    if st.heap.len() >= cap && doc_cannot_improve(&st.heap, b.bound, &prefix) {
                        early_stopped = true;
                        st.profile.docs_skipped += 1;
                        st.profile.block_bound_skipped_docs += 1;
                        st.profile.candidates_skipped += batcher.buf.len();
                        continue;
                    }
                }
                exec.check_deadline()?;
                process_doc(
                    snapshot,
                    opts,
                    cq,
                    needed,
                    agg,
                    doc_independent,
                    shard,
                    exec,
                    Some(cap),
                    doc_id,
                    &batcher.buf,
                    &mut st,
                )?;
            }
        }
    } else {
        // ---- Unrestricted: stream straight through ---------------------
        // Ascending numeric doc order — exactly the order the historical
        // materialized `BTreeMap` grouping produced.
        while let Some(doc_id) = batcher.next_doc(shard, &mut st.profile) {
            exec.check_deadline()?;
            process_doc(
                snapshot,
                opts,
                cq,
                needed,
                agg,
                doc_independent,
                shard,
                exec,
                None,
                doc_id,
                &batcher.buf,
                &mut st,
            )?;
        }
    }

    // The stream is fully drained on every path above (skips enumerate
    // documents count-only), so the candidate counters match the
    // historical materialized values exactly.
    st.profile.candidate_sentences = batcher.cands.streamed();
    if is_delta {
        st.profile.delta_candidates = batcher.cands.streamed();
    }
    st.profile.gallop_probes = batcher.cands.probes();

    // A ranked shard hands back its heap contents (order irrelevant: the
    // merge re-sorts by canonical key, then by score). The floor is only
    // meaningful when the heap actually filled.
    let heap_floor = ranked_cap.and_then(|cap| {
        (cap > 0 && st.heap.len() >= cap).then(|| st.heap.peek().map_or(0.0, |w| w.row.score))
    });
    let heap = std::mem::take(&mut st.heap);
    st.rows.extend(heap.into_iter().map(|h| (h.key, h.row)));
    debug_assert!(st.rows.len() <= st.rows_found);

    let explain = ShardExplain {
        shard: shard_index,
        is_delta,
        lookups: batcher.cands.lookups,
        candidates: batcher.cands.streamed(),
        docs: batcher.docs_seen,
        docs_processed: st.docs_processed,
        tuples: st.tuples_total,
        rows: st.rows.len(),
        min_score_pruned: st.profile.min_score_pruned,
        early_stopped,
        score_bound: score_bound.as_ref().map_or(1.0, |b| b.bound),
        heap_floor,
        bound_skipped_docs: st.profile.bound_skipped_docs,
        block_bound_skipped_docs: st.profile.block_bound_skipped_docs,
        probes: st.profile.gallop_probes,
    };
    Ok(ShardPartial {
        rows: st.rows,
        rows_found: st.rows_found,
        profile: st.profile,
        early_stopped,
        explain,
        plans: st.plans_rendered,
    })
}

/// Score one deduplicated tuple against the satisfying / excluding
/// clauses and the per-request `min_score` floor; `None` means the tuple
/// produces no row. Extracted from the historical post-merge `aggregate`
/// loop — scoring is tuple-local, so running it per document inside each
/// shard yields byte-identical rows.
#[allow(clippy::too_many_arguments)]
fn aggregate_tuple(
    agg: &Aggregator<'_>,
    cq: &CompiledQuery,
    doc_independent: &[bool],
    min_score: Option<f64>,
    doc: &Document,
    t: RawTuple,
    scores: &mut std::collections::HashMap<(u32, usize, String), f64>,
    excl_cache: &mut std::collections::HashMap<(u32, String), bool>,
    min_score_pruned: &mut usize,
) -> Option<Row> {
    let mut row_score = 1.0f64;
    // Satisfying clauses filter by their variable's value.
    for (ci, clause) in cq.norm.satisfying.iter().enumerate() {
        let Some(v) = t.values.iter().find(|v| v.var == clause.var) else {
            continue;
        };
        let cache_doc = if doc_independent[ci] { u32::MAX } else { t.doc };
        let key = (cache_doc, ci, v.text.to_lowercase());
        let score = *scores
            .entry(key)
            .or_insert_with(|| agg.score(doc, &v.text, &clause.conds));
        if score < agg.threshold(clause.threshold) {
            return None;
        }
        row_score = score;
    }
    // Excluding conditions drop tuples by any referenced value.
    for v in &t.values {
        if cq.norm.excluding.iter().any(|c| c.var == v.var) {
            let key = (t.doc, v.text.to_lowercase());
            let out = *excl_cache
                .entry(key)
                .or_insert_with(|| agg.excluded(doc, &v.text));
            if out {
                return None;
            }
        }
    }
    // Project outputs.
    let values: Vec<OutValue> = cq
        .norm
        .outputs
        .iter()
        .filter_map(|o| {
            t.values.iter().find(|v| v.var == o.name).map(|v| OutValue {
                name: o.name.clone(),
                text: v.text.clone(),
                sid: v.sid,
                start: v.span.0,
                end: v.span.1,
            })
        })
        .collect();
    if values.len() != cq.norm.outputs.len() {
        return None;
    }
    // The per-request score floor, applied below aggregation: pruned rows
    // never merge, never count toward `limit`, and never reach caches.
    if let Some(floor) = min_score {
        if row_score < floor {
            *min_score_pruned += 1;
            return None;
        }
    }
    Some(Row {
        doc: t.doc,
        values,
        score: row_score,
    })
}

/// Human-readable rendering of GSP's chosen skip plans (for [`Explain`]):
/// one line per horizontal condition, skipped atoms bracketed.
fn render_plans(cq: &CompiledQuery, plans: &[gsp::SkipPlan]) -> Vec<String> {
    plans
        .iter()
        .map(|p| {
            let atoms: Vec<String> = p
                .atoms
                .iter()
                .zip(&p.skip)
                .map(|(&vi, &skipped)| {
                    let name = cq.norm.vars[vi].name.as_str();
                    if skipped {
                        format!("[skip {name}: derived from neighbours]")
                    } else {
                        name.to_string()
                    }
                })
                .collect();
            format!("{} = {}", cq.norm.vars[p.target].name, atoms.join(" + "))
        })
        .collect()
}

/// Variables whose values must survive into tuples: outputs plus every
/// satisfying / excluding variable.
fn needed_vars(cq: &CompiledQuery) -> Vec<(usize, String)> {
    let mut names: Vec<String> = cq.norm.outputs.iter().map(|o| o.name.clone()).collect();
    for s in &cq.norm.satisfying {
        names.push(s.var.clone());
    }
    for e in &cq.norm.excluding {
        names.push(e.var.clone());
    }
    names.sort();
    names.dedup();
    names
        .into_iter()
        .filter_map(|n| cq.norm.var(&n).map(|i| (i, n)))
        .collect()
}

#[derive(Debug, Clone, PartialEq, PartialOrd)]
struct TupleValue {
    var: String,
    sid: Sid,
    span: (u32, u32),
    text: String,
}

#[derive(Debug, Clone, PartialEq)]
struct RawTuple {
    doc: u32,
    values: Vec<TupleValue>,
}

fn span_text(sentence: &koko_nlp::Sentence, span: (u32, u32)) -> String {
    if span.0 >= span.1 {
        return String::new();
    }
    sentence.span_text(span.0, span.1 - 1)
}

/// Convenience: variables used by the engine internals.
pub use koko_lang::NormQuery;

#[allow(unused)]
fn var_kind_name(kind: &NVarKind) -> &'static str {
    match kind {
        NVarKind::Node { .. } => "node",
        NVarKind::Entity { .. } => "entity",
        NVarKind::Span { .. } => "span",
        NVarKind::Subtree { .. } => "subtree",
        NVarKind::Tokens { .. } => "tokens",
        NVarKind::Elastic { .. } => "elastic",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(doc: u32, score: f64) -> Row {
        Row {
            doc,
            values: Vec::new(),
            score,
        }
    }

    #[test]
    fn score_sort_is_total_over_nan_and_infinities() {
        // Pathological scores must neither panic nor destabilize the
        // order: `total_cmp` ranks NaN > +inf > finite > -inf > -NaN.
        let mut rows = vec![
            row(0, 0.5),
            row(1, f64::NEG_INFINITY),
            row(2, f64::NAN),
            row(3, 1.0),
            row(4, f64::INFINITY),
            row(5, -f64::NAN),
            row(6, 0.5),
        ];
        sort_rows_score_desc(&mut rows);
        let docs: Vec<u32> = rows.iter().map(|r| r.doc).collect();
        // NaN first (it is `total_cmp`-greatest), then +inf, the finite
        // scores descending — the 0.5 tie keeping input order (stable
        // sort) — then -inf and -NaN last.
        assert_eq!(docs, vec![2, 4, 3, 0, 6, 1, 5]);
        // Determinism: resorting a rotation produces the same order.
        let mut rotated = rows.clone();
        rotated.rotate_left(3);
        sort_rows_score_desc(&mut rotated);
        let docs2: Vec<u32> = rotated.iter().map(|r| r.doc).collect();
        assert_eq!(docs2[..2], [2, 4]);
        assert_eq!(docs2[5..], [1, 5]);
    }

    #[test]
    fn bounded_heap_keeps_best_rows_and_breaks_ties_by_key() {
        let mut heap: BinaryHeap<HeapRow> = BinaryHeap::new();
        push_bounded(&mut heap, 2, "a".into(), row(0, 0.3));
        push_bounded(&mut heap, 2, "b".into(), row(0, 0.9));
        // Floor is the worst held row.
        assert_eq!(heap.peek().unwrap().row.score, 0.3);
        // Better row evicts the floor.
        push_bounded(&mut heap, 2, "c".into(), row(1, 0.5));
        assert_eq!(heap.peek().unwrap().row.score, 0.5);
        // A score tie loses to the incumbent (larger key = worse), so
        // later documents can never displace equal-scored earlier rows.
        push_bounded(&mut heap, 2, "d".into(), row(2, 0.5));
        let mut kept: Vec<String> = heap.into_iter().map(|h| h.key).collect();
        kept.sort();
        assert_eq!(kept, vec!["b", "c"]);
    }

    #[test]
    fn bounded_heap_is_nan_safe() {
        let mut heap: BinaryHeap<HeapRow> = BinaryHeap::new();
        for (i, s) in [f64::NAN, 1.0, f64::INFINITY, 0.0].into_iter().enumerate() {
            push_bounded(&mut heap, 2, format!("k{i}"), row(i as u32, s));
        }
        // NaN is `total_cmp`-greatest, so it survives alongside +inf.
        let mut kept: Vec<String> = heap.into_iter().map(|h| h.key).collect();
        kept.sort();
        assert_eq!(kept, vec!["k0", "k2"]);
    }
}
