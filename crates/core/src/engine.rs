//! The KOKO engine: Figure 2's full workflow — preprocessing (parse text &
//! build per-shard indices), then per query: Normalize → per-shard
//! {DPLI → LoadArticle → GSP/extract} → merge → Aggregate.
//!
//! The engine is split into immutable [`Snapshot`] generations published
//! through a [`LiveIndex`] (shards + embeddings, `Send + Sync`, shared by
//! `Arc`) and a stateless executor ([`execute_query`]). [`Koko`] is the
//! user-facing façade tying one live index to one [`EngineOpts`]; clones
//! share the live index, so an [`Koko::add_texts`] on any clone is
//! visible to queries on every other. The per-shard stage fans out over
//! worker threads when `opts.parallel` is set; partial results and
//! [`Profile`] timers merge deterministically, so sharded output is
//! byte-identical (rows, order, scores) to the single-shard sequential
//! evaluator — and, because results are shard-layout independent, a
//! corpus ingested incrementally (any split, compacted or not) answers
//! byte-identically to a one-shot batch build.

use crate::aggregate::{AggOpts, Aggregator};
use crate::binder::{bind_domains, CompiledQuery, SentCtx};
use crate::cache::{CacheStats, CachedCompile, CachedResult, QueryCaches};
use crate::error::Error;
use crate::live::LiveIndex;
use crate::profile::Profile;
use crate::snapshot::Snapshot;
use crate::{dpli, gsp};
use koko_embed::Embeddings;
use koko_lang::{normalize, parse_query, NVarKind, Query};
use koko_nlp::{Document, Sid};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineOpts {
    /// Use the Generate-Skip-Plan evaluator (§4.3). `false` selects the
    /// naive nested-loop evaluator (`KOKO&NOGSP`, Table 1).
    pub use_gsp: bool,
    /// Load candidate articles from the document store (paying the real
    /// `LoadArticle` decode cost of Table 2) instead of borrowing the
    /// in-memory corpus.
    pub store_backed: bool,
    /// Expand descriptors with paraphrase embeddings (Figure 5 ablation).
    pub use_descriptors: bool,
    /// Threshold for satisfying clauses that omit `with threshold`.
    pub default_threshold: f64,
    /// Descriptor expansion cap and per-word similarity floor.
    pub expansion_k: usize,
    pub expansion_min_sim: f64,
    /// Number of index/storage shards to partition the corpus into.
    /// `0` (the default) means one shard per available core. Results are
    /// independent of the shard count; only parallelism changes.
    pub num_shards: usize,
    /// Run ingest, shard builds, the per-shard query stage, and
    /// `query_batch` on worker threads. `false` forces fully sequential
    /// execution regardless of the shard count.
    pub parallel: bool,
    /// Cache parse → normalize → compile per distinct query text, so
    /// repeat traffic skips the whole front end. On by default;
    /// compilation is deterministic so this never changes results.
    pub compiled_cache: bool,
    /// Capacity of the bounded LRU result cache, in entries. `0` (the
    /// default) disables it. A hit serves the previously computed rows and
    /// skips DPLI / LoadArticle / GSP / extract / aggregation entirely;
    /// hits and misses are reported in [`Profile`]. The cache key includes
    /// the normalized query and every result-relevant option, so cached
    /// rows are always byte-identical to a fresh evaluation.
    pub result_cache: usize,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            use_gsp: true,
            store_backed: true,
            use_descriptors: true,
            default_threshold: 0.5,
            expansion_k: 120,
            expansion_min_sim: 0.55,
            num_shards: 0,
            parallel: true,
            compiled_cache: true,
            result_cache: 0,
        }
    }
}

impl EngineOpts {
    /// The subset of options that can change query *results* (as opposed
    /// to wall-clock), rendered canonically — part of the result-cache key
    /// so mutating `koko.opts` between queries can never serve stale rows.
    fn result_fingerprint(&self) -> String {
        format!(
            "gsp={},store={},desc={},thr={},k={},sim={}",
            self.use_gsp,
            self.store_backed,
            self.use_descriptors,
            self.default_threshold,
            self.expansion_k,
            self.expansion_min_sim,
        )
    }
}

/// One output value in a result row.
#[derive(Debug, Clone, PartialEq)]
pub struct OutValue {
    pub name: String,
    pub text: String,
    pub sid: Sid,
    /// Half-open token span within the sentence.
    pub start: u32,
    pub end: u32,
}

/// One result tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Document index in the corpus.
    pub doc: u32,
    pub values: Vec<OutValue>,
    /// Aggregated satisfying-clause score of the row's first scored
    /// variable (1.0 when the query has no satisfying clause).
    pub score: f64,
}

/// Query result: rows plus the per-stage profile.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    pub rows: Vec<Row>,
    pub profile: Profile,
}

impl QueryOutput {
    /// Distinct values of one output variable (case-preserving, first
    /// occurrence wins), e.g. the extracted cafe names.
    pub fn distinct(&self, var: &str) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for v in &row.values {
                if v.name == var && seen.insert(v.text.to_lowercase()) {
                    out.push(v.text.clone());
                }
            }
        }
        out
    }

    /// Distinct `(doc, value)` pairs for one variable — the unit the
    /// extraction experiments score against ground truth.
    pub fn doc_values(&self, var: &str) -> Vec<(u32, String)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for v in &row.values {
                if v.name == var {
                    let key = (row.doc, v.text.to_lowercase());
                    if seen.insert(key.clone()) {
                        out.push((row.doc, v.text.clone()));
                    }
                }
            }
        }
        out
    }
}

/// What one [`Koko::add_texts`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddReport {
    /// Documents ingested by this call.
    pub added: usize,
    /// Total documents in the published snapshot.
    pub documents: usize,
    /// Epoch of the published snapshot (unchanged if `added == 0`).
    pub epoch: u64,
    /// Generation of the published snapshot (adds never change it).
    pub generation: u64,
    /// Delta shards currently awaiting compaction.
    pub delta_shards: usize,
    /// Documents living in those delta shards.
    pub delta_documents: usize,
}

/// What one [`Koko::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Delta shards merged into the base (0 = the call was a no-op).
    pub merged_deltas: usize,
    /// Base shards after compaction.
    pub shards: usize,
    /// Epoch of the published snapshot (unchanged on a no-op).
    pub epoch: u64,
    /// Generation of the published snapshot (+1 unless a no-op).
    pub generation: u64,
}

/// The KOKO system: a [`LiveIndex`] of immutable [`Snapshot`] generations
/// plus the options queries run with. Cheap to clone; clones share the
/// live index and the caches, so updates and cache hits propagate across
/// every clone (server worker threads rely on this).
#[derive(Clone)]
pub struct Koko {
    live: Arc<LiveIndex>,
    /// Query caches (compiled + results). Shared by every clone, so server
    /// worker threads pool their hits; replaced wholesale when options or
    /// embeddings change. Live updates do *not* replace it: the result
    /// cache is epoch-keyed, so publishing a new snapshot strands the old
    /// epoch's rows (they age out of the LRU) while compiled queries
    /// survive.
    caches: Arc<QueryCaches>,
    pub opts: EngineOpts,
}

impl Koko {
    /// Parse raw documents (concurrently, when the default options allow)
    /// and build every shard index — Figure 2's preprocessing box.
    ///
    /// ```
    /// use koko_core::Koko;
    ///
    /// let koko = Koko::from_texts(&["Anna ate cake.", "The cafe was busy."]);
    /// assert_eq!(koko.num_documents(), 2);
    /// ```
    pub fn from_texts<S: AsRef<str> + Sync>(texts: &[S]) -> Koko {
        Koko::from_texts_with_opts(texts, EngineOpts::default())
    }

    /// [`Koko::from_texts`] with explicit options (parallelism and shard
    /// count take effect during ingest, not just at query time).
    pub fn from_texts_with_opts<S: AsRef<str> + Sync>(texts: &[S], opts: EngineOpts) -> Koko {
        let pipeline = koko_nlp::Pipeline::new();
        let corpus = if opts.parallel {
            pipeline.parse_corpus_parallel(texts, 0)
        } else {
            pipeline.parse_corpus(texts)
        };
        Koko::from_corpus_with_opts(corpus, opts)
    }

    /// Build from an already parsed corpus with default options.
    pub fn from_corpus(corpus: koko_nlp::Corpus) -> Koko {
        Koko::from_corpus_with_opts(corpus, EngineOpts::default())
    }

    /// Build from an already parsed corpus with explicit options.
    pub fn from_corpus_with_opts(corpus: koko_nlp::Corpus, opts: EngineOpts) -> Koko {
        Koko::from_snapshot(
            Snapshot::build(corpus, opts.num_shards, opts.parallel),
            opts,
        )
    }

    /// Wrap an existing snapshot (e.g. one returned by [`Snapshot::load`])
    /// without rebuilding anything. The snapshot's shard layout wins:
    /// `opts.num_shards` is ignored here, unlike [`Koko::with_opts`].
    pub fn from_snapshot(snapshot: Snapshot, opts: EngineOpts) -> Koko {
        Koko {
            live: Arc::new(LiveIndex::new(snapshot)),
            caches: Arc::new(QueryCaches::new(opts.compiled_cache, opts.result_cache)),
            opts,
        }
    }

    /// Persist the engine's current snapshot to a `.koko` file — the
    /// "build" half of the build-once / query-many workflow. Returns the
    /// file size in bytes. Snapshots saved after incremental adds keep
    /// their generation and base/delta split, and reload to answer
    /// identically.
    pub fn save(&self, path: &std::path::Path) -> Result<u64, Error> {
        self.snapshot().save(path, self.opts.parallel)
    }

    /// Open a `.koko` snapshot file with default options — the "query"
    /// half of the build-once / query-many workflow. Queries against the
    /// loaded engine return byte-identical rows to an engine freshly built
    /// from the same text.
    ///
    /// ```
    /// use koko_core::Koko;
    ///
    /// let built = Koko::from_texts(&["Anna ate some delicious cheesecake."]);
    /// let path = std::env::temp_dir().join("doctest_open.koko");
    /// built.save(&path).unwrap();
    ///
    /// let loaded = Koko::open(&path).unwrap();
    /// let q = koko_lang::queries::EXAMPLE_2_1;
    /// assert_eq!(loaded.query(q).unwrap().rows, built.query(q).unwrap().rows);
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn open(path: &std::path::Path) -> Result<Koko, Error> {
        Koko::open_with_opts(path, EngineOpts::default())
    }

    /// [`Koko::open`] with explicit options. The shard layout is read from
    /// the file (`opts.num_shards` does not trigger a rebuild); `parallel`
    /// gates both the load fan-out and later query execution.
    pub fn open_with_opts(path: &std::path::Path, opts: EngineOpts) -> Result<Koko, Error> {
        Ok(Koko::from_snapshot(
            Snapshot::load(path, opts.parallel)?,
            opts,
        ))
    }

    /// Replace the embedding model (e.g. with a domain ontology merged in).
    /// The returned engine publishes through a fresh live index, so
    /// existing clones keep their embeddings; caches reset because new
    /// embeddings can change descriptor scores.
    pub fn with_embeddings(self, embed: Embeddings) -> Koko {
        Koko {
            live: Arc::new(LiveIndex::new(self.snapshot().with_embeddings(embed))),
            caches: Arc::new(QueryCaches::new(
                self.opts.compiled_cache,
                self.opts.result_cache,
            )),
            opts: self.opts,
        }
    }

    /// Replace the options. If the requested shard count differs from the
    /// current base layout, the shards are rebuilt (compacting any deltas
    /// along the way); embeddings carry over. Like
    /// [`Koko::with_embeddings`], the returned engine has its own live
    /// index and fresh caches.
    pub fn with_opts(self, opts: EngineOpts) -> Koko {
        let snap = self.snapshot();
        let want = koko_par::resolve_threads(opts.num_shards, snap.corpus().num_documents());
        let live = if want != snap.num_base_shards() || snap.num_delta_shards() > 0 {
            LiveIndex::new(snap.compacted(opts.num_shards, opts.parallel))
        } else {
            // Layout already matches: the new live index republishes the
            // pinned snapshot as-is (shared, same epoch — safe because
            // the caches below are fresh).
            LiveIndex::new(snap)
        };
        Koko {
            live: Arc::new(live),
            caches: Arc::new(QueryCaches::new(opts.compiled_cache, opts.result_cache)),
            opts,
        }
    }

    /// Parse `texts` through the full NLP pipeline and publish them as new
    /// documents — incremental ingest. The documents join the index as an
    /// append-only delta shard (or extend the open one); concurrent
    /// queries keep reading the snapshot they started on and observe the
    /// new epoch on their next call. Writers serialize; readers are never
    /// blocked beyond the publication pointer swap.
    ///
    /// Equivalence guarantee: however a corpus is split across
    /// `add_texts` calls — compacted or not — every query answers
    /// byte-identically (rows, order, scores) to a one-shot
    /// [`Koko::from_texts`] build of the concatenated corpus.
    ///
    /// ```
    /// use koko_core::Koko;
    ///
    /// let koko = Koko::from_texts(&["Anna ate cake."]);
    /// let report = koko.add_texts(&["The cafe was busy."]);
    /// assert_eq!(report.added, 1);
    /// assert_eq!(koko.num_documents(), 2);
    /// ```
    pub fn add_texts<S: AsRef<str> + Sync>(&self, texts: &[S]) -> AddReport {
        let guard = self.live.write_lock();
        let snap = self.live.current();
        let first = snap.corpus().num_documents() as u32;
        let threads = if self.opts.parallel { 0 } else { 1 };
        let docs = koko_nlp::Pipeline::new().parse_documents(texts, first, threads);
        let added = docs.len();
        let published = if added == 0 {
            snap
        } else {
            guard.publish(snap.with_added_documents(docs))
        };
        drop(guard);
        AddReport {
            added,
            documents: published.corpus().num_documents(),
            epoch: published.epoch(),
            generation: published.generation(),
            delta_shards: published.num_delta_shards(),
            delta_documents: published.num_delta_documents(),
        }
    }

    /// Merge every delta shard into balanced base shards (a full shard
    /// rebuild via `plan_shards`) and publish the result. A no-op when no
    /// deltas exist. Readers mid-query are unaffected; the compacted
    /// layout is exactly what a batch build of the current corpus with
    /// the same shard count produces.
    pub fn compact(&self) -> CompactReport {
        let guard = self.live.write_lock();
        let snap = self.live.current();
        let merged_deltas = snap.num_delta_shards();
        // With `num_shards` unset (0 = auto), preserve the snapshot's own
        // base layout rather than re-sharding to the machine's core count
        // — compacting a loaded 2-shard snapshot must not silently turn
        // it into an N-shard one ("snapshots keep their layout").
        let target_shards = if self.opts.num_shards == 0 {
            snap.num_base_shards()
        } else {
            self.opts.num_shards
        };
        let published = if merged_deltas == 0 {
            snap
        } else {
            guard.publish(snap.compacted(target_shards, self.opts.parallel))
        };
        drop(guard);
        CompactReport {
            merged_deltas,
            shards: published.num_shards(),
            epoch: published.epoch(),
            generation: published.generation(),
        }
    }

    /// The currently published snapshot (shards + embeddings). The
    /// returned `Arc` pins that generation: it stays valid and immutable
    /// across concurrent [`Koko::add_texts`] / [`Koko::compact`] calls,
    /// which publish successors instead of mutating it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.live.current()
    }

    /// Epoch of the currently published snapshot (changes on every
    /// successful update; result-cache entries are keyed by it).
    pub fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// Generation of the currently published snapshot (base rebuilds).
    pub fn generation(&self) -> u64 {
        self.snapshot().generation()
    }

    /// Documents in the currently published snapshot.
    pub fn num_documents(&self) -> usize {
        self.snapshot().corpus().num_documents()
    }

    /// Shards (base + delta) in the currently published snapshot.
    pub fn num_shards(&self) -> usize {
        self.snapshot().num_shards()
    }

    /// Delta shards awaiting compaction in the current snapshot.
    pub fn num_delta_shards(&self) -> usize {
        self.snapshot().num_delta_shards()
    }

    /// Parse, normalize and evaluate a KOKO query (see
    /// `docs/QUERYLANG.md` for the language).
    ///
    /// ```
    /// use koko_core::Koko;
    ///
    /// let koko = Koko::from_texts(&["Anna ate some delicious cheesecake."]);
    /// let out = koko.query(koko_lang::queries::EXAMPLE_2_1).unwrap();
    /// assert_eq!(out.rows[0].values[0].text, "cheesecake");
    /// ```
    pub fn query(&self, text: &str) -> Result<QueryOutput, Error> {
        self.query_inner(text, true, self.opts.parallel)
    }

    /// [`Koko::query`] with an explicit cache switch: `use_cache = false`
    /// bypasses both the compiled-query cache and the result cache for
    /// this call only (the caches are neither read nor written, and no
    /// hit/miss is counted). Results are byte-identical either way.
    pub fn query_with_cache(&self, text: &str, use_cache: bool) -> Result<QueryOutput, Error> {
        self.query_inner(text, use_cache, self.opts.parallel)
    }

    /// Evaluate an already parsed query (`t0` anchors the Normalize
    /// timer). Bypasses both caches — callers holding an AST have already
    /// paid the front-end cost, and the raw-text key is gone.
    pub fn query_ast(&self, parsed: &Query, t0: std::time::Instant) -> Result<QueryOutput, Error> {
        let snap = self.live.current();
        execute_query(&snap, &self.opts, parsed, t0, self.opts.parallel)
    }

    /// Cumulative cache hit/miss counters across all clones of this
    /// engine (server workers share them).
    pub fn cache_stats(&self) -> CacheStats {
        self.caches.stats()
    }

    /// The full query path with both caches: compiled-query lookup (or
    /// front-end run + fill), then result-cache lookup (or evaluation +
    /// fill). `shard_parallel` gates the per-shard fan-out.
    fn query_inner(
        &self,
        text: &str,
        use_cache: bool,
        shard_parallel: bool,
    ) -> Result<QueryOutput, Error> {
        let t0 = std::time::Instant::now();
        // Pin the current generation: the whole query — including the
        // result-cache key — runs against this one snapshot, so a
        // concurrent add/compact can neither tear the read nor leak rows
        // across epochs.
        let snap = self.live.current();

        // ---- Front end: compiled-query cache ---------------------------
        let use_compiled = use_cache && self.opts.compiled_cache;
        let mut compiled_hit = false;
        let compiled: Arc<CachedCompile> = match use_compiled
            .then(|| self.caches.get_compiled(text))
            .flatten()
        {
            Some(hit) => {
                compiled_hit = true;
                hit
            }
            None => {
                let parsed = parse_query(text)?;
                let norm = normalize(&parsed)?;
                let cq = CompiledQuery::compile(norm)?;
                let norm_key = format!("{:?}", cq.norm);
                let entry = Arc::new(CachedCompile { cq, norm_key });
                if use_compiled {
                    self.caches.store_compiled(text, Arc::clone(&entry));
                }
                entry
            }
        };
        let normalize_time = t0.elapsed();
        let count_compiled = |profile: &mut Profile| {
            if use_compiled {
                profile.compiled_cache_hits = usize::from(compiled_hit);
                profile.compiled_cache_misses = usize::from(!compiled_hit);
            }
        };

        // ---- Result cache (epoch-keyed) --------------------------------
        // The snapshot epoch leads the key: any published update (adds,
        // compaction, new embeddings) strands every older entry, and two
        // engines sharing one cache can never serve each other's rows.
        let use_results = use_cache && self.caches.results_enabled();
        let result_key = if use_results {
            format!(
                "e{}|{}|{}",
                snap.epoch(),
                self.opts.result_fingerprint(),
                compiled.norm_key
            )
        } else {
            String::new()
        };
        if use_results {
            if let Some(hit) = self.caches.get_result(&result_key) {
                // Every evaluation stage is skipped: only the front-end
                // timer and the counters of the producing run survive.
                let mut profile = Profile {
                    normalize: normalize_time,
                    candidate_sentences: hit.candidate_sentences,
                    delta_candidates: hit.delta_candidates,
                    raw_tuples: hit.raw_tuples,
                    result_cache_hits: 1,
                    ..Profile::default()
                };
                count_compiled(&mut profile);
                return Ok(QueryOutput {
                    rows: hit.rows.as_ref().clone(),
                    profile,
                });
            }
        }

        // ---- Evaluate --------------------------------------------------
        let mut out = execute_compiled(
            &snap,
            &self.opts,
            &compiled.cq,
            normalize_time,
            shard_parallel,
        )?;
        count_compiled(&mut out.profile);
        if use_results {
            out.profile.result_cache_misses = 1;
            self.caches.store_result(
                result_key,
                CachedResult {
                    rows: Arc::new(out.rows.clone()),
                    candidate_sentences: out.profile.candidate_sentences,
                    delta_candidates: out.profile.delta_candidates,
                    raw_tuples: out.profile.raw_tuples,
                },
            );
        }
        Ok(out)
    }

    /// Evaluate many queries against the shared snapshot. With
    /// `opts.parallel` the queries fan out over worker threads (each query
    /// then runs its shard stage sequentially, so thread usage stays
    /// bounded by the batch width); results keep input order and are
    /// identical to calling [`Koko::query`] per query. The batch goes
    /// through the same caches as single queries.
    pub fn query_batch(&self, queries: &[&str]) -> Vec<Result<QueryOutput, Error>> {
        // Shard-stage parallelism off: the batch is the fan-out unit.
        let run = |text: &str| self.query_inner(text, true, false);
        if self.opts.parallel && queries.len() > 1 {
            koko_par::par_map(queries, 0, |_, text| run(text))
        } else {
            queries.iter().map(|text| run(text)).collect()
        }
    }
}

/// Partial result of evaluating one shard: raw tuples (global ids), the
/// articles decoded along the way, and the shard's stage timers.
struct ShardPartial {
    tuples: Vec<RawTuple>,
    loaded: BTreeMap<u32, Document>,
    profile: Profile,
}

/// Evaluate a parsed query against a snapshot — the stateless executor.
///
/// `shard_parallel` gates the per-shard fan-out (callers that already run
/// many queries concurrently keep it off). Merging is deterministic: shard
/// partials are combined in shard order and raw tuples are re-sorted with
/// the same comparator the sequential evaluator uses, so the final rows
/// match the single-shard result exactly.
pub fn execute_query(
    snapshot: &Snapshot,
    opts: &EngineOpts,
    parsed: &Query,
    t0: std::time::Instant,
    shard_parallel: bool,
) -> Result<QueryOutput, Error> {
    // ---- Normalize (once, on the calling thread) -----------------------
    let norm = normalize(parsed)?;
    let cq = CompiledQuery::compile(norm)?;
    execute_compiled(snapshot, opts, &cq, t0.elapsed(), shard_parallel)
}

/// [`execute_query`] for an already compiled query: the per-shard stages,
/// merge, and aggregation. `normalize_time` seeds the profile's front-end
/// timer (measured by the caller, who may have hit the compiled cache).
pub fn execute_compiled(
    snapshot: &Snapshot,
    opts: &EngineOpts,
    cq: &CompiledQuery,
    normalize_time: std::time::Duration,
    shard_parallel: bool,
) -> Result<QueryOutput, Error> {
    let mut profile = Profile {
        normalize: normalize_time,
        ..Profile::default()
    };

    // ---- Per-shard: DPLI → LoadArticle → GSP/extract -------------------
    // Base and delta shards fan out uniformly; only the profile records
    // which candidates came from deltas (freshly ingested documents).
    let needed = needed_vars(cq);
    let shards = snapshot.shards();
    let num_base = snapshot.num_base_shards();
    let threads = if shard_parallel && shards.len() > 1 {
        0
    } else {
        1
    };
    let partials = koko_par::par_map(shards, threads, |i, shard| {
        eval_shard(snapshot, opts, cq, &needed, shard, i >= num_base)
    });

    // ---- Merge (shard order, then the sequential evaluator's sort) -----
    let mut tuples: Vec<RawTuple> = Vec::new();
    let mut loaded: BTreeMap<u32, Document> = BTreeMap::new();
    for partial in partials {
        let partial = partial?;
        tuples.extend(partial.tuples);
        loaded.extend(partial.loaded);
        profile.merge(&partial.profile);
    }
    // Bag semantics with per-sentence duplicates removed. The comparator
    // must stay identical to the historical single-threaded evaluator so
    // sharded row order is byte-compatible.
    tuples.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    tuples.dedup();
    profile.raw_tuples = tuples.len();

    // ---- Aggregate (satisfying + excluding) ----------------------------
    let t = std::time::Instant::now();
    let rows = aggregate(snapshot.embeddings(), opts, cq, &loaded, tuples);
    profile.satisfying = t.elapsed();

    Ok(QueryOutput { rows, profile })
}

/// DPLI, article loading and GSP/extract for one shard. Index lookups run
/// in the shard's local sid space; everything emitted uses global ids.
fn eval_shard(
    snapshot: &Snapshot,
    opts: &EngineOpts,
    cq: &CompiledQuery,
    needed: &[(usize, String)],
    shard: &koko_index::Shard,
    is_delta: bool,
) -> Result<ShardPartial, Error> {
    let mut profile = Profile::default();
    let corpus = snapshot.corpus();

    // ---- DPLI over the shard index -------------------------------------
    let t = std::time::Instant::now();
    let dpli_result = dpli::run(cq, shard.index());
    profile.dpli = t.elapsed();
    profile.candidate_sentences = dpli_result.candidate_sids.len();
    if is_delta {
        profile.delta_candidates = dpli_result.candidate_sids.len();
    }

    // ---- LoadArticle from the shard store ------------------------------
    let t = std::time::Instant::now();
    let mut by_doc: BTreeMap<u32, Vec<Sid>> = BTreeMap::new();
    for &local_sid in &dpli_result.candidate_sids {
        let sid = shard.to_global_sid(local_sid);
        by_doc.entry(corpus.doc_of(sid)).or_default().push(sid);
    }
    let mut loaded: BTreeMap<u32, Document> = BTreeMap::new();
    for &doc_id in by_doc.keys() {
        let doc = if opts.store_backed {
            shard
                .load_document(doc_id)
                .map_err(|e| Error::Storage(e.to_string()))?
        } else {
            corpus.document(doc_id).clone()
        };
        loaded.insert(doc_id, doc);
    }
    profile.load_article = t.elapsed();

    // ---- GSP + extract --------------------------------------------------
    let mut tuples: Vec<RawTuple> = Vec::new();
    for (&doc_id, sids) in &by_doc {
        let doc = &loaded[&doc_id];
        let first_sid = corpus.doc_sids(doc_id).start;
        for &sid in sids {
            let local = (sid - first_sid) as usize;
            let sentence = &doc.sentences[local];
            let ctx = SentCtx::new(sentence);

            let te = std::time::Instant::now();
            let domains = bind_domains(cq, &ctx);
            profile.extract += te.elapsed();

            let tg = std::time::Instant::now();
            let plans = gsp::plan(cq, &domains, ctx.len());
            profile.gsp += tg.elapsed();

            let te = std::time::Instant::now();
            let assignments = gsp::evaluate(cq, &ctx, &domains, &plans, opts.use_gsp);
            for a in assignments {
                let mut values = Vec::with_capacity(needed.len());
                let mut complete = true;
                for &(vi, ref name) in needed {
                    match a[vi] {
                        Some(span) => values.push(TupleValue {
                            var: name.clone(),
                            sid,
                            span,
                            text: span_text(sentence, span),
                        }),
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if complete {
                    tuples.push(RawTuple {
                        doc: doc_id,
                        values,
                    });
                }
            }
            profile.extract += te.elapsed();
        }
    }

    Ok(ShardPartial {
        tuples,
        loaded,
        profile,
    })
}

/// Variables whose values must survive into tuples: outputs plus every
/// satisfying / excluding variable.
fn needed_vars(cq: &CompiledQuery) -> Vec<(usize, String)> {
    let mut names: Vec<String> = cq.norm.outputs.iter().map(|o| o.name.clone()).collect();
    for s in &cq.norm.satisfying {
        names.push(s.var.clone());
    }
    for e in &cq.norm.excluding {
        names.push(e.var.clone());
    }
    names.sort();
    names.dedup();
    names
        .into_iter()
        .filter_map(|n| cq.norm.var(&n).map(|i| (i, n)))
        .collect()
}

fn aggregate(
    embed: &Embeddings,
    opts: &EngineOpts,
    cq: &CompiledQuery,
    loaded: &BTreeMap<u32, Document>,
    tuples: Vec<RawTuple>,
) -> Vec<Row> {
    let agg = Aggregator::new(
        cq,
        embed,
        AggOpts {
            use_descriptors: opts.use_descriptors,
            default_threshold: opts.default_threshold,
            expansion_k: opts.expansion_k,
            expansion_min_sim: opts.expansion_min_sim,
        },
    );
    // Score cache: (doc, clause#, lowercased value) → score. Clauses
    // whose conditions never consult the corpus (similarTo / contains /
    // matches / in dict) are cached once for all documents.
    let doc_independent: Vec<bool> = cq
        .norm
        .satisfying
        .iter()
        .map(|clause| {
            clause.conds.iter().all(|wc| {
                matches!(
                    wc.cond.pred,
                    koko_lang::Pred::Contains(_)
                        | koko_lang::Pred::Mentions(_)
                        | koko_lang::Pred::Matches(_)
                        | koko_lang::Pred::SimilarTo(_)
                        | koko_lang::Pred::InDict(_)
                )
            })
        })
        .collect();
    let mut scores: std::collections::HashMap<(u32, usize, String), f64> =
        std::collections::HashMap::new();
    let mut excl_cache: std::collections::HashMap<(u32, String), bool> =
        std::collections::HashMap::new();

    let mut rows = Vec::new();
    'tuple: for t in tuples {
        let doc = &loaded[&t.doc];
        let mut row_score = 1.0f64;
        // Satisfying clauses filter by their variable's value.
        for (ci, clause) in cq.norm.satisfying.iter().enumerate() {
            let Some(v) = t.values.iter().find(|v| v.var == clause.var) else {
                continue;
            };
            let cache_doc = if doc_independent[ci] { u32::MAX } else { t.doc };
            let key = (cache_doc, ci, v.text.to_lowercase());
            let score = *scores
                .entry(key)
                .or_insert_with(|| agg.score(doc, &v.text, &clause.conds));
            if score < agg.threshold(clause.threshold) {
                continue 'tuple;
            }
            row_score = score;
        }
        // Excluding conditions drop tuples by any referenced value.
        for v in &t.values {
            if cq.norm.excluding.iter().any(|c| c.var == v.var) {
                let key = (t.doc, v.text.to_lowercase());
                let out = *excl_cache
                    .entry(key)
                    .or_insert_with(|| agg.excluded(doc, &v.text));
                if out {
                    continue 'tuple;
                }
            }
        }
        // Project outputs.
        let values: Vec<OutValue> = cq
            .norm
            .outputs
            .iter()
            .filter_map(|o| {
                t.values.iter().find(|v| v.var == o.name).map(|v| OutValue {
                    name: o.name.clone(),
                    text: v.text.clone(),
                    sid: v.sid,
                    start: v.span.0,
                    end: v.span.1,
                })
            })
            .collect();
        if values.len() == cq.norm.outputs.len() {
            rows.push(Row {
                doc: t.doc,
                values,
                score: row_score,
            });
        }
    }
    rows
}

#[derive(Debug, Clone, PartialEq, PartialOrd)]
struct TupleValue {
    var: String,
    sid: Sid,
    span: (u32, u32),
    text: String,
}

#[derive(Debug, Clone, PartialEq)]
struct RawTuple {
    doc: u32,
    values: Vec<TupleValue>,
}

fn span_text(sentence: &koko_nlp::Sentence, span: (u32, u32)) -> String {
    if span.0 >= span.1 {
        return String::new();
    }
    sentence.span_text(span.0, span.1 - 1)
}

/// Convenience: variables used by the engine internals.
pub use koko_lang::NormQuery;

#[allow(unused)]
fn var_kind_name(kind: &NVarKind) -> &'static str {
    match kind {
        NVarKind::Node { .. } => "node",
        NVarKind::Entity { .. } => "entity",
        NVarKind::Span { .. } => "span",
        NVarKind::Subtree { .. } => "subtree",
        NVarKind::Tokens { .. } => "tokens",
        NVarKind::Elastic { .. } => "elastic",
    }
}
