//! The KOKO engine: Figure 2's full workflow — preprocessing (parse text &
//! build indices), then per query: Normalize → DPLI → LoadArticle →
//! GSP/extract → Aggregate.

use crate::aggregate::{AggOpts, Aggregator};
use crate::binder::{bind_domains, CompiledQuery, SentCtx};
use crate::error::Error;
use crate::profile::Profile;
use crate::{dpli, gsp};
use koko_embed::Embeddings;
use koko_index::KokoIndex;
use koko_lang::{normalize, parse_query, NVarKind, Query};
use koko_nlp::{Corpus, Document, Pipeline, Sid};
use koko_storage::{Db, DocStore};
use std::collections::BTreeMap;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineOpts {
    /// Use the Generate-Skip-Plan evaluator (§4.3). `false` selects the
    /// naive nested-loop evaluator (`KOKO&NOGSP`, Table 1).
    pub use_gsp: bool,
    /// Load candidate articles from the document store (paying the real
    /// `LoadArticle` decode cost of Table 2) instead of borrowing the
    /// in-memory corpus.
    pub store_backed: bool,
    /// Expand descriptors with paraphrase embeddings (Figure 5 ablation).
    pub use_descriptors: bool,
    /// Threshold for satisfying clauses that omit `with threshold`.
    pub default_threshold: f64,
    /// Descriptor expansion cap and per-word similarity floor.
    pub expansion_k: usize,
    pub expansion_min_sim: f64,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            use_gsp: true,
            store_backed: true,
            use_descriptors: true,
            default_threshold: 0.5,
            expansion_k: 120,
            expansion_min_sim: 0.55,
        }
    }
}

/// One output value in a result row.
#[derive(Debug, Clone, PartialEq)]
pub struct OutValue {
    pub name: String,
    pub text: String,
    pub sid: Sid,
    /// Half-open token span within the sentence.
    pub start: u32,
    pub end: u32,
}

/// One result tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Document index in the corpus.
    pub doc: u32,
    pub values: Vec<OutValue>,
    /// Aggregated satisfying-clause score of the row's first scored
    /// variable (1.0 when the query has no satisfying clause).
    pub score: f64,
}

/// Query result: rows plus the per-stage profile.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    pub rows: Vec<Row>,
    pub profile: Profile,
}

impl QueryOutput {
    /// Distinct values of one output variable (case-preserving, first
    /// occurrence wins), e.g. the extracted cafe names.
    pub fn distinct(&self, var: &str) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for v in &row.values {
                if v.name == var && seen.insert(v.text.to_lowercase()) {
                    out.push(v.text.clone());
                }
            }
        }
        out
    }

    /// Distinct `(doc, value)` pairs for one variable — the unit the
    /// extraction experiments score against ground truth.
    pub fn doc_values(&self, var: &str) -> Vec<(u32, String)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for v in &row.values {
                if v.name == var {
                    let key = (row.doc, v.text.to_lowercase());
                    if seen.insert(key.clone()) {
                        out.push((row.doc, v.text.clone()));
                    }
                }
            }
        }
        out
    }
}

/// The KOKO system: a parsed corpus, its indices, and the backing store.
pub struct Koko {
    corpus: Corpus,
    index: KokoIndex,
    store: Db,
    embed: Embeddings,
    pub opts: EngineOpts,
}

impl Koko {
    /// Parse raw documents and build every index (Figure 2's preprocessing
    /// box).
    pub fn from_texts<S: AsRef<str>>(texts: &[S]) -> Koko {
        let pipeline = Pipeline::new();
        Koko::from_corpus(pipeline.parse_corpus(texts))
    }

    /// Build from an already parsed corpus.
    pub fn from_corpus(corpus: Corpus) -> Koko {
        let index = KokoIndex::build(&corpus);
        let store = Db::new();
        let mut docs = DocStore::new();
        for d in corpus.documents() {
            docs.put(d);
        }
        store.set_docs(docs);
        Koko {
            corpus,
            index,
            store,
            embed: Embeddings::shared().clone(),
            opts: EngineOpts::default(),
        }
    }

    /// Replace the embedding model (e.g. with a domain ontology merged in).
    pub fn with_embeddings(mut self, embed: Embeddings) -> Koko {
        self.embed = embed;
        self
    }

    pub fn with_opts(mut self, opts: EngineOpts) -> Koko {
        self.opts = opts;
        self
    }

    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    pub fn index(&self) -> &KokoIndex {
        &self.index
    }

    pub fn store(&self) -> &Db {
        &self.store
    }

    /// Parse, normalize and evaluate a KOKO query.
    pub fn query(&self, text: &str) -> Result<QueryOutput, Error> {
        let t0 = std::time::Instant::now();
        let parsed = parse_query(text)?;
        self.query_ast(&parsed, t0)
    }

    /// Evaluate an already parsed query (`t0` anchors the Normalize timer).
    pub fn query_ast(&self, parsed: &Query, t0: std::time::Instant) -> Result<QueryOutput, Error> {
        let mut profile = Profile::default();

        // ---- Normalize ---------------------------------------------------
        let norm = normalize(parsed)?;
        let cq = CompiledQuery::compile(norm)?;
        profile.normalize = t0.elapsed();

        // ---- DPLI ---------------------------------------------------------
        let t = std::time::Instant::now();
        let dpli_result = dpli::run(&cq, &self.index);
        profile.dpli = t.elapsed();
        profile.candidate_sentences = dpli_result.candidate_sids.len();

        // ---- LoadArticle ---------------------------------------------------
        let t = std::time::Instant::now();
        let mut by_doc: BTreeMap<u32, Vec<Sid>> = BTreeMap::new();
        for &sid in &dpli_result.candidate_sids {
            by_doc.entry(self.corpus.doc_of(sid)).or_default().push(sid);
        }
        let mut loaded: BTreeMap<u32, Document> = BTreeMap::new();
        for &doc_id in by_doc.keys() {
            let doc = if self.opts.store_backed {
                self.store
                    .load_document(doc_id)
                    .map_err(|e| Error::Storage(e.to_string()))?
            } else {
                self.corpus.documents()[doc_id as usize].clone()
            };
            loaded.insert(doc_id, doc);
        }
        profile.load_article = t.elapsed();

        // ---- GSP + extract --------------------------------------------------
        let needed = self.needed_vars(&cq);
        let mut tuples: Vec<RawTuple> = Vec::new();
        for (&doc_id, sids) in &by_doc {
            let doc = &loaded[&doc_id];
            let first_sid = self.corpus.doc_sids(doc_id).start;
            for &sid in sids {
                let local = (sid - first_sid) as usize;
                let sentence = &doc.sentences[local];
                let ctx = SentCtx::new(sentence);

                let te = std::time::Instant::now();
                let domains = bind_domains(&cq, &ctx);
                profile.extract += te.elapsed();

                let tg = std::time::Instant::now();
                let plans = gsp::plan(&cq, &domains, ctx.len());
                profile.gsp += tg.elapsed();

                let te = std::time::Instant::now();
                let assignments = gsp::evaluate(&cq, &ctx, &domains, &plans, self.opts.use_gsp);
                for a in assignments {
                    let mut values = Vec::with_capacity(needed.len());
                    let mut complete = true;
                    for &(vi, ref name) in &needed {
                        match a[vi] {
                            Some(span) => values.push(TupleValue {
                                var: name.clone(),
                                sid,
                                span,
                                text: span_text(sentence, span),
                            }),
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                    if complete {
                        tuples.push(RawTuple {
                            doc: doc_id,
                            values,
                        });
                    }
                }
                profile.extract += te.elapsed();
            }
        }
        // Bag semantics with per-sentence duplicates removed.
        tuples.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        tuples.dedup();
        profile.raw_tuples = tuples.len();

        // ---- Aggregate (satisfying + excluding) ----------------------------
        let t = std::time::Instant::now();
        let rows = self.aggregate(&cq, &loaded, tuples);
        profile.satisfying = t.elapsed();

        Ok(QueryOutput { rows, profile })
    }

    /// Variables whose values must survive into tuples: outputs plus every
    /// satisfying / excluding variable.
    fn needed_vars(&self, cq: &CompiledQuery) -> Vec<(usize, String)> {
        let mut names: Vec<String> = cq.norm.outputs.iter().map(|o| o.name.clone()).collect();
        for s in &cq.norm.satisfying {
            names.push(s.var.clone());
        }
        for e in &cq.norm.excluding {
            names.push(e.var.clone());
        }
        names.sort();
        names.dedup();
        names
            .into_iter()
            .filter_map(|n| cq.norm.var(&n).map(|i| (i, n)))
            .collect()
    }

    fn aggregate(
        &self,
        cq: &CompiledQuery,
        loaded: &BTreeMap<u32, Document>,
        tuples: Vec<RawTuple>,
    ) -> Vec<Row> {
        let agg = Aggregator::new(
            cq,
            &self.embed,
            AggOpts {
                use_descriptors: self.opts.use_descriptors,
                default_threshold: self.opts.default_threshold,
                expansion_k: self.opts.expansion_k,
                expansion_min_sim: self.opts.expansion_min_sim,
            },
        );
        // Score cache: (doc, clause#, lowercased value) → score. Clauses
        // whose conditions never consult the corpus (similarTo / contains /
        // matches / in dict) are cached once for all documents.
        let doc_independent: Vec<bool> = cq
            .norm
            .satisfying
            .iter()
            .map(|clause| {
                clause.conds.iter().all(|wc| {
                    matches!(
                        wc.cond.pred,
                        koko_lang::Pred::Contains(_)
                            | koko_lang::Pred::Mentions(_)
                            | koko_lang::Pred::Matches(_)
                            | koko_lang::Pred::SimilarTo(_)
                            | koko_lang::Pred::InDict(_)
                    )
                })
            })
            .collect();
        let mut scores: std::collections::HashMap<(u32, usize, String), f64> =
            std::collections::HashMap::new();
        let mut excl_cache: std::collections::HashMap<(u32, String), bool> =
            std::collections::HashMap::new();

        let mut rows = Vec::new();
        'tuple: for t in tuples {
            let doc = &loaded[&t.doc];
            let mut row_score = 1.0f64;
            // Satisfying clauses filter by their variable's value.
            for (ci, clause) in cq.norm.satisfying.iter().enumerate() {
                let Some(v) = t.values.iter().find(|v| v.var == clause.var) else {
                    continue;
                };
                let cache_doc = if doc_independent[ci] { u32::MAX } else { t.doc };
                let key = (cache_doc, ci, v.text.to_lowercase());
                let score = *scores
                    .entry(key)
                    .or_insert_with(|| agg.score(doc, &v.text, &clause.conds));
                if score < agg.threshold(clause.threshold) {
                    continue 'tuple;
                }
                row_score = score;
            }
            // Excluding conditions drop tuples by any referenced value.
            for v in &t.values {
                if cq.norm.excluding.iter().any(|c| c.var == v.var) {
                    let key = (t.doc, v.text.to_lowercase());
                    let out = *excl_cache
                        .entry(key)
                        .or_insert_with(|| agg.excluded(doc, &v.text));
                    if out {
                        continue 'tuple;
                    }
                }
            }
            // Project outputs.
            let values: Vec<OutValue> = cq
                .norm
                .outputs
                .iter()
                .filter_map(|o| {
                    t.values.iter().find(|v| v.var == o.name).map(|v| OutValue {
                        name: o.name.clone(),
                        text: v.text.clone(),
                        sid: v.sid,
                        start: v.span.0,
                        end: v.span.1,
                    })
                })
                .collect();
            if values.len() == cq.norm.outputs.len() {
                rows.push(Row {
                    doc: t.doc,
                    values,
                    score: row_score,
                });
            }
        }
        rows
    }
}

#[derive(Debug, Clone, PartialEq, PartialOrd)]
struct TupleValue {
    var: String,
    sid: Sid,
    span: (u32, u32),
    text: String,
}

#[derive(Debug, Clone, PartialEq)]
struct RawTuple {
    doc: u32,
    values: Vec<TupleValue>,
}

fn span_text(sentence: &koko_nlp::Sentence, span: (u32, u32)) -> String {
    if span.0 >= span.1 {
        return String::new();
    }
    sentence.span_text(span.0, span.1 - 1)
}

/// Convenience: variables used by the engine internals.
pub use koko_lang::NormQuery;

#[allow(unused)]
fn var_kind_name(kind: &NVarKind) -> &'static str {
    match kind {
        NVarKind::Node { .. } => "node",
        NVarKind::Entity { .. } => "entity",
        NVarKind::Span { .. } => "span",
        NVarKind::Subtree { .. } => "subtree",
        NVarKind::Tokens { .. } => "tokens",
        NVarKind::Elastic { .. } => "elastic",
    }
}
