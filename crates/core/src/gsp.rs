//! GSP — "Generate Skip Plan" (Algorithm 2, §4.3) and tuple enumeration.
//!
//! For every horizontal condition (`e = a + ∧ + b + ∧ + c`) the planner
//! estimates each atom's cost (`t(t+1)/2` for `∧`, domain size otherwise)
//! and greedily skips the costliest atoms whose neighbours remain
//! unskipped. Skipped atoms are never iterated: their spans are *derived*
//! from the bindings of their neighbours and validated (Example 4.7).
//!
//! The module also implements the naive `KOKO&NOGSP` evaluator of Table 1 —
//! nested loops over every variable including the `O(t²)` elastic spans —
//! used by the `table1_gsp` benchmark.

use crate::binder::{elastic_span_ok, CompiledQuery, Domain, SentCtx, Span};
use koko_lang::{NConstraint, NVarKind};

/// A complete per-sentence assignment: one optional span per variable.
pub type Assignment = Vec<Option<Span>>;

/// The skip plan for one horizontal condition.
#[derive(Debug, Clone)]
pub struct SkipPlan {
    /// Index of the span-target variable.
    pub target: usize,
    /// Atom variable indices, in surface order.
    pub atoms: Vec<usize>,
    /// Parallel to `atoms`: whether the atom is skipped.
    pub skip: Vec<bool>,
}

/// Build skip plans for every horizontal condition (Algorithm 2).
pub fn plan(cq: &CompiledQuery, domains: &[Domain], sentence_len: u32) -> Vec<SkipPlan> {
    let t = sentence_len as usize;
    let elastic_cost = t * (t + 1) / 2;
    let mut plans = Vec::new();
    for (target, var) in cq.norm.vars.iter().enumerate() {
        let NVarKind::Span { atoms } = &var.kind else {
            continue;
        };
        let atom_idx: Vec<usize> = atoms
            .iter()
            .map(|name| cq.norm.var(name).expect("atoms resolve"))
            .collect();
        // cost[v] per Algorithm 2.
        let cost: Vec<usize> = atom_idx
            .iter()
            .map(|&v| match &cq.norm.vars[v].kind {
                NVarKind::Elastic { .. } => elastic_cost,
                _ => domains[v].size(),
            })
            .collect();
        // Greedy: highest cost first; skip if neither neighbour is skipped.
        let mut order: Vec<usize> = (0..atom_idx.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(cost[i]));
        let mut skip = vec![false; atom_idx.len()];
        for i in order {
            let left_ok = i == 0 || !skip[i - 1];
            let right_ok = i + 1 == atom_idx.len() || !skip[i + 1];
            if left_ok && right_ok {
                skip[i] = true;
            }
        }
        // Alignment derives skipped atoms from unskipped anchors, so at
        // least one non-∧ atom must stay unskipped (`d = (b.subtree)` is a
        // one-atom condition Algorithm 2 would otherwise skip entirely).
        let has_anchor = (0..atom_idx.len()).any(|i| {
            !skip[i] && !matches!(cq.norm.vars[atom_idx[i]].kind, NVarKind::Elastic { .. })
        });
        if !has_anchor {
            if let Some(cheapest) = (0..atom_idx.len())
                .filter(|&i| !matches!(cq.norm.vars[atom_idx[i]].kind, NVarKind::Elastic { .. }))
                .min_by_key(|&i| cost[i])
            {
                skip[cheapest] = false;
            }
        }
        plans.push(SkipPlan {
            target,
            atoms: atom_idx,
            skip,
        });
    }
    plans
}

/// Enumerate all valid assignments for one sentence.
///
/// `use_gsp = false` selects the naive nested-loop evaluator (`KOKO&NOGSP`).
pub fn evaluate(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    domains: &[Domain],
    plans: &[SkipPlan],
    use_gsp: bool,
) -> Vec<Assignment> {
    let nvars = cq.norm.vars.len();
    let skipped: Vec<bool> = {
        let mut s = vec![false; nvars];
        if use_gsp {
            for p in plans {
                for (i, &a) in p.atoms.iter().enumerate() {
                    if p.skip[i] {
                        s[a] = true;
                    }
                }
            }
        }
        s
    };
    // Variables iterated by nested loops, in declaration order (§4.3).
    let mut enum_vars: Vec<usize> = Vec::new();
    for (i, v) in cq.norm.vars.iter().enumerate() {
        let enumerable = match &v.kind {
            NVarKind::Span { .. } => false, // targets always derived
            NVarKind::Elastic { .. } => !use_gsp,
            _ => !skipped[i],
        };
        if enumerable {
            enum_vars.push(i);
        }
    }
    // Constraints checkable as soon as their last variable is assigned.
    let con_ready: Vec<(usize, &NConstraint)> = cq
        .norm
        .constraints
        .iter()
        .map(|c| {
            let (a, b) = constraint_vars(c);
            let ia = cq.norm.var(a).expect("constraint var");
            let ib = cq.norm.var(b).expect("constraint var");
            // Ready once both are assigned during enumeration; targets and
            // skipped vars are assigned at the end (position = usize::MAX).
            let pos = |v: usize| enum_vars.iter().position(|&e| e == v).unwrap_or(usize::MAX);
            (pos(ia).max(pos(ib)), c)
        })
        .collect();

    let mut out = Vec::new();
    let mut assignment: Assignment = vec![None; nvars];
    recurse(
        cq,
        ctx,
        domains,
        plans,
        use_gsp,
        &enum_vars,
        &con_ready,
        0,
        &mut assignment,
        &mut out,
    );
    out
}

fn constraint_vars(c: &NConstraint) -> (&str, &str) {
    match c {
        NConstraint::ParentOf(a, b)
        | NConstraint::AncestorOf(a, b)
        | NConstraint::In(a, b)
        | NConstraint::Eq(a, b) => (a, b),
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    domains: &[Domain],
    plans: &[SkipPlan],
    use_gsp: bool,
    enum_vars: &[usize],
    con_ready: &[(usize, &NConstraint)],
    depth: usize,
    assignment: &mut Assignment,
    out: &mut Vec<Assignment>,
) {
    if depth == enum_vars.len() {
        finish(cq, ctx, domains, plans, use_gsp, con_ready, assignment, out);
        return;
    }
    let v = enum_vars[depth];
    let options: Vec<Span> = match (&cq.norm.vars[v].kind, &domains[v]) {
        (NVarKind::Elastic { conds }, _) => {
            // Naive mode only: every span including empty ones.
            let t = ctx.len();
            let mut spans = Vec::new();
            for i in 0..=t {
                for j in i..=t {
                    if elastic_span_ok(cq, ctx, conds, (i, j)) {
                        spans.push((i, j));
                    }
                }
            }
            spans
        }
        (_, Domain::Nodes(tids)) => tids.iter().map(|&t| (t, t + 1)).collect(),
        (_, Domain::Spans(spans)) => spans.clone(),
        (_, Domain::Derived) => vec![],
    };
    for span in options {
        assignment[v] = Some(span);
        if check_ready_constraints(cq, ctx, con_ready, depth, assignment) {
            recurse(
                cq,
                ctx,
                domains,
                plans,
                use_gsp,
                enum_vars,
                con_ready,
                depth + 1,
                assignment,
                out,
            );
        }
    }
    assignment[v] = None;
}

/// In GSP mode constraints at `depth` have both endpoints assigned; naive
/// mode checks everything at the leaf (depth = usize::MAX sentinel rows are
/// re-checked in `finish`).
fn check_ready_constraints(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    con_ready: &[(usize, &NConstraint)],
    depth: usize,
    assignment: &Assignment,
) -> bool {
    con_ready
        .iter()
        .filter(|(ready, _)| *ready == depth)
        .all(|(_, c)| constraint_holds(cq, ctx, c, assignment))
}

/// Evaluate one constraint over (possibly partial) assignments; unassigned
/// endpoints make the constraint vacuously true (re-checked at the leaf).
pub fn constraint_holds(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    c: &NConstraint,
    assignment: &Assignment,
) -> bool {
    let (an, bn) = constraint_vars(c);
    let (Some(ia), Some(ib)) = (cq.norm.var(an), cq.norm.var(bn)) else {
        return false;
    };
    let (Some(a), Some(b)) = (assignment[ia], assignment[ib]) else {
        return true;
    };
    match c {
        NConstraint::ParentOf(_, _) => {
            // Both must be node variables (width-1 spans).
            ctx.sentence.tokens[b.0 as usize].head == Some(a.0)
        }
        NConstraint::AncestorOf(_, _) => {
            let mut cur = b.0;
            while let Some(h) = ctx.sentence.tokens[cur as usize].head {
                if h == a.0 {
                    return true;
                }
                cur = h;
            }
            false
        }
        NConstraint::In(_, _) => b.0 <= a.0 && a.1 <= b.1,
        NConstraint::Eq(_, _) => a == b,
    }
}

/// Leaf handling: derive skipped atoms and span targets, validate
/// everything, and emit completed assignments.
///
/// Plans are processed **sequentially** so a span variable derived by an
/// earlier plan (`b = p.subtree`) is visible as an anchor to a later plan
/// that uses it as an atom (`c = a + ∧ + v + ∧ + b` in the Title query).
#[allow(clippy::too_many_arguments)]
fn finish(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    domains: &[Domain],
    plans: &[SkipPlan],
    use_gsp: bool,
    con_ready: &[(usize, &NConstraint)],
    assignment: &mut Assignment,
    out: &mut Vec<Assignment>,
) {
    fn step(
        cq: &CompiledQuery,
        ctx: &SentCtx<'_>,
        domains: &[Domain],
        plans: &[SkipPlan],
        use_gsp: bool,
        con_ready: &[(usize, &NConstraint)],
        scratch: &Assignment,
        pi: usize,
        out: &mut Vec<Assignment>,
    ) {
        if pi == plans.len() {
            let all_ok = con_ready
                .iter()
                .all(|(_, c)| constraint_holds(cq, ctx, c, scratch))
                && subtree_consistent(cq, ctx, scratch);
            if all_ok {
                out.push(scratch.clone());
            }
            return;
        }
        let plan = &plans[pi];
        let options = if use_gsp {
            align_gsp(cq, ctx, domains, plan, scratch)
        } else {
            align_naive(cq, plan, scratch)
        };
        'option: for opt in options {
            let mut next = scratch.clone();
            for &(v, span) in &opt {
                match next[v] {
                    None => next[v] = Some(span),
                    Some(prev) if prev == span => {}
                    Some(_) => continue 'option,
                }
            }
            step(
                cq,
                ctx,
                domains,
                plans,
                use_gsp,
                con_ready,
                &next,
                pi + 1,
                out,
            );
        }
    }
    step(
        cq, ctx, domains, plans, use_gsp, con_ready, assignment, 0, out,
    );
}

/// Whether every assigned subtree variable matches the subtree of its
/// assigned base binding.
fn subtree_consistent(cq: &CompiledQuery, ctx: &SentCtx<'_>, assignment: &Assignment) -> bool {
    cq.norm.vars.iter().enumerate().all(|(i, v)| {
        let NVarKind::Subtree { base } = &v.kind else {
            return true;
        };
        let base_idx = cq.norm.var(base).expect("base exists");
        match (assignment[i], assignment[base_idx]) {
            (Some(span), Some(bspan)) => ctx.subtree_span(bspan.0) == span,
            _ => true,
        }
    })
}

/// Cap on derived-atom possibilities per horizontal condition — gaps are
/// short in practice, this only guards adversarial inputs.
const MAX_ALIGN_OPTIONS: usize = 64;

/// GSP alignment: skipped atoms derived from the gaps between anchors
/// (Example 4.7). Returns the possible `(var, span)` assignments for the
/// derived variables plus the target span.
fn align_gsp(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    domains: &[Domain],
    plan: &SkipPlan,
    assignment: &Assignment,
) -> Vec<Vec<(usize, Span)>> {
    let n = plan.atoms.len();
    // Anchor spans (unskipped atoms must already be assigned).
    let mut anchors: Vec<(usize, Span)> = Vec::new();
    for (i, &a) in plan.atoms.iter().enumerate() {
        if !plan.skip[i] {
            match assignment[a] {
                Some(s) => anchors.push((i, s)),
                None => return Vec::new(),
            }
        }
    }
    if anchors.is_empty() {
        // Degenerate: a span of only skipped (∧) atoms; unused in practice.
        return Vec::new();
    }
    // Anchor order must respect surface order.
    for w in anchors.windows(2) {
        if w[0].1 .1 > w[1].1 .0 {
            return Vec::new();
        }
    }

    let mut options: Vec<Vec<(usize, Span)>> = vec![Vec::new()];
    let extend = |options: &mut Vec<Vec<(usize, Span)>>, fills: Vec<Vec<(usize, Span)>>| {
        let mut next = Vec::new();
        for base in options.iter() {
            for fill in &fills {
                let mut merged = base.clone();
                merged.extend(fill.iter().copied());
                next.push(merged);
                if next.len() >= MAX_ALIGN_OPTIONS {
                    break;
                }
            }
        }
        *options = next;
    };

    // Leading group: skipped atoms before the first anchor, anchored on
    // their right end.
    let (first_anchor_pos, first_span) = anchors[0];
    if first_anchor_pos > 0 {
        let group: Vec<usize> = plan.atoms[..first_anchor_pos].to_vec();
        let fills = fill_anchored_end(cq, ctx, domains, &group, first_span.0);
        if fills.is_empty() {
            return Vec::new();
        }
        extend(&mut options, fills);
    }
    // Middle groups.
    for w in anchors.windows(2) {
        let (ia, sa) = w[0];
        let (ib, sb) = w[1];
        if ib == ia + 1 {
            if sa.1 != sb.0 {
                return Vec::new(); // adjacent atoms must touch
            }
            continue;
        }
        let group: Vec<usize> = plan.atoms[ia + 1..ib].to_vec();
        let fills = fill_gap(cq, ctx, domains, &group, sa.1, sb.0);
        if fills.is_empty() {
            return Vec::new();
        }
        extend(&mut options, fills);
    }
    // Trailing group, anchored on its left end.
    let (last_anchor_pos, last_span) = *anchors.last().expect("nonempty");
    if last_anchor_pos + 1 < n {
        let group: Vec<usize> = plan.atoms[last_anchor_pos + 1..].to_vec();
        let fills = fill_anchored_start(cq, ctx, domains, &group, last_span.1);
        if fills.is_empty() {
            return Vec::new();
        }
        extend(&mut options, fills);
    }

    // Attach the target span to every option.
    finalize_target(plan, assignment, options)
}

/// Naive alignment: all atoms (including elastics) are already assigned —
/// just validate adjacency and derive the target.
fn align_naive(
    cq: &CompiledQuery,
    plan: &SkipPlan,
    assignment: &Assignment,
) -> Vec<Vec<(usize, Span)>> {
    let _ = cq;
    let mut prev_end: Option<u32> = None;
    for &a in &plan.atoms {
        let Some(s) = assignment[a] else {
            return Vec::new();
        };
        if let Some(pe) = prev_end {
            if s.0 != pe {
                return Vec::new();
            }
        }
        prev_end = Some(s.1);
    }
    finalize_target(plan, assignment, vec![Vec::new()])
}

/// Compute the target span (first atom start → last atom end) for each
/// option and append it.
fn finalize_target(
    plan: &SkipPlan,
    assignment: &Assignment,
    options: Vec<Vec<(usize, Span)>>,
) -> Vec<Vec<(usize, Span)>> {
    let span_of = |v: usize, opt: &Vec<(usize, Span)>| -> Option<Span> {
        opt.iter()
            .find(|(ov, _)| *ov == v)
            .map(|(_, s)| *s)
            .or(assignment[v])
    };
    options
        .into_iter()
        .filter_map(|mut opt| {
            let first = span_of(plan.atoms[0], &opt)?;
            let last = span_of(*plan.atoms.last().expect("atoms nonempty"), &opt)?;
            opt.push((plan.target, (first.0, last.1)));
            Some(opt)
        })
        .collect()
}

/// All ways to place `group` atoms exactly covering `[lo, hi)`.
fn fill_gap(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    domains: &[Domain],
    group: &[usize],
    lo: u32,
    hi: u32,
) -> Vec<Vec<(usize, Span)>> {
    if group.is_empty() {
        return if lo == hi {
            vec![Vec::new()]
        } else {
            Vec::new()
        };
    }
    let v = group[0];
    let mut out = Vec::new();
    for end in candidate_ends(cq, ctx, domains, v, lo, hi) {
        for mut rest in fill_gap(cq, ctx, domains, &group[1..], end, hi) {
            rest.insert(0, (v, (lo, end)));
            out.push(rest);
            if out.len() >= MAX_ALIGN_OPTIONS {
                return out;
            }
        }
    }
    out
}

/// Feasible end positions for atom `v` starting at `lo`, bounded by `hi`.
fn candidate_ends(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    domains: &[Domain],
    v: usize,
    lo: u32,
    hi: u32,
) -> Vec<u32> {
    match (&cq.norm.vars[v].kind, &domains[v]) {
        (NVarKind::Elastic { conds }, _) => (lo..=hi)
            .filter(|&end| elastic_span_ok(cq, ctx, conds, (lo, end)))
            .collect(),
        (_, Domain::Nodes(tids)) => {
            if lo < hi && tids.contains(&lo) {
                vec![lo + 1]
            } else {
                vec![]
            }
        }
        (_, Domain::Spans(spans)) => spans
            .iter()
            .filter(|s| s.0 == lo && s.1 <= hi)
            .map(|s| s.1)
            .collect(),
        (_, Domain::Derived) => vec![],
    }
}

/// Place `group` atoms so the last one ends exactly at `end` (leading
/// skipped group). Unconstrained elastics collapse to empty spans.
fn fill_anchored_end(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    domains: &[Domain],
    group: &[usize],
    end: u32,
) -> Vec<Vec<(usize, Span)>> {
    // Work right-to-left: enumerate start positions for the whole group.
    // Implementation: try every group start `s ≤ end` and keep exact fills;
    // bounded because sentences are short.
    let mut out = Vec::new();
    for start in (0..=end).rev() {
        for fill in fill_gap(cq, ctx, domains, group, start, end) {
            out.push(fill);
            if out.len() >= MAX_ALIGN_OPTIONS {
                return out;
            }
        }
    }
    out
}

/// Place `group` atoms starting exactly at `start` (trailing skipped
/// group).
fn fill_anchored_start(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    domains: &[Domain],
    group: &[usize],
    start: u32,
) -> Vec<Vec<(usize, Span)>> {
    let t = ctx.len();
    let mut out = Vec::new();
    for end in start..=t {
        for fill in fill_gap(cq, ctx, domains, group, start, end) {
            out.push(fill);
            if out.len() >= MAX_ALIGN_OPTIONS {
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::{bind_domains, CompiledQuery};
    use koko_lang::{normalize, parse_query, queries};
    use koko_nlp::Pipeline;

    fn compiled(q: &str) -> CompiledQuery {
        CompiledQuery::compile(normalize(&parse_query(q).unwrap()).unwrap()).unwrap()
    }

    fn eval_on(cq: &CompiledQuery, text: &str, use_gsp: bool) -> Vec<Assignment> {
        let s = Pipeline::new().parse_document(0, text).sentences.remove(0);
        let ctx = SentCtx::new(&s);
        let domains = bind_domains(cq, &ctx);
        let plans = plan(cq, &domains, ctx.len());
        evaluate(cq, &ctx, &domains, &plans, use_gsp)
    }

    const FIG1: &str = "I ate a chocolate ice cream, which was delicious, and also ate a pie.";

    #[test]
    fn skip_plan_skips_elastics() {
        let cq = compiled(queries::EXAMPLE_4_1);
        let s = Pipeline::new().parse_document(0, FIG1).sentences.remove(0);
        let ctx = SentCtx::new(&s);
        let domains = bind_domains(&cq, &ctx);
        let plans = plan(&cq, &domains, ctx.len());
        assert_eq!(plans.len(), 1);
        let p = &plans[0];
        assert_eq!(p.atoms.len(), 5);
        // Example 4.6: v1 and v2 (positions 1, 3) are skipped; a, b, c are
        // iterated (4 loops instead of 6).
        assert_eq!(p.skip, vec![false, true, false, true, false]);
    }

    #[test]
    fn example_21_tuple() {
        // Paper: the unique binding a="ate", b="cream", c="delicious",
        // d = "a chocolate ice cream , which was delicious", e="chocolate
        // ice cream".
        let cq = compiled(queries::EXAMPLE_2_1);
        let tuples = eval_on(&cq, FIG1, true);
        assert_eq!(tuples.len(), 1, "exactly one binding combination");
        let t = &tuples[0];
        let get = |name: &str| t[cq.norm.var(name).unwrap()].unwrap();
        assert_eq!(get("a"), (1, 2)); // ate
        assert_eq!(get("b"), (5, 6)); // cream
        assert_eq!(get("c"), (9, 10)); // delicious
        assert_eq!(get("d"), (2, 10)); // b.subtree
        assert_eq!(get("e"), (3, 6)); // chocolate ice cream
    }

    #[test]
    fn gsp_and_nogsp_agree() {
        // Table 1's two systems must produce identical result bags.
        for q in [
            queries::EXAMPLE_2_1,
            queries::EXAMPLE_4_1,
            "extract x:Str from t if (/ROOT:{ x = //verb + ^ + //noun })",
        ] {
            let cq = compiled(q);
            for text in [
                FIG1,
                "Anna ate some delicious cheesecake that she bought at a grocery store.",
            ] {
                let mut a = eval_on(&cq, text, true);
                let mut b = eval_on(&cq, text, false);
                a.sort();
                b.sort();
                a.dedup();
                b.dedup();
                assert_eq!(a, b, "query {q:?} on {text:?}");
            }
        }
    }

    #[test]
    fn example_41_span_alignment() {
        // On the Figure 1 sentence the query has no answer: the constraint
        // chain forces c = "cream" (the only dobj dominating "delicious"),
        // but no entity precedes "ate"(1), so e = a + ∧ + b + ∧ + c cannot
        // align. (The second "ate"/"pie" pair fails c ancestorOf d.)
        let cq = compiled(queries::EXAMPLE_4_1);
        let tuples = eval_on(&cq, FIG1, true);
        assert!(tuples.is_empty(), "{tuples:?}");
        // A sentence where everything lines up: Anna + gap + ate + gap +
        // cheesecake, with "delicious" below the dobj.
        let tuples = eval_on(&cq, "Anna quickly ate some delicious cheesecake.", true);
        assert_eq!(tuples.len(), 1, "{tuples:?}");
        let t = &tuples[0];
        let get = |name: &str| t[cq.norm.var(name).unwrap()].unwrap();
        assert_eq!(get("a"), (0, 1)); // Anna
        assert_eq!(get("b"), (2, 3)); // ate
        assert_eq!(get("c"), (5, 6)); // cheesecake
        assert_eq!(get("e"), (0, 6)); // the whole aligned span
    }

    #[test]
    fn adjacency_is_enforced() {
        // x = //verb + //noun with no elastic between: only adjacent
        // verb-noun pairs qualify.
        let cq = compiled("extract x:Str from t if (/ROOT:{ x = //verb + //noun })");
        let tuples = eval_on(&cq, "The barista poured a latte.", true);
        // "poured"(2) followed by "a"(3)? a is DET not NOUN; no adjacent
        // verb+noun pair exists.
        assert!(tuples.is_empty());
        let tuples = eval_on(&cq, "She poured latte art.", true);
        // poured(1)+latte(2): adjacent pair exists.
        assert!(!tuples.is_empty());
    }

    #[test]
    fn derived_node_atom_is_validated() {
        // x = //verb + //det + //noun: det is cheap but let's force a skip
        // by making it the costliest… instead verify correctness: every
        // returned det really is a det between verb and noun.
        let cq = compiled("extract x:Str from t if (/ROOT:{ x = //verb + //det + //noun })");
        let tuples = eval_on(&cq, "The barista poured a latte.", true);
        assert_eq!(tuples.len(), 1);
        let t = &tuples[0];
        let x = t[cq.norm.var("x").unwrap()].unwrap();
        assert_eq!(x, (2, 5)); // "poured a latte"
    }

    #[test]
    fn elastic_with_entity_condition_aligns() {
        let cq = compiled("extract x:Str from t if (/ROOT:{ x = //verb + ^[etype=\"Entity\"] })");
        let tuples = eval_on(&cq, FIG1, true);
        // ate(1) followed by… tokens 2.. is "a chocolate…" not an entity at
        // position 2. But ate(13) followed by (14,15)="a pie"? The entity is
        // "pie" (15,16) only. No adjacency → check what aligns:
        // Actually "ate a pie": entity pie starts at 15, verb ends at 14 →
        // no. Expect empty.
        assert!(tuples.is_empty());
        let tuples2 = eval_on(&cq, "She poured cortado.", true);
        // poured(1) ends at 2; entity "cortado" spans (2,3) → adjacency ok.
        assert!(!tuples2.is_empty());
    }
}
