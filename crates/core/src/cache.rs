//! Query caches for the serve-many workload: a compiled-query cache
//! (parse → normalize → compile once per distinct query text) and a
//! bounded LRU result cache (skip DPLI / LoadArticle / GSP / extract /
//! aggregate entirely for repeated queries).
//!
//! Both caches are safe under concurrency (one short-held mutex each) and
//! both are bypassable: [`EngineOpts::compiled_cache`] gates the first,
//! [`EngineOpts::result_cache`] (a capacity, `0` = off) gates the second,
//! and [`Koko::query_with_cache`] bypasses both per call regardless of the
//! options. Hits and misses are surfaced per query in [`Profile`] and
//! cumulatively in [`CacheStats`].
//!
//! Correctness contract: a cache hit returns rows byte-identical to an
//! uncached evaluation. The compiled cache is keyed by the raw query text
//! (compilation is deterministic and option-independent). The result cache
//! is keyed by the *normalized* query — its canonical `Debug` rendering,
//! so two spellings that normalize identically share an entry — plus a
//! fingerprint of the evaluation-relevant [`EngineOpts`](crate::EngineOpts)
//! fields, so mutating `koko.opts` can never serve stale rows, plus the
//! request's `min_score` and `order` (which change the row set/sequence).
//! A request's `limit`/`offset` are deliberately *not* part of the key:
//! only complete results are stored, and a hit serves any narrower
//! limit/offset slice of the cached rows (truncated runs are never
//! stored, so a windowed request can never poison a wider one).
//!
//! [`EngineOpts::compiled_cache`]: crate::EngineOpts
//! [`EngineOpts::result_cache`]: crate::EngineOpts
//! [`Koko::query_with_cache`]: crate::Koko
//! [`Profile`]: crate::Profile

use crate::binder::CompiledQuery;
use crate::engine::Row;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative hit/miss counters across both caches (monotonic; shared by
/// every clone of one [`Koko`](crate::Koko)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub compiled_hits: u64,
    pub compiled_misses: u64,
    pub result_hits: u64,
    pub result_misses: u64,
}

/// A bounded least-recently-used map. Eviction is O(log n) via a recency
/// index; lookups touch the entry. Not thread-safe on its own — callers
/// wrap it in a mutex ([`QueryCaches`] does).
pub struct Lru<V> {
    cap: usize,
    tick: u64,
    /// key → (value, last-touched tick)
    map: HashMap<String, (V, u64)>,
    /// last-touched tick → key (ticks are unique, so this is a total order)
    recency: BTreeMap<u64, String>,
}

impl<V> Lru<V> {
    /// An LRU holding at most `cap` entries (`0` = caching disabled:
    /// every insert is dropped, every get misses).
    pub fn new(cap: usize) -> Lru<V> {
        Lru {
            cap,
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let (_, last) = self.map.get_mut(key)?;
        self.recency.remove(&std::mem::replace(last, tick));
        self.recency.insert(tick, key.to_string());
        self.map.get(key).map(|(v, _)| v)
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: String, value: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if let Some((_, last)) = self.map.get(&key) {
            self.recency.remove(last);
        } else if self.map.len() >= self.cap {
            if let Some((&oldest, _)) = self.recency.iter().next() {
                if let Some(victim) = self.recency.remove(&oldest) {
                    self.map.remove(&victim);
                }
            }
        }
        self.recency.insert(self.tick, key.clone());
        self.map.insert(key, (value, self.tick));
    }
}

/// A compiled query plus the canonical key its results are cached under.
pub struct CachedCompile {
    pub cq: CompiledQuery,
    /// Canonical rendering of the normalized query (`Debug` of
    /// `NormQuery`) — the result-cache key material.
    pub norm_key: String,
}

/// A cached evaluation: the rows plus the candidate/tuple counts of the
/// run that produced them (re-reported on hits so a served `stats` call
/// stays meaningful; the stage *timers* of a hit are zero by design).
#[derive(Clone)]
pub struct CachedResult {
    pub rows: Arc<Vec<Row>>,
    pub candidate_sentences: usize,
    pub delta_candidates: usize,
    pub raw_tuples: usize,
}

/// The two caches plus their counters. One instance is shared (via `Arc`)
/// by every clone of a [`Koko`](crate::Koko) engine, so server worker
/// threads pool their hits.
pub struct QueryCaches {
    compiled: Mutex<Lru<Arc<CachedCompile>>>,
    results: Mutex<Lru<CachedResult>>,
    /// Copy of the result LRU's capacity, readable without its mutex
    /// (the hot path checks "is result caching on?" on every query).
    result_cap: usize,
    compiled_hits: AtomicU64,
    compiled_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
}

/// Entries the compiled cache retains. Distinct query texts in a real
/// workload number in the hundreds; this bound only guards against
/// adversarial floods of one-off queries.
pub const COMPILED_CACHE_CAP: usize = 4096;

impl QueryCaches {
    /// Caches for an engine: compiled cache on/off, result cache bounded
    /// at `result_cap` entries (`0` disables it).
    pub fn new(compiled_enabled: bool, result_cap: usize) -> QueryCaches {
        QueryCaches {
            compiled: Mutex::new(Lru::new(if compiled_enabled {
                COMPILED_CACHE_CAP
            } else {
                0
            })),
            results: Mutex::new(Lru::new(result_cap)),
            result_cap,
            compiled_hits: AtomicU64::new(0),
            compiled_misses: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
        }
    }

    /// Fetch a compiled query by raw text. `Some` is a hit (counted);
    /// `None` is a miss (counted) — the caller compiles and
    /// [`QueryCaches::store_compiled`]s.
    pub fn get_compiled(&self, text: &str) -> Option<Arc<CachedCompile>> {
        let hit = self.compiled.lock().get(text).cloned();
        match &hit {
            Some(_) => self.compiled_hits.fetch_add(1, Ordering::Relaxed),
            None => self.compiled_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    pub fn store_compiled(&self, text: &str, compiled: Arc<CachedCompile>) {
        self.compiled.lock().insert(text.to_string(), compiled);
    }

    /// Fetch cached rows by result key (normalized query + opts
    /// fingerprint). Counts a hit or a miss.
    pub fn get_result(&self, key: &str) -> Option<CachedResult> {
        let hit = self.results.lock().get(key).cloned();
        match &hit {
            Some(_) => self.result_hits.fetch_add(1, Ordering::Relaxed),
            None => self.result_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    pub fn store_result(&self, key: String, result: CachedResult) {
        self.results.lock().insert(key, result);
    }

    /// Whether the result cache can hold anything at all (lock-free).
    pub fn results_enabled(&self) -> bool {
        self.result_cap > 0
    }

    /// Cumulative counters since the engine was built.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            compiled_hits: self.compiled_hits.load(Ordering::Relaxed),
            compiled_misses: self.compiled_misses.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert_eq!(lru.get("a"), Some(&1)); // touch a → b is now LRU
        lru.insert("c".into(), 3);
        assert_eq!(lru.get("b"), None, "b evicted");
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.get("c"), Some(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_refresh_does_not_grow() {
        let mut lru = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("a".into(), 10);
        lru.insert("b".into(), 2);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get("a"), Some(&10));
        assert_eq!(lru.get("b"), Some(&2));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut lru: Lru<u32> = Lru::new(0);
        lru.insert("a".into(), 1);
        assert!(lru.is_empty());
        assert_eq!(lru.get("a"), None);
    }

    #[test]
    fn caches_count_hits_and_misses() {
        let caches = QueryCaches::new(true, 8);
        assert!(caches.get_compiled("q").is_none());
        assert!(caches.get_result("k").is_none());
        caches.store_result(
            "k".into(),
            CachedResult {
                rows: Arc::new(Vec::new()),
                candidate_sentences: 0,
                delta_candidates: 0,
                raw_tuples: 0,
            },
        );
        assert!(caches.get_result("k").is_some());
        let s = caches.stats();
        assert_eq!(
            (
                s.compiled_hits,
                s.compiled_misses,
                s.result_hits,
                s.result_misses
            ),
            (0, 1, 1, 1)
        );
    }

    #[test]
    fn disabled_compiled_cache_always_misses() {
        let caches = QueryCaches::new(false, 0);
        assert!(!caches.results_enabled());
        caches.store_compiled(
            "q",
            Arc::new(CachedCompile {
                cq: CompiledQuery::compile(
                    koko_lang::normalize(
                        &koko_lang::parse_query(koko_lang::queries::EXAMPLE_2_1).unwrap(),
                    )
                    .unwrap(),
                )
                .unwrap(),
                norm_key: "n".into(),
            }),
        );
        assert!(caches.get_compiled("q").is_none());
    }
}
