//! [`LiveIndex`] — the mutable cell that turns immutable [`Snapshot`]
//! generations into a *live*, incrementally updatable index.
//!
//! Reads and writes are decoupled by epoch publication:
//!
//! * **Readers** call [`LiveIndex::current`], which clones the published
//!   `Arc<Snapshot>` under a briefly-held read lock. A query then runs
//!   entirely against that pinned snapshot — concurrent writers can
//!   publish successors without ever invalidating or blocking it.
//! * **Writers** serialize on a dedicated write mutex
//!   ([`LiveIndex::write_lock`]), derive a successor snapshot from the
//!   current one (NLP parsing, delta-shard builds and compactions all
//!   happen *outside* the read path's lock), and then
//!   [`WriteGuard::publish`] it — a pointer swap under the write half of
//!   the read lock, so readers stall only for that swap.
//!
//! The published snapshot's [`Snapshot::epoch`] is the version observable
//! by caches and the wire protocol: it changes on every publish, never
//! repeats, and is what makes epoch-keyed result caching sound.

use crate::snapshot::Snapshot;
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::sync::Arc;

/// A published, updatable sequence of snapshot generations.
pub struct LiveIndex {
    current: RwLock<Arc<Snapshot>>,
    /// Writer serialization. Held across the whole derive-successor
    /// critical section so two `add_texts` calls cannot base their
    /// successors on the same parent; readers never touch it.
    writer: Mutex<()>,
}

impl LiveIndex {
    /// Publish `snapshot` as the initial generation. Accepts an `Arc` so
    /// callers holding a shared snapshot (e.g. one pinned from another
    /// live index) can reuse it without duplicating any data.
    pub fn new(snapshot: impl Into<Arc<Snapshot>>) -> LiveIndex {
        LiveIndex {
            current: RwLock::new(snapshot.into()),
            writer: Mutex::new(()),
        }
    }

    /// The currently published snapshot. Cheap (one `Arc` clone under a
    /// read lock); the returned snapshot stays valid — and immutable —
    /// regardless of later publishes.
    pub fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read())
    }

    /// The published snapshot's epoch.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch()
    }

    /// Acquire the writer lock. The returned guard must be held while
    /// deriving a successor from [`LiveIndex::current`] through to
    /// [`WriteGuard::publish`], so concurrent writers chain rather than
    /// race. Publishing is a method *on the guard* — and the guard
    /// remembers which index it locked — so an unserialized publish, or
    /// one serialized against the wrong index, cannot be expressed.
    pub fn write_lock(&self) -> WriteGuard<'_> {
        WriteGuard {
            live: self,
            _guard: self.writer.lock(),
        }
    }
}

/// A held writer lock on one [`LiveIndex`] (from
/// [`LiveIndex::write_lock`]); the only way to publish a successor
/// snapshot. Dropping it releases the lock.
pub struct WriteGuard<'a> {
    live: &'a LiveIndex,
    _guard: MutexGuard<'a, ()>,
}

impl WriteGuard<'_> {
    /// Atomically publish `snapshot` as the locked index's new current
    /// generation and return it (a pointer swap under the read lock's
    /// write half — readers stall only for the swap).
    pub fn publish(&self, snapshot: Snapshot) -> Arc<Snapshot> {
        let snapshot = Arc::new(snapshot);
        *self.live.current.write() = Arc::clone(&snapshot);
        snapshot
    }
}

impl std::fmt::Debug for LiveIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.current();
        f.debug_struct("LiveIndex")
            .field("epoch", &snap.epoch())
            .field("generation", &snap.generation())
            .field("shards", &snap.num_shards())
            .field("delta_shards", &snap.num_delta_shards())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn snap(texts: &[&str]) -> Snapshot {
        Snapshot::build(Pipeline::new().parse_corpus(texts), 2, false)
    }

    #[test]
    fn readers_keep_their_pinned_snapshot_across_publishes() {
        let live = LiveIndex::new(snap(&["Anna ate cake.", "The cafe was busy."]));
        let pinned = live.current();
        let epoch_before = pinned.epoch();

        let guard = live.write_lock();
        let more = Pipeline::new().parse_documents(&["The barista poured a latte."], 2, 1);
        let next = live.current().with_added_documents(more);
        guard.publish(next);
        drop(guard);

        // The pinned reader still sees the old generation …
        assert_eq!(pinned.epoch(), epoch_before);
        assert_eq!(pinned.corpus().num_documents(), 2);
        // … while new readers see the published successor.
        let fresh = live.current();
        assert_ne!(fresh.epoch(), epoch_before);
        assert_eq!(fresh.corpus().num_documents(), 3);
        assert_eq!(live.epoch(), fresh.epoch());
    }

    #[test]
    fn concurrent_writers_chain_through_the_write_lock() {
        let live = Arc::new(LiveIndex::new(snap(&["Seed document one."])));
        std::thread::scope(|scope| {
            for w in 0..4 {
                let live = Arc::clone(&live);
                scope.spawn(move || {
                    let guard = live.write_lock();
                    let cur = live.current();
                    let first = cur.corpus().num_documents() as u32;
                    let docs = Pipeline::new().parse_documents(
                        &[format!("Writer {w} added a latte.")],
                        first,
                        1,
                    );
                    guard.publish(cur.with_added_documents(docs));
                    drop(guard);
                });
            }
        });
        // Every writer's document landed exactly once.
        assert_eq!(live.current().corpus().num_documents(), 5);
    }
}
