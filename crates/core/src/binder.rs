//! Per-sentence variable binding: evaluating normalized node paths directly
//! against a dependency tree, and enumerating the domains of entity / token
//! variables. This is the validation layer that removes the false positives
//! the decomposed index lookups may admit (§4.2.2's discussion, Example 4.7).

use crate::error::Error;
use koko_lang::{ElasticCond, NVarKind, NodeCond, NormQuery, Step, StepLabel};
use koko_nlp::{tree_stats, Axis, NodeStat, Sentence, Tid};
use koko_regex::Regex;
use std::collections::HashMap;

/// A half-open token span `[start, end)` within one sentence.
pub type Span = (u32, u32);

/// Compiled per-query state: regexes compiled once, paths pre-extracted.
pub struct CompiledQuery {
    pub norm: NormQuery,
    pub regexes: HashMap<String, Regex>,
}

impl CompiledQuery {
    pub fn compile(norm: NormQuery) -> Result<CompiledQuery, Error> {
        let mut regexes = HashMap::new();
        let mut add = |pat: &str| -> Result<(), Error> {
            if !regexes.contains_key(pat) {
                regexes.insert(pat.to_string(), Regex::new(pat)?);
            }
            Ok(())
        };
        for v in &norm.vars {
            match &v.kind {
                NVarKind::Node { abs } => {
                    for step in abs {
                        for c in &step.conds {
                            if let NodeCond::Regex(p) = c {
                                add(p)?;
                            }
                        }
                    }
                }
                NVarKind::Elastic { conds } => {
                    for c in conds {
                        if let ElasticCond::Regex(p) = c {
                            add(p)?;
                        }
                    }
                }
                _ => {}
            }
        }
        for cond in norm
            .satisfying
            .iter()
            .flat_map(|s| s.conds.iter().map(|w| &w.cond))
            .chain(norm.excluding.iter())
        {
            if let koko_lang::Pred::Matches(p) = &cond.pred {
                add(p)?;
            }
        }
        Ok(CompiledQuery { norm, regexes })
    }

    pub fn regex(&self, pat: &str) -> &Regex {
        self.regexes.get(pat).expect("regex compiled at query time")
    }
}

/// The per-sentence evaluation context.
pub struct SentCtx<'a> {
    pub sentence: &'a Sentence,
    pub stats: Vec<NodeStat>,
}

impl<'a> SentCtx<'a> {
    pub fn new(sentence: &'a Sentence) -> SentCtx<'a> {
        SentCtx {
            sentence,
            stats: tree_stats(sentence),
        }
    }

    pub fn len(&self) -> u32 {
        self.sentence.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.sentence.is_empty()
    }

    /// Subtree span of a token as a half-open range.
    pub fn subtree_span(&self, tid: Tid) -> Span {
        let st = self.stats[tid as usize];
        (st.left, st.right + 1)
    }
}

/// The enumerable domain of one variable within a sentence.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Node variable: candidate token ids.
    Nodes(Vec<Tid>),
    /// Entity / token-sequence variable: candidate spans.
    Spans(Vec<Span>),
    /// Derived variables (elastic spans, span targets): not enumerated here.
    Derived,
}

impl Domain {
    /// Number of candidate bindings (the GSP cost for non-∧ variables).
    pub fn size(&self) -> usize {
        match self {
            Domain::Nodes(v) => v.len(),
            Domain::Spans(v) => v.len(),
            Domain::Derived => 0,
        }
    }
}

/// Compute the domain of every variable for one sentence.
///
/// Subtree variables enumerate the subtree spans of their base variable's
/// bindings (the base is always declared earlier); consistency with the
/// chosen base binding is enforced at tuple-assembly time.
pub fn bind_domains(cq: &CompiledQuery, ctx: &SentCtx<'_>) -> Vec<Domain> {
    let mut domains: Vec<Domain> = Vec::with_capacity(cq.norm.vars.len());
    for v in &cq.norm.vars {
        let d = match &v.kind {
            NVarKind::Node { abs } => Domain::Nodes(eval_path(cq, ctx, abs)),
            NVarKind::Entity { etype } => Domain::Spans(
                ctx.sentence
                    .entities
                    .iter()
                    .filter(|m| etype.is_none_or(|t| m.etype == t))
                    .map(|m| (m.start, m.end + 1))
                    .collect(),
            ),
            NVarKind::Tokens { words } => Domain::Spans(token_occurrences(ctx.sentence, words)),
            NVarKind::Subtree { base } => {
                let base_idx = cq.norm.var(base).expect("base declared earlier");
                match &domains[base_idx] {
                    Domain::Nodes(tids) => {
                        Domain::Spans(tids.iter().map(|&t| ctx.subtree_span(t)).collect())
                    }
                    _ => Domain::Spans(Vec::new()),
                }
            }
            NVarKind::Elastic { .. } | NVarKind::Span { .. } => Domain::Derived,
        };
        domains.push(d);
    }
    domains
}

/// All matches of an absolute path against the sentence tree.
pub fn eval_path(cq: &CompiledQuery, ctx: &SentCtx<'_>, steps: &[Step]) -> Vec<Tid> {
    let Some(root) = ctx.sentence.root() else {
        return Vec::new();
    };
    // Paths written inside /ROOT:{…} are absolute: the first step is matched
    // against nodes reachable from the root *including* the root itself for
    // `//` (Example 2.1 binds a = //verb to the root verb "ate").
    let mut frontier: Vec<Tid> = Vec::new();
    let first = &steps[0];
    match first.axis {
        Axis::Child => {
            if step_matches(cq, ctx, first, root) {
                frontier.push(root);
            }
        }
        Axis::Descendant => {
            for t in 0..ctx.len() {
                if step_matches(cq, ctx, first, t) {
                    frontier.push(t);
                }
            }
        }
    }
    for step in &steps[1..] {
        let mut next = Vec::new();
        for &f in &frontier {
            match step.axis {
                Axis::Child => {
                    for c in ctx.sentence.children(f) {
                        if step_matches(cq, ctx, step, c) {
                            next.push(c);
                        }
                    }
                }
                Axis::Descendant => {
                    let span = ctx.subtree_span(f);
                    for t in span.0..span.1 {
                        if t != f
                            && is_descendant(ctx.sentence, t, f)
                            && step_matches(cq, ctx, step, t)
                        {
                            next.push(t);
                        }
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

fn is_descendant(sentence: &Sentence, mut t: Tid, anc: Tid) -> bool {
    while let Some(h) = sentence.tokens[t as usize].head {
        if h == anc {
            return true;
        }
        t = h;
    }
    false
}

/// Whether one token satisfies a step's label and all its conditions.
fn step_matches(cq: &CompiledQuery, ctx: &SentCtx<'_>, step: &Step, tid: Tid) -> bool {
    let token = &ctx.sentence.tokens[tid as usize];
    let label_ok = match &step.label {
        StepLabel::Pl(l) => token.label == *l,
        StepLabel::Pos(p) => token.pos == *p,
        StepLabel::Word(w) => token.lower == *w,
        StepLabel::Wildcard => true,
    };
    if !label_ok {
        return false;
    }
    step.conds.iter().all(|c| match c {
        NodeCond::Text(w) => token.lower == *w,
        NodeCond::Pos(p) => token.pos == *p,
        NodeCond::Etype(et) => ctx
            .sentence
            .entities
            .iter()
            .any(|m| m.etype == *et && m.start <= tid && tid <= m.end),
        NodeCond::Regex(p) => cq.regex(p).is_full_match(&token.text),
    })
}

/// All occurrences of a lower-cased word sequence, as half-open spans.
pub fn token_occurrences(sentence: &Sentence, words: &[String]) -> Vec<Span> {
    if words.is_empty() {
        return Vec::new();
    }
    let n = sentence.len();
    let mut out = Vec::new();
    for start in 0..n.saturating_sub(words.len() - 1) {
        if words
            .iter()
            .enumerate()
            .all(|(i, w)| sentence.tokens[start + i].lower == *w)
        {
            out.push((start as u32, (start + words.len()) as u32));
        }
    }
    out
}

/// Whether a span satisfies an elastic atom's conditions.
pub fn elastic_span_ok(
    cq: &CompiledQuery,
    ctx: &SentCtx<'_>,
    conds: &[ElasticCond],
    span: Span,
) -> bool {
    let len = span.1 - span.0;
    conds.iter().all(|c| match c {
        ElasticCond::MinTok(m) => len >= *m,
        ElasticCond::MaxTok(m) => len <= *m,
        ElasticCond::Etype(et) => {
            ctx.sentence.entities.iter().any(|m| {
                m.start == span.0 && m.end + 1 == span.1 && et.is_none_or(|t| m.etype == t)
            })
        }
        ElasticCond::Regex(p) => {
            let text = if len == 0 {
                String::new()
            } else {
                ctx.sentence.span_text(span.0, span.1 - 1)
            };
            cq.regex(p).is_full_match(&text)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_lang::{normalize, parse_query};
    use koko_nlp::Pipeline;

    fn compiled(q: &str) -> CompiledQuery {
        CompiledQuery::compile(normalize(&parse_query(q).unwrap()).unwrap()).unwrap()
    }

    fn fig1() -> Sentence {
        Pipeline::new()
            .parse_document(
                0,
                "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            )
            .sentences
            .remove(0)
    }

    #[test]
    fn example_21_bindings() {
        // Paper: a = "ate", b = "cream", c = "delicious" (unique bindings
        // for the Figure 1 sentence).
        let cq = compiled(koko_lang::queries::EXAMPLE_2_1);
        let s = fig1();
        let ctx = SentCtx::new(&s);
        let domains = bind_domains(&cq, &ctx);
        let dom = |name: &str| domains[cq.norm.var(name).unwrap()].clone();
        match dom("a") {
            Domain::Nodes(tids) => {
                let words: Vec<&str> = tids
                    .iter()
                    .map(|&t| s.tokens[t as usize].text.as_str())
                    .collect();
                assert_eq!(words, vec!["ate", "was", "ate"]);
            }
            other => panic!("{other:?}"),
        }
        match dom("b") {
            Domain::Nodes(tids) => {
                assert_eq!(tids.len(), 2); // cream (under ate1), pie (under ate2)
                assert_eq!(s.tokens[tids[0] as usize].text, "cream");
                assert_eq!(s.tokens[tids[1] as usize].text, "pie");
            }
            other => panic!("{other:?}"),
        }
        match dom("c") {
            Domain::Nodes(tids) => {
                assert_eq!(tids.len(), 1);
                assert_eq!(s.tokens[tids[0] as usize].text, "delicious");
            }
            other => panic!("{other:?}"),
        }
        // e:Entity binds all mentions.
        match dom("e") {
            Domain::Spans(spans) => assert!(!spans.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn path_with_text_condition() {
        let cq = compiled("extract x:Str from t if (/ROOT:{ x = //verb[text=\"was\"] })");
        let s = fig1();
        let ctx = SentCtx::new(&s);
        let domains = bind_domains(&cq, &ctx);
        match &domains[cq.norm.var("x").unwrap()] {
            Domain::Nodes(tids) => {
                assert_eq!(tids.len(), 1);
                assert_eq!(s.tokens[tids[0] as usize].text, "was");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn path_with_regex_condition() {
        let cq = compiled("extract x:Str from t if (/ROOT:{ x = //*[@regex=\"[a-z]+ous\"] })");
        let s = fig1();
        let ctx = SentCtx::new(&s);
        let domains = bind_domains(&cq, &ctx);
        match &domains[cq.norm.var("x").unwrap()] {
            Domain::Nodes(tids) => {
                assert_eq!(tids.len(), 1);
                assert_eq!(s.tokens[tids[0] as usize].text, "delicious");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn token_occurrences_found() {
        let s = fig1();
        let occ = token_occurrences(&s, &["ate".into(), "a".into()]);
        assert_eq!(occ, vec![(1, 3), (13, 15)]);
        assert!(token_occurrences(&s, &["zzz".into()]).is_empty());
    }

    #[test]
    fn elastic_conditions() {
        let cq = compiled("extract x:Str from t if (/ROOT:{ x = //verb + ^[mintok=1, maxtok=2] })");
        let s = fig1();
        let ctx = SentCtx::new(&s);
        let conds = match &cq
            .norm
            .vars
            .iter()
            .find(|v| matches!(v.kind, NVarKind::Elastic { .. }))
            .unwrap()
            .kind
        {
            NVarKind::Elastic { conds } => conds.clone(),
            other => panic!("{other:?}"),
        };
        assert!(elastic_span_ok(&cq, &ctx, &conds, (2, 3)));
        assert!(elastic_span_ok(&cq, &ctx, &conds, (2, 4)));
        assert!(!elastic_span_ok(&cq, &ctx, &conds, (2, 2)));
        assert!(!elastic_span_ok(&cq, &ctx, &conds, (2, 5)));
    }

    #[test]
    fn elastic_entity_condition() {
        let cq = compiled("extract x:Str from t if (/ROOT:{ x = //verb + ^[etype=\"Entity\"] })");
        let s = fig1();
        let ctx = SentCtx::new(&s);
        let conds = match &cq
            .norm
            .vars
            .iter()
            .find(|v| matches!(v.kind, NVarKind::Elastic { .. }))
            .unwrap()
            .kind
        {
            NVarKind::Elastic { conds } => conds.clone(),
            other => panic!("{other:?}"),
        };
        // "chocolate ice cream" is tokens 3..=5 → span (3,6).
        assert!(elastic_span_ok(&cq, &ctx, &conds, (3, 6)));
        assert!(!elastic_span_ok(&cq, &ctx, &conds, (3, 5)));
    }

    #[test]
    fn subtree_spans() {
        let s = fig1();
        let ctx = SentCtx::new(&s);
        // cream(5) subtree covers tokens 2..=9 → half-open (2, 10).
        assert_eq!(ctx.subtree_span(5), (2, 10));
    }

    #[test]
    fn bad_regex_fails_at_compile() {
        let norm = normalize(
            &parse_query("extract x:Str from t if (/ROOT:{ x = //*[@regex=\"(\"] })").unwrap(),
        )
        .unwrap();
        assert!(CompiledQuery::compile(norm).is_err());
    }
}
