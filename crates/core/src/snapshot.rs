//! [`Snapshot`] — the immutable, shareable half of the engine.
//!
//! `Koko` used to be a monolith owning corpus, index and store. The
//! sharded architecture splits it in two:
//!
//! * **`Snapshot`** (this module): everything a query needs to read — the
//!   parsed corpus, the per-shard indices and document stores, the shard
//!   router, and the embedding model. It is immutable after construction
//!   and `Send + Sync`, so one snapshot serves any number of concurrent
//!   query executions (shard fan-out within a query, and whole queries in
//!   parallel via `Koko::query_batch`).
//! * **the executor** ([`crate::engine`]): stateless per-query logic that
//!   borrows a snapshot.
//!
//! Construction is the "Parse text & build indices" preprocessing box of
//! Figure 2, parallelized: shard index/store builds run on worker threads
//! via `koko-par`, one task per shard.

use koko_embed::Embeddings;
use koko_index::{build_shards, Shard, ShardRouter};
use koko_nlp::{Corpus, Document, Sid};
use koko_storage::{Db, DocStore};
use std::sync::OnceLock;

/// An immutable, queryable view of a fully ingested corpus.
#[derive(Debug)]
pub struct Snapshot {
    corpus: Corpus,
    shards: Vec<Shard>,
    router: ShardRouter,
    embed: Embeddings,
    /// Global document store, assembled lazily from the per-shard stores
    /// for persistence (`Db::save_dir`) and other whole-corpus consumers.
    global_db: OnceLock<Db>,
}

// One snapshot is shared by every worker thread of a query fan-out; this
// asserts the property at compile time instead of at first use.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
};

impl Snapshot {
    /// Build every shard (index + document store) for `corpus`.
    /// `num_shards` 0 means one shard per available core; `parallel`
    /// gates whether shard builds use worker threads.
    pub fn build(corpus: Corpus, num_shards: usize, parallel: bool) -> Snapshot {
        let threads = if parallel { 0 } else { 1 };
        let shards = build_shards(&corpus, num_shards, threads);
        let router = ShardRouter::from_shards(&shards);
        Snapshot {
            corpus,
            shards,
            router,
            embed: Embeddings::shared().clone(),
            global_db: OnceLock::new(),
        }
    }

    /// Assemble a snapshot from already-built parts — the deserialization
    /// path ([`crate::persist`]), which must not re-run any build step.
    pub(crate) fn from_parts(
        corpus: Corpus,
        shards: Vec<Shard>,
        router: ShardRouter,
        embed: Embeddings,
    ) -> Snapshot {
        Snapshot {
            corpus,
            shards,
            router,
            embed,
            global_db: OnceLock::new(),
        }
    }

    /// The parsed corpus this snapshot was built from.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    pub fn embeddings(&self) -> &Embeddings {
        &self.embed
    }

    /// The shard holding global document `doc`.
    pub fn shard_for_doc(&self, doc: u32) -> &Shard {
        &self.shards[self.router.shard_of_doc(doc)]
    }

    /// The shard holding global sentence `sid`.
    pub fn shard_for_sid(&self, sid: Sid) -> &Shard {
        &self.shards[self.router.shard_of_sid(sid)]
    }

    /// Decode one article by global document id from its shard's store.
    pub fn load_document(&self, doc: u32) -> Result<Document, koko_storage::DecodeError> {
        self.shard_for_doc(doc).load_document(doc)
    }

    /// A database over the whole corpus, with the global document store
    /// assembled from the per-shard stores (blob copies, no re-encode).
    /// Built on first use and cached for the snapshot's lifetime.
    pub fn db(&self) -> &Db {
        self.global_db.get_or_init(|| {
            let mut docs = DocStore::new();
            for shard in &self.shards {
                docs.append_store(shard.store());
            }
            let db = Db::new();
            db.set_docs(docs);
            db
        })
    }

    /// Swap the embedding model in place (shards, corpus and the lazy
    /// global db are untouched — embeddings never affect them).
    pub fn set_embeddings(&mut self, embed: Embeddings) {
        self.embed = embed;
    }

    /// A copy of this snapshot with a different embedding model (shards
    /// and corpus are cloned, not rebuilt; the lazy global db resets).
    pub fn with_embeddings(&self, embed: Embeddings) -> Snapshot {
        Snapshot {
            corpus: self.corpus.clone(),
            shards: self.shards.clone(),
            router: self.router.clone(),
            embed,
            global_db: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn corpus() -> Corpus {
        let texts: Vec<String> = (0..12)
            .map(|i| format!("Anna ate cake number {i}. The cafe was busy."))
            .collect();
        Pipeline::new().parse_corpus(&texts)
    }

    #[test]
    fn snapshot_partitions_and_routes() {
        let c = corpus();
        let snap = Snapshot::build(c.clone(), 3, true);
        assert_eq!(snap.num_shards(), 3);
        let total: usize = snap.shards().iter().map(Shard::num_sentences).sum();
        assert_eq!(total, c.num_sentences());
        for doc in 0..c.num_documents() as u32 {
            assert_eq!(
                &snap.load_document(doc).unwrap(),
                &c.documents()[doc as usize]
            );
        }
    }

    #[test]
    fn global_db_matches_corpus() {
        let c = corpus();
        let snap = Snapshot::build(c.clone(), 4, false);
        let db = snap.db();
        assert_eq!(db.with_docs(|d| d.len()), c.num_documents());
        for doc in 0..c.num_documents() as u32 {
            assert_eq!(
                &db.load_document(doc).unwrap(),
                &c.documents()[doc as usize]
            );
        }
    }

    #[test]
    fn single_and_multi_shard_snapshots_cover_same_data() {
        let c = corpus();
        let one = Snapshot::build(c.clone(), 1, false);
        let many = Snapshot::build(c, 5, true);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(many.num_shards(), 5);
        let sents = |s: &Snapshot| s.shards().iter().map(Shard::num_sentences).sum::<usize>();
        assert_eq!(sents(&one), sents(&many));
    }
}
