//! [`Snapshot`] — one immutable *generation* of the engine's data.
//!
//! `Koko` used to be a monolith owning corpus, index and store. The
//! sharded architecture split it in two, and the live architecture made
//! the data half generational:
//!
//! * **`Snapshot`** (this module): everything a query needs to read — the
//!   parsed corpus, the per-shard indices and document stores (base shards
//!   first, then any append-only **delta shards** absorbed since the last
//!   compaction), the shard router, and the embedding model. A snapshot is
//!   immutable after construction and `Send + Sync`, so one snapshot
//!   serves any number of concurrent query executions.
//! * **[`LiveIndex`]** ([`crate::live`]): the mutable cell publishing the
//!   *current* snapshot to readers. Writers ([`Koko::add_texts`],
//!   [`Koko::compact`]) derive a successor snapshot — sharing every
//!   untouched shard by `Arc` — and publish it atomically.
//! * **the executor** ([`crate::engine`]): stateless per-query logic that
//!   borrows a snapshot.
//!
//! Every snapshot carries an **epoch**: a process-wide unique id minted at
//! construction. The result cache keys rows by epoch, so publishing any
//! successor invalidates cached rows without touching the cache itself,
//! and two engines sharing one cache can never serve each other's rows.
//! The **generation** counts base rebuilds (initial build = 1, +1 per
//! [`Snapshot::compacted`]) and is persisted in the `.koko` manifest.
//!
//! [`LiveIndex`]: crate::live::LiveIndex
//! [`Koko::add_texts`]: crate::Koko::add_texts
//! [`Koko::compact`]: crate::Koko::compact

use koko_embed::Embeddings;
use koko_index::{build_shards, Shard, ShardRouter};
use koko_nlp::{Corpus, Document, Sid};
use koko_storage::{Db, DocStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide epoch mint: every snapshot constructed in this process
/// gets a distinct epoch, so epoch-keyed cache entries are unambiguous
/// even across unrelated engines sharing one cache.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Documents a trailing delta shard may hold before `add_texts` seals it
/// and opens a new one. Appending to an open delta rebuilds its (small)
/// index; sealing bounds that rebuild cost while keeping the shard count
/// low between compactions. Results never depend on this policy — query
/// output is shard-layout independent.
pub const DELTA_SEAL_DOCS: usize = 256;

/// An immutable, queryable view of a fully ingested corpus: base shards
/// (balanced by the last build/compaction) followed by zero or more delta
/// shards (one per uncompacted ingest wave).
#[derive(Debug)]
pub struct Snapshot {
    corpus: Corpus,
    /// Base shards in `[..num_base]`, delta shards after. `Arc` so
    /// successor generations share untouched shards instead of cloning
    /// index data.
    shards: Vec<Arc<Shard>>,
    num_base: usize,
    router: ShardRouter,
    embed: Embeddings,
    /// Unique id of this snapshot (process-wide, monotonically minted).
    epoch: u64,
    /// Base-rebuild counter: 1 for a fresh build, +1 per compaction;
    /// preserved by delta appends and persisted in the `.koko` manifest.
    generation: u64,
    /// Global document store, assembled lazily from the per-shard stores
    /// for persistence (`Db::save_dir`) and other whole-corpus consumers.
    global_db: OnceLock<Db>,
}

// One snapshot is shared by every worker thread of a query fan-out; this
// asserts the property at compile time instead of at first use.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
};

impl Snapshot {
    /// Build every shard (index + document store) for `corpus` — a fresh
    /// generation-1 snapshot with no deltas. `num_shards` 0 means one
    /// shard per available core; `parallel` gates whether shard builds
    /// use worker threads.
    pub fn build(corpus: Corpus, num_shards: usize, parallel: bool) -> Snapshot {
        let threads = if parallel { 0 } else { 1 };
        let shards: Vec<Arc<Shard>> = build_shards(&corpus, num_shards, threads)
            .into_iter()
            .map(Arc::new)
            .collect();
        let router = ShardRouter::from_shards(&shards);
        let num_base = shards.len();
        Snapshot {
            corpus,
            shards,
            num_base,
            router,
            embed: Embeddings::shared().clone(),
            epoch: fresh_epoch(),
            generation: 1,
            global_db: OnceLock::new(),
        }
    }

    /// Assemble a snapshot from already-built parts — the deserialization
    /// path ([`crate::persist`]), which must not re-run any build step.
    pub(crate) fn from_parts(
        corpus: Corpus,
        shards: Vec<Arc<Shard>>,
        num_base: usize,
        generation: u64,
        router: ShardRouter,
        embed: Embeddings,
    ) -> Snapshot {
        let num_base = num_base.min(shards.len());
        Snapshot {
            corpus,
            shards,
            num_base,
            router,
            embed,
            epoch: fresh_epoch(),
            generation: generation.max(1),
            global_db: OnceLock::new(),
        }
    }

    /// The successor snapshot after absorbing `new_docs` (already parsed,
    /// with final global ids continuing this corpus). Base shards and
    /// existing documents are shared by `Arc` — the cost of an add is
    /// proportional to the *new* documents, not the corpus; the documents
    /// land in a delta shard — appended to the trailing delta while it
    /// stays under [`DELTA_SEAL_DOCS`] documents, otherwise in a fresh
    /// one. Generation is preserved; a new epoch is minted.
    pub fn with_added_documents(&self, new_docs: Vec<Document>) -> Snapshot {
        let new_docs: Vec<std::sync::Arc<Document>> =
            new_docs.into_iter().map(std::sync::Arc::new).collect();
        let corpus = self.corpus.extended(new_docs.clone());

        let mut shards = self.shards.clone();
        let open_delta = shards
            .last()
            .filter(|s| {
                shards.len() > self.num_base
                    && s.num_documents() + new_docs.len() <= DELTA_SEAL_DOCS
            })
            .cloned();
        match open_delta {
            Some(delta) => {
                // Grow the open delta from the corpus's already-parsed
                // documents (Arc clones — no store decode) plus the new
                // ones; only the small delta index is rebuilt.
                let range = delta.doc_range();
                let mut docs: Vec<std::sync::Arc<Document>> =
                    self.corpus.documents()[range.start as usize..range.end as usize].to_vec();
                docs.extend(new_docs.iter().cloned());
                let grown =
                    Shard::build_from_docs(delta.id(), &docs, range.start, delta.sid_range().start);
                *shards.last_mut().expect("delta exists") = Arc::new(grown);
            }
            None => {
                let doc_start = self.corpus.num_documents() as u32;
                let sid_start = self.corpus.num_sentences() as Sid;
                let delta = Shard::build_from_docs(shards.len(), &new_docs, doc_start, sid_start);
                shards.push(Arc::new(delta));
            }
        }
        let router = ShardRouter::from_shards(&shards);
        Snapshot {
            corpus,
            shards,
            num_base: self.num_base,
            router,
            embed: self.embed.clone(),
            epoch: fresh_epoch(),
            generation: self.generation,
            global_db: OnceLock::new(),
        }
    }

    /// The successor snapshot with every delta merged into balanced base
    /// shards: a full shard rebuild over the corpus via `plan_shards`,
    /// yielding exactly the layout a one-shot batch build would. Keeps the
    /// embedding model, bumps the generation, mints a new epoch.
    pub fn compacted(&self, num_shards: usize, parallel: bool) -> Snapshot {
        let threads = if parallel { 0 } else { 1 };
        let shards: Vec<Arc<Shard>> = build_shards(&self.corpus, num_shards, threads)
            .into_iter()
            .map(Arc::new)
            .collect();
        let router = ShardRouter::from_shards(&shards);
        let num_base = shards.len();
        Snapshot {
            corpus: self.corpus.clone(),
            shards,
            num_base,
            router,
            embed: self.embed.clone(),
            epoch: fresh_epoch(),
            generation: self.generation + 1,
            global_db: OnceLock::new(),
        }
    }

    /// The parsed corpus this snapshot was built from.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// All shards: base shards first, then delta shards in append order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// How many leading entries of [`Snapshot::shards`] are base shards.
    pub fn num_base_shards(&self) -> usize {
        self.num_base
    }

    /// The delta shards appended since the last build/compaction.
    pub fn delta_shards(&self) -> &[Arc<Shard>] {
        &self.shards[self.num_base..]
    }

    pub fn num_delta_shards(&self) -> usize {
        self.shards.len() - self.num_base
    }

    /// Documents living in delta shards (ingested since last compaction).
    pub fn num_delta_documents(&self) -> usize {
        self.delta_shards().iter().map(|s| s.num_documents()).sum()
    }

    /// This snapshot's unique epoch (result-cache key material; a new
    /// epoch is minted for every published update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Base-rebuild counter: 1 for a fresh build, +1 per compaction.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    pub fn embeddings(&self) -> &Embeddings {
        &self.embed
    }

    /// The shard holding global document `doc`.
    pub fn shard_for_doc(&self, doc: u32) -> &Shard {
        &self.shards[self.router.shard_of_doc(doc)]
    }

    /// The shard holding global sentence `sid`.
    pub fn shard_for_sid(&self, sid: Sid) -> &Shard {
        &self.shards[self.router.shard_of_sid(sid)]
    }

    /// Decode one article by global document id from its shard's store.
    pub fn load_document(&self, doc: u32) -> Result<Document, koko_storage::DecodeError> {
        self.shard_for_doc(doc).load_document(doc)
    }

    /// A database over the whole corpus, with the global document store
    /// assembled from the per-shard stores (blob copies, no re-encode).
    /// Built on first use and cached for the snapshot's lifetime.
    pub fn db(&self) -> &Db {
        self.global_db.get_or_init(|| {
            let mut docs = DocStore::new();
            for shard in &self.shards {
                docs.append_store(shard.store());
            }
            let db = Db::new();
            db.set_docs(docs);
            db
        })
    }

    /// Swap the embedding model in place (shards, corpus and the lazy
    /// global db are untouched — embeddings never affect them).
    pub fn set_embeddings(&mut self, embed: Embeddings) {
        self.embed = embed;
    }

    /// A copy of this snapshot with a different embedding model (shards
    /// are shared, not rebuilt; the lazy global db resets; a new epoch is
    /// minted because descriptor scores can change).
    pub fn with_embeddings(&self, embed: Embeddings) -> Snapshot {
        Snapshot {
            corpus: self.corpus.clone(),
            shards: self.shards.clone(),
            num_base: self.num_base,
            router: self.router.clone(),
            embed,
            epoch: fresh_epoch(),
            generation: self.generation,
            global_db: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;
    use koko_storage::Codec;

    fn corpus() -> Corpus {
        let texts: Vec<String> = (0..12)
            .map(|i| format!("Anna ate cake number {i}. The cafe was busy."))
            .collect();
        Pipeline::new().parse_corpus(&texts)
    }

    #[test]
    fn snapshot_partitions_and_routes() {
        let c = corpus();
        let snap = Snapshot::build(c.clone(), 3, true);
        assert_eq!(snap.num_shards(), 3);
        assert_eq!(snap.num_base_shards(), 3);
        assert_eq!(snap.num_delta_shards(), 0);
        assert_eq!(snap.generation(), 1);
        let total: usize = snap.shards().iter().map(|s| s.num_sentences()).sum();
        assert_eq!(total, c.num_sentences());
        for doc in 0..c.num_documents() as u32 {
            assert_eq!(&snap.load_document(doc).unwrap(), c.document(doc));
        }
    }

    #[test]
    fn global_db_matches_corpus() {
        let c = corpus();
        let snap = Snapshot::build(c.clone(), 4, false);
        let db = snap.db();
        assert_eq!(db.with_docs(|d| d.len()), c.num_documents());
        for doc in 0..c.num_documents() as u32 {
            assert_eq!(&db.load_document(doc).unwrap(), c.document(doc));
        }
    }

    #[test]
    fn single_and_multi_shard_snapshots_cover_same_data() {
        let c = corpus();
        let one = Snapshot::build(c.clone(), 1, false);
        let many = Snapshot::build(c, 5, true);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(many.num_shards(), 5);
        let sents = |s: &Snapshot| s.shards().iter().map(|s| s.num_sentences()).sum::<usize>();
        assert_eq!(sents(&one), sents(&many));
    }

    #[test]
    fn epochs_are_unique_and_updates_mint_new_ones() {
        let c = corpus();
        let a = Snapshot::build(c.clone(), 2, false);
        let b = Snapshot::build(c, 2, false);
        assert_ne!(a.epoch(), b.epoch());
        let more = Pipeline::new().parse_documents(
            &["The barista poured a latte."],
            a.corpus().num_documents() as u32,
            1,
        );
        let grown = a.with_added_documents(more);
        assert_ne!(grown.epoch(), a.epoch());
        let compacted = grown.compacted(2, false);
        assert_ne!(compacted.epoch(), grown.epoch());
    }

    #[test]
    fn delta_append_shares_base_shards_and_routes_new_docs() {
        let c = corpus();
        let base = Snapshot::build(c.clone(), 3, false);
        let first_new = c.num_documents() as u32;
        let more = Pipeline::new().parse_documents(
            &["The barista poured a latte. Anna was happy.", "go Falcons!"],
            first_new,
            1,
        );
        let grown = base.with_added_documents(more.clone());
        assert_eq!(grown.num_base_shards(), 3);
        assert_eq!(grown.num_delta_shards(), 1);
        assert_eq!(grown.num_delta_documents(), 2);
        assert_eq!(grown.generation(), base.generation());
        // Base shards are shared, not copied.
        for i in 0..3 {
            assert!(Arc::ptr_eq(&base.shards()[i], &grown.shards()[i]));
        }
        // New documents route to the delta and load back bit-identically.
        for (i, doc) in more.iter().enumerate() {
            let gid = first_new + i as u32;
            assert_eq!(&grown.load_document(gid).unwrap(), doc);
            assert!(grown.shard_for_doc(gid).doc_range().start >= first_new);
        }
        assert_eq!(grown.corpus().num_documents(), c.num_documents() + 2);
    }

    #[test]
    fn small_appends_grow_the_open_delta_until_sealed() {
        let c = corpus();
        let base = Snapshot::build(c.clone(), 2, false);
        let p = Pipeline::new();
        let mut snap = base;
        for wave in 0..3 {
            let first = snap.corpus().num_documents() as u32;
            let docs = p.parse_documents(&[format!("Wave {wave} latte.")], first, 1);
            snap = snap.with_added_documents(docs);
        }
        // Three small waves merged into one open delta shard.
        assert_eq!(snap.num_delta_shards(), 1);
        assert_eq!(snap.num_delta_documents(), 3);
    }

    #[test]
    fn compaction_restores_the_batch_layout() {
        let c = corpus();
        let base = Snapshot::build(c.clone(), 3, false);
        let more = Pipeline::new().parse_documents(
            &["The barista poured a latte."],
            c.num_documents() as u32,
            1,
        );
        let grown = base.with_added_documents(more);
        let compacted = grown.compacted(3, false);
        assert_eq!(compacted.num_delta_shards(), 0);
        assert_eq!(compacted.generation(), grown.generation() + 1);

        // Byte-identical to a one-shot build of the concatenated corpus.
        let batch = Snapshot::build(grown.corpus().clone(), 3, false);
        assert_eq!(batch.num_shards(), compacted.num_shards());
        for (a, b) in batch.shards().iter().zip(compacted.shards()) {
            assert_eq!(a.to_bytes(), b.to_bytes());
        }
    }
}
