//! [`Snapshot`] — one immutable *generation* of the engine's data.
//!
//! `Koko` used to be a monolith owning corpus, index and store. The
//! sharded architecture split it in two, and the live architecture made
//! the data half generational:
//!
//! * **`Snapshot`** (this module): everything a query needs to read — the
//!   parsed corpus, the per-shard indices and document stores (base shards
//!   first, then any append-only **delta shards** absorbed since the last
//!   compaction), the shard router, and the embedding model. A snapshot is
//!   immutable after construction and `Send + Sync`, so one snapshot
//!   serves any number of concurrent query executions.
//! * **[`LiveIndex`]** ([`crate::live`]): the mutable cell publishing the
//!   *current* snapshot to readers. Writers ([`Koko::add_texts`],
//!   [`Koko::compact`]) derive a successor snapshot — sharing every
//!   untouched shard by `Arc` — and publish it atomically.
//! * **the executor** ([`crate::engine`]): stateless per-query logic that
//!   borrows a snapshot.
//!
//! Since snapshot format v4, a snapshot opened from a memory-mapped file
//! ([`Snapshot::open_mmap`]) starts **lazy**: each shard slot holds a
//! closure that decodes the shard out of its mapped sections on first
//! touch (behind a `OnceLock`), and the global corpus is only
//! re-assembled from the document stores if something actually asks for
//! it. The classic accessors ([`Snapshot::shards`], [`Snapshot::corpus`])
//! keep their infallible signatures by materializing on demand — they
//! panic if the backing file turns out corrupt mid-life, which the
//! `try_`-variants ([`Snapshot::try_shards`], [`Snapshot::try_corpus`])
//! surface as structured errors instead; all engine read paths use the
//! `try_` forms, and write paths open eagerly so the panicking forms are
//! unreachable through the CLI and server.
//!
//! Every snapshot carries an **epoch**: a process-wide unique id minted at
//! construction. The result cache keys rows by epoch, so publishing any
//! successor invalidates cached rows without touching the cache itself,
//! and two engines sharing one cache can never serve each other's rows.
//! The **generation** counts base rebuilds (initial build = 1, +1 per
//! [`Snapshot::compacted`]) and is persisted in the `.koko` manifest.
//!
//! [`LiveIndex`]: crate::live::LiveIndex
//! [`Koko::add_texts`]: crate::Koko::add_texts
//! [`Koko::compact`]: crate::Koko::compact

use koko_embed::Embeddings;
use koko_index::{build_shards, Shard, ShardRouter};
use koko_nlp::{Corpus, Document, Sid};
use koko_storage::{Db, DocStore, SectionEntry, SnapshotFileError, SNAPSHOT_HEADER_LEN};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide epoch mint: every snapshot constructed in this process
/// gets a distinct epoch, so epoch-keyed cache entries are unambiguous
/// even across unrelated engines sharing one cache.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Documents a trailing delta shard may hold before `add_texts` seals it
/// and opens a new one. Appending to an open delta rebuilds its (small)
/// index; sealing bounds that rebuild cost while keeping the shard count
/// low between compactions. Results never depend on this policy — query
/// output is shard-layout independent.
pub const DELTA_SEAL_DOCS: usize = 256;

/// One shard's slot in a snapshot: either already materialized (eager
/// builds, v1–3 loads) or a decode-on-first-touch closure over a mapped
/// v4 section (lazy opens). The result — including a decode *failure* —
/// is computed once and cached; a corrupt shard reports the same
/// structured error to every query that touches it.
pub(crate) struct ShardSlot {
    cell: OnceLock<Result<Arc<Shard>, SnapshotFileError>>,
    source: Option<Box<dyn Fn() -> Result<Shard, SnapshotFileError> + Send + Sync>>,
}

impl ShardSlot {
    /// A slot holding an already-built shard.
    pub(crate) fn ready(shard: Arc<Shard>) -> Arc<ShardSlot> {
        let cell = OnceLock::new();
        let _ = cell.set(Ok(shard));
        Arc::new(ShardSlot { cell, source: None })
    }

    /// A slot that materializes on first touch by running `source`.
    pub(crate) fn lazy(
        source: impl Fn() -> Result<Shard, SnapshotFileError> + Send + Sync + 'static,
    ) -> Arc<ShardSlot> {
        Arc::new(ShardSlot {
            cell: OnceLock::new(),
            source: Some(Box::new(source)),
        })
    }

    /// The shard, materializing it now if needed. Two racing callers may
    /// both run the source; one result wins the cell and both see it
    /// (`OnceLock::get_or_try_init` is not yet stable — the duplicated
    /// decode is benign because sources are pure).
    pub(crate) fn get(&self) -> Result<&Arc<Shard>, SnapshotFileError> {
        if self.cell.get().is_none() {
            let source = self
                .source
                .as_ref()
                .expect("unmaterialized slot must carry a source");
            let computed = source().map(Arc::new);
            let _ = self.cell.set(computed);
        }
        self.cell
            .get()
            .expect("cell just filled")
            .as_ref()
            .map_err(Clone::clone)
    }
}

impl std::fmt::Debug for ShardSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cell.get() {
            Some(Ok(s)) => write!(f, "ShardSlot(ready #{})", s.id()),
            Some(Err(e)) => write!(f, "ShardSlot(failed: {e})"),
            None => write!(f, "ShardSlot(lazy)"),
        }
    }
}

/// Where one persisted shard's sections live in the backing file —
/// recorded at open/save so a later [`Snapshot::save`] to the same path
/// can *append* the changed shards and reuse these entries verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PersistedShardRef {
    pub shard: SectionEntry,
    pub store: SectionEntry,
    pub bounds: Option<SectionEntry>,
    pub blocks: Option<SectionEntry>,
}

/// Identity + section map of the v4 file this snapshot came from (or was
/// last saved to). `None` entries mean "changed since the file was
/// written — must be re-encoded on the next save".
#[derive(Debug, Clone)]
pub(crate) struct SnapshotBacking {
    pub path: std::path::PathBuf,
    /// The 26 header bytes as last seen; the appender verifies them
    /// against the file before reusing any section (a mismatch means the
    /// file was replaced and triggers a full rewrite instead).
    pub header: [u8; SNAPSHOT_HEADER_LEN],
    /// First byte past the committed table; appends start here.
    pub extent: u64,
    pub embed_entry: Option<SectionEntry>,
    /// Per shard-slot file locations; same length as the slot list.
    pub shard_refs: Vec<Option<PersistedShardRef>>,
}

/// An immutable, queryable view of a fully ingested corpus: base shards
/// (balanced by the last build/compaction) followed by zero or more delta
/// shards (one per uncompacted ingest wave).
pub struct Snapshot {
    /// The parsed corpus; for lazy (mmap) snapshots it is re-assembled
    /// from the shard document stores only on first request.
    corpus: OnceLock<Corpus>,
    /// Base shards in `[..num_base]`, delta shards after. Slots are
    /// `Arc`-shared so successor generations share untouched shards —
    /// and their materialization state — instead of cloning index data.
    slots: Vec<Arc<ShardSlot>>,
    /// Cache for the contiguous `&[Arc<Shard>]` view `shards()` serves.
    materialized: OnceLock<Vec<Arc<Shard>>>,
    num_base: usize,
    router: ShardRouter,
    embed: Embeddings,
    /// Unique id of this snapshot (process-wide, monotonically minted).
    epoch: u64,
    /// Base-rebuild counter: 1 for a fresh build, +1 per compaction;
    /// preserved by delta appends and persisted in the `.koko` manifest.
    generation: u64,
    /// Global document store, assembled lazily from the per-shard stores
    /// for persistence (`Db::save_dir`) and other whole-corpus consumers.
    global_db: OnceLock<Db>,
    /// Section map of the backing v4 file, for append-on-add saves.
    /// Behind a mutex so a successful append can refresh it through
    /// `&self` (saves take `&self`).
    pub(crate) backing: Mutex<Option<SnapshotBacking>>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("generation", &self.generation)
            .field("num_shards", &self.slots.len())
            .field("num_base", &self.num_base)
            .field(
                "materialized",
                &self.slots.iter().filter(|s| s.cell.get().is_some()).count(),
            )
            .finish()
    }
}

// One snapshot is shared by every worker thread of a query fan-out; this
// asserts the property at compile time instead of at first use.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
};

impl Snapshot {
    /// Build every shard (index + document store) for `corpus` — a fresh
    /// generation-1 snapshot with no deltas. `num_shards` 0 means one
    /// shard per available core; `parallel` gates whether shard builds
    /// use worker threads.
    pub fn build(corpus: Corpus, num_shards: usize, parallel: bool) -> Snapshot {
        let threads = if parallel { 0 } else { 1 };
        let shards: Vec<Arc<Shard>> = build_shards(&corpus, num_shards, threads)
            .into_iter()
            .map(Arc::new)
            .collect();
        let router = ShardRouter::from_shards(&shards);
        let num_base = shards.len();
        Snapshot::assemble_eager(
            corpus,
            shards,
            num_base,
            1,
            router,
            Embeddings::shared().clone(),
        )
    }

    /// Assemble a fully-materialized snapshot (every constructor except
    /// the lazy mmap open funnels through here).
    fn assemble_eager(
        corpus: Corpus,
        shards: Vec<Arc<Shard>>,
        num_base: usize,
        generation: u64,
        router: ShardRouter,
        embed: Embeddings,
    ) -> Snapshot {
        let corpus_cell = OnceLock::new();
        let _ = corpus_cell.set(corpus);
        let slots = shards.iter().cloned().map(ShardSlot::ready).collect();
        let materialized = OnceLock::new();
        let _ = materialized.set(shards);
        Snapshot {
            corpus: corpus_cell,
            slots,
            materialized,
            num_base,
            router,
            embed,
            epoch: fresh_epoch(),
            generation: generation.max(1),
            global_db: OnceLock::new(),
            backing: Mutex::new(None),
        }
    }

    /// Assemble a snapshot from already-built parts — the deserialization
    /// path ([`crate::persist`]), which must not re-run any build step.
    pub(crate) fn from_parts(
        corpus: Corpus,
        shards: Vec<Arc<Shard>>,
        num_base: usize,
        generation: u64,
        router: ShardRouter,
        embed: Embeddings,
    ) -> Snapshot {
        let num_base = num_base.min(shards.len());
        Snapshot::assemble_eager(corpus, shards, num_base, generation, router, embed)
    }

    /// Assemble a snapshot whose shards materialize lazily from `slots`
    /// — the v4 open path ([`crate::persist`]). The corpus cell starts
    /// empty; the router (already validated against the section table)
    /// answers the size questions until something forces materialization.
    pub(crate) fn from_lazy_parts(
        slots: Vec<Arc<ShardSlot>>,
        num_base: usize,
        generation: u64,
        router: ShardRouter,
        embed: Embeddings,
        backing: Option<SnapshotBacking>,
    ) -> Snapshot {
        let num_base = num_base.min(slots.len());
        Snapshot {
            corpus: OnceLock::new(),
            slots,
            materialized: OnceLock::new(),
            num_base,
            router,
            embed,
            epoch: fresh_epoch(),
            generation: generation.max(1),
            global_db: OnceLock::new(),
            backing: Mutex::new(backing),
        }
    }

    /// The successor snapshot after absorbing `new_docs` (already parsed,
    /// with final global ids continuing this corpus). Base shards and
    /// existing documents are shared by `Arc` — the cost of an add is
    /// proportional to the *new* documents, not the corpus; the documents
    /// land in a delta shard — appended to the trailing delta while it
    /// stays under [`DELTA_SEAL_DOCS`] documents, otherwise in a fresh
    /// one. Generation is preserved; a new epoch is minted.
    ///
    /// Materializes the corpus (and, transitively, every shard) — write
    /// paths open snapshots eagerly, so this panics only if a *lazily*
    /// opened backing file is corrupt (same contract as
    /// [`Snapshot::corpus`]).
    pub fn with_added_documents(&self, new_docs: Vec<Document>) -> Snapshot {
        let new_docs: Vec<std::sync::Arc<Document>> =
            new_docs.into_iter().map(std::sync::Arc::new).collect();
        let corpus = self.corpus().extended(new_docs.clone());

        let mut slots = self.slots.clone();
        let mut backing = self.backing.lock().expect("backing lock").clone();
        let shards = self.shards();
        let open_delta = shards
            .last()
            .filter(|s| {
                shards.len() > self.num_base
                    && s.num_documents() + new_docs.len() <= DELTA_SEAL_DOCS
            })
            .cloned();
        let changed_slot = match open_delta {
            Some(delta) => {
                // Grow the open delta from the corpus's already-parsed
                // documents (Arc clones — no store decode) plus the new
                // ones; only the small delta index is rebuilt.
                let range = delta.doc_range();
                let mut docs: Vec<std::sync::Arc<Document>> =
                    self.corpus().documents()[range.start as usize..range.end as usize].to_vec();
                docs.extend(new_docs.iter().cloned());
                let grown =
                    Shard::build_from_docs(delta.id(), &docs, range.start, delta.sid_range().start);
                let idx = slots.len() - 1;
                slots[idx] = ShardSlot::ready(Arc::new(grown));
                idx
            }
            None => {
                let doc_start = self.corpus().num_documents() as u32;
                let sid_start = self.corpus().num_sentences() as Sid;
                let delta = Shard::build_from_docs(slots.len(), &new_docs, doc_start, sid_start);
                slots.push(ShardSlot::ready(Arc::new(delta)));
                slots.len() - 1
            }
        };
        if let Some(b) = backing.as_mut() {
            // The regrown/new delta no longer matches any on-file
            // section; everything else can still be appended around.
            b.shard_refs.resize(slots.len(), None);
            b.shard_refs[changed_slot] = None;
        }
        let materialized: Vec<Arc<Shard>> = slots
            .iter()
            .map(|s| s.get().expect("slots materialized above").clone())
            .collect();
        let router = ShardRouter::from_shards(&materialized);
        let corpus_cell = OnceLock::new();
        let _ = corpus_cell.set(corpus);
        let materialized_cell = OnceLock::new();
        let _ = materialized_cell.set(materialized);
        Snapshot {
            corpus: corpus_cell,
            slots,
            materialized: materialized_cell,
            num_base: self.num_base,
            router,
            embed: self.embed.clone(),
            epoch: fresh_epoch(),
            generation: self.generation,
            global_db: OnceLock::new(),
            backing: Mutex::new(backing),
        }
    }

    /// The successor snapshot with every delta merged into balanced base
    /// shards: a full shard rebuild over the corpus via `plan_shards`,
    /// yielding exactly the layout a one-shot batch build would. Keeps the
    /// embedding model, bumps the generation, mints a new epoch.
    pub fn compacted(&self, num_shards: usize, parallel: bool) -> Snapshot {
        let threads = if parallel { 0 } else { 1 };
        let shards: Vec<Arc<Shard>> = build_shards(self.corpus(), num_shards, threads)
            .into_iter()
            .map(Arc::new)
            .collect();
        let router = ShardRouter::from_shards(&shards);
        let num_base = shards.len();
        // Every shard is rebuilt: no on-file section survives, so the
        // next save is a full rewrite (which also reclaims dead bytes
        // left behind by appends).
        Snapshot::assemble_eager(
            self.corpus().clone(),
            shards,
            num_base,
            self.generation + 1,
            router,
            self.embed.clone(),
        )
    }

    /// The parsed corpus this snapshot serves.
    ///
    /// For lazily-opened (mmap) snapshots the first call materializes
    /// every shard and re-assembles the corpus from the document stores.
    /// # Panics
    /// Panics if the lazy backing file is corrupt — use
    /// [`Snapshot::try_corpus`] on fallible read paths. Eagerly built
    /// snapshots (every constructor but the mmap open) never panic here.
    pub fn corpus(&self) -> &Corpus {
        self.try_corpus()
            .unwrap_or_else(|e| panic!("snapshot backing file is corrupt: {e}"))
    }

    /// [`Snapshot::corpus`] with corruption surfaced as a structured
    /// error instead of a panic.
    pub fn try_corpus(&self) -> Result<&Corpus, SnapshotFileError> {
        if let Some(c) = self.corpus.get() {
            return Ok(c);
        }
        let shards = self.try_shards()?;
        let label = self.backing_label();
        let per_shard: Vec<Result<Vec<Document>, koko_storage::DecodeError>> =
            koko_par::par_map(shards, 0, |_, shard| {
                let mut docs = Vec::with_capacity(shard.num_documents());
                for d in shard.doc_range() {
                    docs.push(shard.load_document(d)?);
                }
                Ok(docs)
            });
        let mut all = Vec::with_capacity(self.router.num_documents());
        for list in per_shard {
            all.extend(list.map_err(|e| SnapshotFileError::Corrupt {
                path: label.clone(),
                detail: format!("document store: {}", e.0),
            })?);
        }
        let corpus = Corpus::new(all);
        if corpus.num_sentences() != self.router.num_sentences() {
            return Err(SnapshotFileError::Corrupt {
                path: label,
                detail: format!(
                    "stores decode to {} sentences, router covers {}",
                    corpus.num_sentences(),
                    self.router.num_sentences()
                ),
            });
        }
        let _ = self.corpus.set(corpus);
        Ok(self.corpus.get().expect("corpus cell just filled"))
    }

    /// All shards: base shards first, then delta shards in append order.
    ///
    /// # Panics
    /// Materializes every lazy shard; panics if the backing file is
    /// corrupt — use [`Snapshot::try_shards`] on fallible read paths.
    pub fn shards(&self) -> &[Arc<Shard>] {
        self.try_shards()
            .unwrap_or_else(|e| panic!("snapshot backing file is corrupt: {e}"))
    }

    /// [`Snapshot::shards`] with corruption surfaced as a structured
    /// error instead of a panic.
    pub fn try_shards(&self) -> Result<&[Arc<Shard>], SnapshotFileError> {
        if let Some(v) = self.materialized.get() {
            return Ok(v);
        }
        let mut all = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            all.push(slot.get()?.clone());
        }
        let _ = self.materialized.set(all);
        Ok(self
            .materialized
            .get()
            .expect("materialized cell just filled"))
    }

    /// The shard at `slot`, materializing only it (unlike
    /// [`Snapshot::try_shards`], which touches every slot). The per-shard
    /// entry point the query executor uses so a top-k query over a mapped
    /// snapshot faults in only the shards it visits.
    pub fn try_shard(&self, slot: usize) -> Result<&Arc<Shard>, SnapshotFileError> {
        self.slots[slot].get()
    }

    fn backing_label(&self) -> String {
        self.backing
            .lock()
            .expect("backing lock")
            .as_ref()
            .map(|b| b.path.display().to_string())
            .unwrap_or_else(|| "<in-memory snapshot>".to_string())
    }

    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// Total documents across all shards (router-derived: available
    /// without materializing anything).
    pub fn num_documents(&self) -> usize {
        self.router.num_documents()
    }

    /// Total sentences across all shards (router-derived).
    pub fn num_sentences(&self) -> usize {
        self.router.num_sentences()
    }

    /// How many leading entries of [`Snapshot::shards`] are base shards.
    pub fn num_base_shards(&self) -> usize {
        self.num_base
    }

    /// The delta shards appended since the last build/compaction.
    ///
    /// # Panics
    /// Materializes (see [`Snapshot::shards`]).
    pub fn delta_shards(&self) -> &[Arc<Shard>] {
        &self.shards()[self.num_base..]
    }

    pub fn num_delta_shards(&self) -> usize {
        self.slots.len() - self.num_base
    }

    /// Documents living in delta shards (ingested since last compaction).
    /// Router-derived: delta shards are the trailing slots, so this is
    /// the document count past the last base boundary.
    pub fn num_delta_documents(&self) -> usize {
        if self.num_base == self.slots.len() {
            return 0;
        }
        self.router.num_documents() - self.router.doc_range_of(self.num_base).start as usize
    }

    /// This snapshot's unique epoch (result-cache key material; a new
    /// epoch is minted for every published update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Base-rebuild counter: 1 for a fresh build, +1 per compaction.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    pub fn embeddings(&self) -> &Embeddings {
        &self.embed
    }

    /// The shard holding global document `doc`. Materializes only that
    /// shard; panics if its section is corrupt (see [`Snapshot::shards`]).
    pub fn shard_for_doc(&self, doc: u32) -> &Shard {
        let slot = self.router.shard_of_doc(doc);
        self.slots[slot]
            .get()
            .unwrap_or_else(|e| panic!("snapshot backing file is corrupt: {e}"))
    }

    /// The shard holding global sentence `sid`. Materializes only that
    /// shard; panics if its section is corrupt (see [`Snapshot::shards`]).
    pub fn shard_for_sid(&self, sid: Sid) -> &Shard {
        let slot = self.router.shard_of_sid(sid);
        self.slots[slot]
            .get()
            .unwrap_or_else(|e| panic!("snapshot backing file is corrupt: {e}"))
    }

    /// Decode one article by global document id from its shard's store.
    pub fn load_document(&self, doc: u32) -> Result<Document, koko_storage::DecodeError> {
        self.shard_for_doc(doc).load_document(doc)
    }

    /// A database over the whole corpus, with the global document store
    /// assembled from the per-shard stores (blob copies, no re-encode).
    /// Built on first use and cached for the snapshot's lifetime.
    pub fn db(&self) -> &Db {
        self.global_db.get_or_init(|| {
            let mut docs = DocStore::new();
            for shard in self.shards() {
                docs.append_store(shard.store());
            }
            let db = Db::new();
            db.set_docs(docs);
            db
        })
    }

    /// Swap the embedding model in place (shards, corpus and the lazy
    /// global db are untouched — embeddings never affect them).
    pub fn set_embeddings(&mut self, embed: Embeddings) {
        self.embed = embed;
        // The on-file embeddings section no longer matches this model.
        if let Some(b) = self.backing.lock().expect("backing lock").as_mut() {
            b.embed_entry = None;
        }
    }

    /// A copy of this snapshot with a different embedding model (shards
    /// are shared, not rebuilt; the lazy global db resets; a new epoch is
    /// minted because descriptor scores can change).
    pub fn with_embeddings(&self, embed: Embeddings) -> Snapshot {
        let backing = self
            .backing
            .lock()
            .expect("backing lock")
            .clone()
            .map(|mut b| {
                b.embed_entry = None;
                b
            });
        let corpus_cell = OnceLock::new();
        if let Some(c) = self.corpus.get() {
            let _ = corpus_cell.set(c.clone());
        }
        Snapshot {
            corpus: corpus_cell,
            slots: self.slots.clone(),
            materialized: OnceLock::new(),
            num_base: self.num_base,
            router: self.router.clone(),
            embed,
            epoch: fresh_epoch(),
            generation: self.generation,
            global_db: OnceLock::new(),
            backing: Mutex::new(backing),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;
    use koko_storage::Codec;

    fn corpus() -> Corpus {
        let texts: Vec<String> = (0..12)
            .map(|i| format!("Anna ate cake number {i}. The cafe was busy."))
            .collect();
        Pipeline::new().parse_corpus(&texts)
    }

    #[test]
    fn snapshot_partitions_and_routes() {
        let c = corpus();
        let snap = Snapshot::build(c.clone(), 3, true);
        assert_eq!(snap.num_shards(), 3);
        assert_eq!(snap.num_base_shards(), 3);
        assert_eq!(snap.num_delta_shards(), 0);
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.num_documents(), c.num_documents());
        assert_eq!(snap.num_sentences(), c.num_sentences());
        let total: usize = snap.shards().iter().map(|s| s.num_sentences()).sum();
        assert_eq!(total, c.num_sentences());
        for doc in 0..c.num_documents() as u32 {
            assert_eq!(&snap.load_document(doc).unwrap(), c.document(doc));
        }
    }

    #[test]
    fn global_db_matches_corpus() {
        let c = corpus();
        let snap = Snapshot::build(c.clone(), 4, false);
        let db = snap.db();
        assert_eq!(db.with_docs(|d| d.len()), c.num_documents());
        for doc in 0..c.num_documents() as u32 {
            assert_eq!(&db.load_document(doc).unwrap(), c.document(doc));
        }
    }

    #[test]
    fn single_and_multi_shard_snapshots_cover_same_data() {
        let c = corpus();
        let one = Snapshot::build(c.clone(), 1, false);
        let many = Snapshot::build(c, 5, true);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(many.num_shards(), 5);
        let sents = |s: &Snapshot| s.shards().iter().map(|s| s.num_sentences()).sum::<usize>();
        assert_eq!(sents(&one), sents(&many));
    }

    #[test]
    fn epochs_are_unique_and_updates_mint_new_ones() {
        let c = corpus();
        let a = Snapshot::build(c.clone(), 2, false);
        let b = Snapshot::build(c, 2, false);
        assert_ne!(a.epoch(), b.epoch());
        let more = Pipeline::new().parse_documents(
            &["The barista poured a latte."],
            a.corpus().num_documents() as u32,
            1,
        );
        let grown = a.with_added_documents(more);
        assert_ne!(grown.epoch(), a.epoch());
        let compacted = grown.compacted(2, false);
        assert_ne!(compacted.epoch(), grown.epoch());
    }

    #[test]
    fn delta_append_shares_base_shards_and_routes_new_docs() {
        let c = corpus();
        let base = Snapshot::build(c.clone(), 3, false);
        let first_new = c.num_documents() as u32;
        let more = Pipeline::new().parse_documents(
            &["The barista poured a latte. Anna was happy.", "go Falcons!"],
            first_new,
            1,
        );
        let grown = base.with_added_documents(more.clone());
        assert_eq!(grown.num_base_shards(), 3);
        assert_eq!(grown.num_delta_shards(), 1);
        assert_eq!(grown.num_delta_documents(), 2);
        assert_eq!(grown.generation(), base.generation());
        // Base shards are shared, not copied.
        for i in 0..3 {
            assert!(Arc::ptr_eq(&base.shards()[i], &grown.shards()[i]));
        }
        // New documents route to the delta and load back bit-identically.
        for (i, doc) in more.iter().enumerate() {
            let gid = first_new + i as u32;
            assert_eq!(&grown.load_document(gid).unwrap(), doc);
            assert!(grown.shard_for_doc(gid).doc_range().start >= first_new);
        }
        assert_eq!(grown.corpus().num_documents(), c.num_documents() + 2);
        assert_eq!(grown.num_documents(), c.num_documents() + 2);
    }

    #[test]
    fn small_appends_grow_the_open_delta_until_sealed() {
        let c = corpus();
        let base = Snapshot::build(c.clone(), 2, false);
        let p = Pipeline::new();
        let mut snap = base;
        for wave in 0..3 {
            let first = snap.corpus().num_documents() as u32;
            let docs = p.parse_documents(&[format!("Wave {wave} latte.")], first, 1);
            snap = snap.with_added_documents(docs);
        }
        // Three small waves merged into one open delta shard.
        assert_eq!(snap.num_delta_shards(), 1);
        assert_eq!(snap.num_delta_documents(), 3);
    }

    #[test]
    fn compaction_restores_the_batch_layout() {
        let c = corpus();
        let base = Snapshot::build(c.clone(), 3, false);
        let more = Pipeline::new().parse_documents(
            &["The barista poured a latte."],
            c.num_documents() as u32,
            1,
        );
        let grown = base.with_added_documents(more);
        let compacted = grown.compacted(3, false);
        assert_eq!(compacted.num_delta_shards(), 0);
        assert_eq!(compacted.generation(), grown.generation() + 1);

        // Byte-identical to a one-shot build of the concatenated corpus.
        let batch = Snapshot::build(grown.corpus().clone(), 3, false);
        assert_eq!(batch.num_shards(), compacted.num_shards());
        for (a, b) in batch.shards().iter().zip(compacted.shards()) {
            assert_eq!(a.to_bytes(), b.to_bytes());
        }
    }

    #[test]
    fn lazy_slots_materialize_once_and_cache_failures() {
        use std::sync::atomic::AtomicUsize;
        let c = corpus();
        let built = Snapshot::build(c, 1, false);
        let shard = built.shards()[0].clone();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let slot = ShardSlot::lazy(move || {
            calls2.fetch_add(1, Ordering::SeqCst);
            Ok(Shard::from_bytes(&shard.to_bytes()).expect("valid bytes"))
        });
        assert!(slot.get().is_ok());
        assert!(slot.get().is_ok());
        assert_eq!(calls.load(Ordering::SeqCst), 1, "decoded exactly once");

        let failing = ShardSlot::lazy(|| {
            Err(SnapshotFileError::ChecksumMismatch {
                path: "x.koko".into(),
            })
        });
        assert!(matches!(
            failing.get(),
            Err(SnapshotFileError::ChecksumMismatch { .. })
        ));
        // The failure is cached, not recomputed into a different answer.
        assert!(matches!(
            failing.get(),
            Err(SnapshotFileError::ChecksumMismatch { .. })
        ));
    }
}
