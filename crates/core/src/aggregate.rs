//! Aggregation of evidence (§4.4): evaluating `satisfying` and `excluding`
//! clauses over whole documents.
//!
//! For every candidate value `e` of a clause's variable the engine computes
//! `score(e) = Σ wᵢ·mᵢ(e)` where each `mᵢ` aggregates the condition across
//! the document: booleans OR, `near` takes the best proximity, descriptors
//! sum per-sentence confidences (§4.4.1(c)). Every `mᵢ` is capped at 1.0,
//! matching Appendix A's footnote that the total score never exceeds 1.

use crate::binder::{token_occurrences, CompiledQuery};
use koko_embed::Embeddings;
use koko_index::{BlockVocab, ShardBoundStats, TokenVocab};
use koko_lang::{Cond, Pred};
use koko_nlp::{decompose, gazetteer, Document, Sentence};
use std::collections::HashMap;

/// Aggregation options (a slice of the engine options).
#[derive(Debug, Clone, Copy)]
pub struct AggOpts {
    /// Disable descriptor expansion + matching (the Figure 5 ablation).
    pub use_descriptors: bool,
    /// Threshold when a satisfying clause omits `with threshold`.
    pub default_threshold: f64,
    /// Maximum descriptor expansions (`E(d)` cap).
    pub expansion_k: usize,
    /// Minimum per-word similarity during expansion.
    pub expansion_min_sim: f64,
}

impl Default for AggOpts {
    fn default() -> Self {
        AggOpts {
            use_descriptors: true,
            default_threshold: 0.5,
            expansion_k: 120,
            expansion_min_sim: 0.55,
        }
    }
}

/// Upper bound on the score any row of one shard can reach, derived from
/// the compiled query plus [`ShardBoundStats`] alone — no document is
/// loaded or extracted. This is the max-score/WAND-style bound that lets
/// `ScoreDesc` top-k skip documents which provably cannot beat the current
/// k-th score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardScoreBound {
    /// Whether any tuple in the shard could clear *every* satisfying
    /// clause's threshold. `false` proves the shard contributes no rows at
    /// all (necessary-condition reasoning), so it can be skipped outright
    /// without affecting totals.
    pub feasible: bool,
    /// Upper bound on the reported row score — the last satisfying
    /// clause's maximum possible score, or `1.0` for clause-free queries
    /// (which score every row exactly 1.0). Meaningless when `feasible`
    /// is false (reported as 0.0).
    pub bound: f64,
}

/// Cached evaluation state for one query: descriptor expansions and clause
/// decompositions are computed once.
pub struct Aggregator<'a> {
    cq: &'a CompiledQuery,
    embed: &'a Embeddings,
    opts: AggOpts,
    /// descriptor → expansions (each a lower-cased word sequence + score).
    expansions: HashMap<String, Vec<(Vec<String>, f64)>>,
}

impl<'a> Aggregator<'a> {
    pub fn new(cq: &'a CompiledQuery, embed: &'a Embeddings, opts: AggOpts) -> Aggregator<'a> {
        let mut expansions = HashMap::new();
        for cond in cq
            .norm
            .satisfying
            .iter()
            .flat_map(|s| s.conds.iter().map(|w| &w.cond))
            .chain(cq.norm.excluding.iter())
        {
            if let Pred::DescRight(d) | Pred::DescLeft(d) = &cond.pred {
                if !expansions.contains_key(d) {
                    let exps = if opts.use_descriptors {
                        embed.expand(d, opts.expansion_k, opts.expansion_min_sim)
                    } else {
                        // Ablation: only the literal descriptor, no
                        // paraphrases (Figure 5's "Without descriptors").
                        vec![(d.to_lowercase(), 1.0)]
                    };
                    let word_seqs = exps
                        .into_iter()
                        .map(|(p, s)| {
                            (
                                p.split_whitespace().map(str::to_string).collect::<Vec<_>>(),
                                s,
                            )
                        })
                        .collect();
                    expansions.insert(d.clone(), word_seqs);
                }
            }
        }
        Aggregator {
            cq,
            embed,
            opts,
            expansions,
        }
    }

    /// The effective threshold of a satisfying clause.
    pub fn threshold(&self, clause_threshold: Option<f64>) -> f64 {
        clause_threshold.unwrap_or(self.opts.default_threshold)
    }

    /// `score(e)` for a candidate value across one document (§4.4.1).
    pub fn score(&self, doc: &Document, value: &str, conds: &[koko_lang::WeightedCond]) -> f64 {
        conds
            .iter()
            .map(|wc| wc.weight * self.confidence(doc, value, &wc.cond))
            .sum()
    }

    /// Whether an excluding condition holds for the value (boolean reading;
    /// scored conditions count when they reach 0.5).
    pub fn excluded(&self, doc: &Document, value: &str) -> bool {
        self.cq
            .norm
            .excluding
            .iter()
            .any(|c| self.confidence(doc, value, c) >= 0.5)
    }

    /// `mᵢ(e)`: the per-condition confidence, capped at 1.
    pub fn confidence(&self, doc: &Document, value: &str, cond: &Cond) -> f64 {
        let m = match &cond.pred {
            // ---- value-only conditions (no corpus access) ---------------
            Pred::Contains(s) => bool_score(token_seq_contains(value, s)),
            Pred::Mentions(s) => bool_score(value.contains(s.as_str())),
            Pred::Matches(p) => bool_score(self.cq.regex(p).is_full_match(value)),
            Pred::SimilarTo(d) => self.embed.phrase_similarity(value, d).max(0.0),
            Pred::InDict(name) => bool_score(
                gazetteer::dictionary(name)
                    .map(|words| words.iter().any(|w| w.eq_ignore_ascii_case(value)))
                    .unwrap_or(false),
            ),
            // ---- evidence gathered across the document ------------------
            Pred::FollowedBy(s) => bool_score(self.followed_by(doc, value, s, true)),
            Pred::PrecededBy(s) => bool_score(self.followed_by(doc, value, s, false)),
            Pred::Near(s) => self.near(doc, value, s),
            Pred::DescRight(d) => self.descriptor(doc, value, d, true),
            Pred::DescLeft(d) => self.descriptor(doc, value, d, false),
        };
        m.min(1.0)
    }

    /// `max_possible_score` for one shard (§4.4.1 read as a weighted sum
    /// of capped terms, the shape the max-score/WAND family exploits):
    /// every satisfying clause's score is `Σ wᵢ·mᵢ` with `mᵢ ∈ [0, 1]`,
    /// so `Σ max(wᵢ·bᵢ, 0)` — `bᵢ` an upper bound on `mᵢ` from the shard
    /// vocabulary — bounds it from above. A clause whose bound cannot
    /// reach its threshold proves the shard row-free; otherwise the
    /// reported bound is the *last* clause's (row scores report the last
    /// satisfying clause, `1.0` when there are no clauses).
    ///
    /// With `stats == None` (pre-v3 snapshot) every `bᵢ` falls back to
    /// the cap `1.0`, giving the conservative weights-only bound — still
    /// sound, it just prunes less.
    pub fn shard_score_bound(&self, stats: Option<&ShardBoundStats>) -> ShardScoreBound {
        self.score_bound(stats)
    }

    /// [`Aggregator::shard_score_bound`] over one document block's
    /// vocabulary ([`BlockVocab`]) — the block-max refinement. Block
    /// vocabularies are subsets of their shard's, so a block bound is
    /// always at least as tight as the shard bound for the same
    /// statistics, and an infeasible block provably contributes no rows.
    pub fn block_score_bound(&self, vocab: &BlockVocab<'_>) -> ShardScoreBound {
        self.score_bound(Some(vocab))
    }

    /// The bound derivation itself, generic over any [`TokenVocab`]
    /// (whole-shard statistics or one block's): vocabulary granularity
    /// changes how tight the bound is, never its soundness.
    fn score_bound<V: TokenVocab>(&self, vocab: Option<&V>) -> ShardScoreBound {
        let mut bound = 1.0; // clause-free queries score every row 1.0
        for clause in &self.cq.norm.satisfying {
            let clause_bound: f64 = clause
                .conds
                .iter()
                .map(|wc| (wc.weight * self.cond_upper_bound(&wc.cond, vocab)).max(0.0))
                .sum();
            if clause_bound < self.threshold(clause.threshold) {
                return ShardScoreBound {
                    feasible: false,
                    bound: 0.0,
                };
            }
            bound = clause_bound;
        }
        ShardScoreBound {
            feasible: true,
            bound,
        }
    }

    /// Upper bound `bᵢ ∈ [0, 1]` on one condition's confidence anywhere
    /// in the text `vocab` describes (a whole shard or one document
    /// block). Soundness rests on a necessary condition: candidate values
    /// are token spans of that text, so a literal token absent from the
    /// vocabulary can never appear in a value or next to one. Where no
    /// token-level gate is sound (substring/regex/similarity matching),
    /// the bound stays at the cap.
    fn cond_upper_bound<V: TokenVocab>(&self, cond: &Cond, vocab: Option<&V>) -> f64 {
        /// Entries past this size are not scanned; the bound stays 1.0.
        const DICT_SCAN_CAP: usize = 4096;
        match &cond.pred {
            Pred::Contains(s) => {
                let words = lower_words(s);
                if words.is_empty() {
                    return 0.0; // `token_seq_contains` never matches empty
                }
                match vocab {
                    Some(st) => bool_score(st.has_all_tokens(words.iter().map(String::as_str))),
                    None => 1.0,
                }
            }
            // Substring, regex and embedding matches are not token-aligned
            // ("choc" mentions-matches "chocolate") — no sound vocabulary
            // gate exists, so these keep the cap.
            Pred::Mentions(_) | Pred::Matches(_) | Pred::SimilarTo(_) => 1.0,
            Pred::InDict(name) => {
                let Some(entries) = gazetteer::dictionary(name) else {
                    return 0.0; // unknown dictionary never matches
                };
                let (Some(st), true) = (vocab, entries.len() <= DICT_SCAN_CAP) else {
                    return 1.0;
                };
                // A value can only equal an entry (ASCII-case-insensitively)
                // if every one of the entry's tokens exists in the shard.
                bool_score(entries.iter().any(|e| {
                    let words = lower_words(e);
                    st.has_all_tokens(words.iter().map(String::as_str))
                }))
            }
            Pred::FollowedBy(s) | Pred::PrecededBy(s) | Pred::Near(s) => {
                let words = lower_words(s);
                if words.is_empty() {
                    return 0.0;
                }
                match vocab {
                    Some(st) => bool_score(st.has_all_tokens(words.iter().map(String::as_str))),
                    None => 1.0,
                }
            }
            Pred::DescRight(d) | Pred::DescLeft(d) => {
                let Some(exps) = self.expansions.get(d) else {
                    return 0.0;
                };
                if exps.is_empty() {
                    return 0.0; // nothing expanded ⇒ descriptor never fires
                }
                match vocab {
                    Some(st) => bool_score(
                        exps.iter()
                            .any(|(words, _)| st.has_all_tokens(words.iter().map(String::as_str))),
                    ),
                    None => 1.0,
                }
            }
        }
    }

    /// Any occurrence of `value` immediately followed (or preceded) by the
    /// token sequence of `s`.
    fn followed_by(&self, doc: &Document, value: &str, s: &str, right: bool) -> bool {
        let vwords = lower_words(value);
        let swords = lower_words(s);
        if vwords.is_empty() || swords.is_empty() {
            return false;
        }
        for sentence in &doc.sentences {
            for (start, end) in token_occurrences(sentence, &vwords) {
                let ok = if right {
                    matches_at(sentence, end as usize, &swords)
                } else {
                    (start as usize)
                        .checked_sub(swords.len())
                        .is_some_and(|p| matches_at(sentence, p, &swords))
                };
                if ok {
                    return true;
                }
            }
        }
        false
    }

    /// Best proximity score `1/(1+distance)` across the document (§4.4.1).
    fn near(&self, doc: &Document, value: &str, s: &str) -> f64 {
        let vwords = lower_words(value);
        let swords = lower_words(s);
        if vwords.is_empty() || swords.is_empty() {
            return 0.0;
        }
        let mut best: f64 = 0.0;
        for sentence in &doc.sentences {
            let v_occ = token_occurrences(sentence, &vwords);
            if v_occ.is_empty() {
                continue;
            }
            let s_occ = token_occurrences(sentence, &swords);
            for (vs, ve) in &v_occ {
                for (ss, se) in &s_occ {
                    // Tokens separating the two occurrences.
                    let distance = if se <= vs {
                        (vs - se) as f64
                    } else if ve <= ss {
                        (ss - ve) as f64
                    } else {
                        0.0 // overlapping
                    };
                    best = best.max(1.0 / (1.0 + distance));
                }
            }
        }
        best
    }

    /// Descriptor confidence (§4.4.1(c)): per sentence containing the
    /// value, decompose into canonical clauses, match each expansion
    /// against clauses on the stated side of the value (damped by the
    /// `near` proximity formula), take the best expansion, and sum over
    /// sentences.
    fn descriptor(&self, doc: &Document, value: &str, d: &str, right: bool) -> f64 {
        let Some(exps) = self.expansions.get(d) else {
            return 0.0;
        };
        let vwords = lower_words(value);
        if vwords.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for sentence in &doc.sentences {
            let occurrences = token_occurrences(sentence, &vwords);
            if occurrences.is_empty() {
                continue;
            }
            let clauses = decompose(sentence);
            let lowers: Vec<&str> = sentence.tokens.iter().map(|t| t.lower.as_str()).collect();
            // max over expansions of (sum over clauses).
            let mut sentence_conf: f64 = 0.0;
            for (di, ki) in exps {
                let mut sum = 0.0;
                for clause in &clauses {
                    // Clause tokens on the correct side of the closest
                    // occurrence.
                    let mut best_clause: f64 = 0.0;
                    for &(vs, ve) in &occurrences {
                        let side_tokens: Vec<usize> = clause
                            .tokens
                            .iter()
                            .map(|&t| t as usize)
                            .filter(|&t| {
                                if right {
                                    t >= ve as usize
                                } else {
                                    t < vs as usize
                                }
                            })
                            .collect();
                        if side_tokens.is_empty() {
                            continue;
                        }
                        if let Some(first_match) = seq_occurs(&lowers, &side_tokens, di) {
                            let distance = if right {
                                (first_match as f64 - ve as f64).max(0.0)
                            } else {
                                (vs as f64 - first_match as f64 - 1.0).max(0.0)
                            };
                            let prox = 1.0 / (1.0 + distance);
                            best_clause = best_clause.max(ki * clause.score * prox);
                        }
                    }
                    sum += best_clause;
                }
                sentence_conf = sentence_conf.max(sum);
            }
            total += sentence_conf;
        }
        total
    }
}

fn bool_score(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

fn lower_words(s: &str) -> Vec<String> {
    s.split_whitespace().map(|w| w.to_lowercase()).collect()
}

/// Token-level containment: the token sequence of `needle` appears in the
/// token sequence of `hay` (the paper's `contains`; "chocolate ice cream"
/// contains "ice" but not "choc").
fn token_seq_contains(hay: &str, needle: &str) -> bool {
    let h: Vec<&str> = hay.split_whitespace().collect();
    let n: Vec<&str> = needle.split_whitespace().collect();
    if n.is_empty() || h.len() < n.len() {
        return false;
    }
    (0..=h.len() - n.len()).any(|i| n.iter().enumerate().all(|(j, w)| h[i + j] == *w))
}

/// Whether `words` matches the sentence tokens starting at `pos`.
fn matches_at(sentence: &Sentence, pos: usize, words: &[String]) -> bool {
    if pos + words.len() > sentence.len() {
        return false;
    }
    words
        .iter()
        .enumerate()
        .all(|(i, w)| sentence.tokens[pos + i].lower == *w)
}

/// Whether the word sequence `seq` occurs within the (sorted) token
/// positions `positions` of the sentence, in order with gaps allowed
/// (§4.4.1(c)'s occurrence definition); returns the position of the first
/// matched word.
fn seq_occurs(lowers: &[&str], positions: &[usize], seq: &[String]) -> Option<usize> {
    if seq.is_empty() {
        return None;
    }
    let mut si = 0usize;
    let mut first = None;
    for &p in positions {
        if lowers[p] == seq[si] {
            if si == 0 {
                first = Some(p);
            }
            si += 1;
            if si == seq.len() {
                return first;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::CompiledQuery;
    use koko_lang::{normalize, parse_query};
    use koko_nlp::Pipeline;

    fn setup(q: &str) -> (CompiledQuery, &'static Embeddings) {
        let cq = CompiledQuery::compile(normalize(&parse_query(q).unwrap()).unwrap()).unwrap();
        (cq, Embeddings::shared())
    }

    fn doc(text: &str) -> Document {
        Pipeline::new().parse_document(0, text)
    }

    #[test]
    fn boolean_conditions() {
        let (cq, embed) = setup(koko_lang::queries::EXAMPLE_2_3);
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let d = doc("Copper Kettle Cafe opened. It serves espresso.");
        let conds = &cq.norm.satisfying[0].conds;
        // str(x) contains "Cafe" → weight 1 condition fires.
        let score = agg.score(&d, "Copper Kettle Cafe", conds);
        assert!(score >= 1.0, "{score}");
        // Token-level contains: "Cafemath" does not contain token "Cafe".
        let score2 = agg.score(&d, "Cafemath", conds);
        assert!(score2 < 1.0, "{score2}");
    }

    #[test]
    fn followed_by_evidence() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x ", a cafe" {1}) with threshold 0.8"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let d = doc("We visited Copper Kettle , a cafe in Portland.");
        let conds = &cq.norm.satisfying[0].conds;
        assert_eq!(agg.score(&d, "Copper Kettle", conds), 1.0);
        assert_eq!(agg.score(&d, "Portland", conds), 0.0);
    }

    #[test]
    fn near_scoring() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x near "coffee" {1}) with threshold 0.1"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let d = doc("Cafe Benz serves great coffee.");
        let conds = &cq.norm.satisfying[0].conds;
        // "Cafe Benz" … distance 2 (serves, great) → 1/3.
        let s = agg.score(&d, "Cafe Benz", conds);
        assert!((s - 1.0 / 3.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn descriptor_matches_paraphrase() {
        // The paper's motivating case: "serves up delicious cappuccinos"
        // should count as evidence for [["serves coffee"]].
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x [["serves coffee"]] {1}) with threshold 0.1"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let d = doc("Copper Kettle serves delicious cappuccinos every morning.");
        let conds = &cq.norm.satisfying[0].conds;
        let s = agg.score(&d, "Copper Kettle", conds);
        assert!(s > 0.2, "paraphrase evidence should score: {s}");
        // No evidence on the left side.
        let (cq2, _) = setup(
            r#"extract x:Entity from "t" if () satisfying x ([["serves coffee"]] x {1}) with threshold 0.1"#,
        );
        let agg2 = Aggregator::new(&cq2, embed, AggOpts::default());
        let s2 = agg2.score(&d, "Copper Kettle", &cq2.norm.satisfying[0].conds);
        assert_eq!(s2, 0.0, "evidence is to the right of the mention");
    }

    #[test]
    fn descriptor_ablation_reduces_score() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x [["serves coffee"]] {1}) with threshold 0.1"#,
        );
        let with = Aggregator::new(&cq, embed, AggOpts::default());
        let without = Aggregator::new(
            &cq,
            embed,
            AggOpts {
                use_descriptors: false,
                ..AggOpts::default()
            },
        );
        let d = doc("Copper Kettle sells coffee downtown.");
        let conds = &cq.norm.satisfying[0].conds;
        let s_with = with.score(&d, "Copper Kettle", conds);
        let s_without = without.score(&d, "Copper Kettle", conds);
        assert!(s_with > 0.0, "{s_with}");
        assert_eq!(s_without, 0.0, "the literal phrase never occurs");
    }

    #[test]
    fn evidence_accumulates_across_sentences() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x [["serves coffee"]] {0.5}) or (x [["employs baristas"]] {0.5}) with threshold 0.5"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let conds = &cq.norm.satisfying[0].conds;
        let weak = doc("Copper Kettle serves espresso.");
        let strong = doc(
            "Copper Kettle serves espresso. Copper Kettle recently hired a star barista. Copper Kettle employs three baristas.",
        );
        let s_weak = agg.score(&weak, "Copper Kettle", conds);
        let s_strong = agg.score(&strong, "Copper Kettle", conds);
        assert!(
            s_strong > s_weak,
            "more mentions → more evidence ({s_strong} vs {s_weak})"
        );
    }

    #[test]
    fn excluding_conditions() {
        let (cq, embed) = setup(koko_lang::queries::EXAMPLE_2_3);
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let d = doc("They installed a La Marzocco at the bar.");
        assert!(agg.excluded(&d, "La Marzocco"));
        assert!(agg.excluded(&d, "la Marzocco"));
        assert!(!agg.excluded(&d, "Copper Kettle"));
    }

    #[test]
    fn scores_capped_at_one_per_condition() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x [["serves coffee"]] {1}) with threshold 0.1"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        // Many evidence sentences: sum would exceed 1 without the cap.
        let text = "Copper Kettle serves coffee. ".repeat(10);
        let d = doc(&text);
        let conds = &cq.norm.satisfying[0].conds;
        let s = agg.score(&d, "Copper Kettle", conds);
        assert!(s <= 1.0 + 1e-9, "{s}");
    }

    #[test]
    fn similar_to_condition() {
        let (cq, embed) = setup(koko_lang::queries::EXAMPLE_2_2_Q1);
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let d = doc("cities in asian countries such as Beijing and Tokyo.");
        let conds = &cq.norm.satisfying[0].conds;
        let tokyo = agg.score(&d, "Tokyo", conds);
        let china = agg.score(&d, "China", conds);
        assert!(tokyo > 0.25, "{tokyo}");
        assert!(tokyo > china, "{tokyo} vs {china}");
    }

    fn stats(text: &str) -> ShardBoundStats {
        let c = Pipeline::new().parse_corpus(&[text.to_string()]);
        ShardBoundStats::from_docs(c.documents())
    }

    #[test]
    fn shard_bound_conservative_without_stats() {
        // Two weighted conditions: the weights-only bound is their sum.
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x near "coffee" {0.6}) or (str(x) contains "cafe" {0.7}) with threshold 0.5"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let b = agg.shard_score_bound(None);
        assert!(b.feasible);
        assert!((b.bound - 1.3).abs() < 1e-9, "{}", b.bound);
    }

    #[test]
    fn shard_bound_gates_on_token_vocabulary() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (str(x) contains "cafe" {1}) with threshold 0.5"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        // Vocabulary with the token: full bound.
        let with = stats("The cafe on Main serves espresso.");
        let b = agg.shard_score_bound(Some(&with));
        assert!(b.feasible && (b.bound - 1.0).abs() < 1e-9, "{b:?}");
        // Vocabulary without it: no value can contain "cafe" ⇒ the clause
        // can never reach its threshold ⇒ the shard is provably row-free.
        let without = stats("The bakery on Main serves croissants.");
        let b = agg.shard_score_bound(Some(&without));
        assert!(!b.feasible && b.bound == 0.0, "{b:?}");
    }

    #[test]
    fn shard_bound_gates_proximity_and_descriptors() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x near "coffee" {1}) with threshold 0.1"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        assert!(
            agg.shard_score_bound(Some(&stats("Great coffee here.")))
                .feasible
        );
        assert!(
            !agg.shard_score_bound(Some(&stats("Great tea here.")))
                .feasible
        );

        // Descriptors: feasible only when some expansion's words all occur.
        let (cq2, _) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x [["serves coffee"]] {1}) with threshold 0.1"#,
        );
        let agg2 = Aggregator::new(&cq2, embed, AggOpts::default());
        assert!(
            agg2.shard_score_bound(Some(&stats("Copper Kettle serves delicious coffee.")))
                .feasible
        );
        assert!(
            !agg2
                .shard_score_bound(Some(&stats("An unrelated sentence about trains.")))
                .feasible
        );
    }

    #[test]
    fn shard_bound_is_one_for_clause_free_queries() {
        let (cq, embed) = setup("extract x:Entity from \"t\" if ()");
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        for st in [None, Some(stats("anything at all"))] {
            let b = agg.shard_score_bound(st.as_ref());
            assert!(b.feasible);
            assert_eq!(b.bound, 1.0);
        }
    }

    #[test]
    fn shard_bound_never_underestimates_real_scores() {
        // The invariant pruning rests on: for every document in the shard
        // and every candidate value, score ≤ bound.
        let texts = [
            "Copper Kettle Cafe serves great coffee downtown.",
            "The bakery sells bread. No beverages at all.",
        ];
        for q in [
            koko_lang::queries::EXAMPLE_2_3,
            r#"extract x:Entity from "t" if () satisfying x (x near "coffee" {0.5}) or (str(x) contains "Cafe" {0.5}) with threshold 0.1"#,
        ] {
            let (cq, embed) = setup(q);
            let agg = Aggregator::new(&cq, embed, AggOpts::default());
            for text in texts {
                let st = stats(text);
                let b = agg.shard_score_bound(Some(&st));
                let d = doc(text);
                let last = cq.norm.satisfying.last().unwrap();
                // Candidate values are always spans of the shard's own
                // text — the precondition the bound's soundness rests on —
                // so only probe values the document actually contains.
                let values = ["Copper Kettle Cafe", "Copper Kettle", "bakery", "coffee"]
                    .into_iter()
                    .filter(|v| text.to_lowercase().contains(&v.to_lowercase()));
                for value in values {
                    let all_pass = cq.norm.satisfying.iter().all(|clause| {
                        agg.score(&d, value, &clause.conds) >= agg.threshold(clause.threshold)
                    });
                    if !b.feasible {
                        // An infeasible shard can produce no row at all.
                        assert!(!all_pass, "infeasible shard passed {value:?} in {text:?}");
                    } else {
                        // Row scores (last clause) can never exceed the bound.
                        let s = agg.score(&d, value, &last.conds);
                        assert!(
                            s <= b.bound + 1e-9,
                            "{s} > {} for {value:?} in {text:?}",
                            b.bound
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_bound_unknown_dictionary_is_infeasible() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (str(x) in dict("NoSuchDict") {1}) with threshold 0.5"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        assert!(!agg.shard_score_bound(None).feasible);
        let (cq2, _) = setup(
            r#"extract x:Entity from "t" if () satisfying x (str(x) in dict("Location") {1}) with threshold 0.5"#,
        );
        let agg2 = Aggregator::new(&cq2, embed, AggOpts::default());
        // Known dictionary: feasible when an entry's tokens are present…
        assert!(
            agg2.shard_score_bound(Some(&stats("Portland is nice.")))
                .feasible
        );
        // …and conservative without stats.
        assert!(agg2.shard_score_bound(None).feasible);
    }

    #[test]
    fn block_bound_gates_per_block() {
        // One shard, two docs, one doc per block: the block with the query
        // vocabulary stays feasible, the other is provably row-free even
        // though the shard-wide bound (union of both) remains feasible.
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (str(x) contains "coffee" {1}) with threshold 0.5"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let c = Pipeline::new().parse_corpus(&[
            "Copper Kettle serves coffee downtown.".to_string(),
            "The bakery sells bread only.".to_string(),
        ]);
        let shard = ShardBoundStats::from_docs(c.documents());
        assert!(agg.shard_score_bound(Some(&shard)).feasible);
        let blocks = koko_index::BlockBoundStats::from_docs(c.documents(), 1);
        assert_eq!(blocks.num_blocks(), 2);
        let b0 = agg.block_score_bound(&blocks.block(0));
        let b1 = agg.block_score_bound(&blocks.block(1));
        assert!(b0.feasible, "{b0:?}");
        assert!((b0.bound - 1.0).abs() < 1e-9, "{b0:?}");
        assert!(!b1.feasible, "{b1:?}");
    }

    #[test]
    fn in_dict_condition() {
        let (cq, embed) = setup(
            r#"extract x:Entity from "t" if () satisfying x (x near "x" {1}) with threshold 0.9 excluding (str(x) in dict("Location"))"#,
        );
        let agg = Aggregator::new(&cq, embed, AggOpts::default());
        let d = doc("Portland is nice.");
        assert!(agg.excluded(&d, "Portland"));
        assert!(!agg.excluded(&d, "Copper Kettle"));
    }
}
