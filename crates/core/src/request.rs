//! Per-request query options: the [`QueryRequest`] builder and the
//! [`Explain`] report.
//!
//! [`Koko::query`](crate::Koko::query) evaluates with engine-wide defaults;
//! `QueryRequest` is the same execution path with per-call control:
//!
//! ```
//! use koko_core::{Koko, Order, QueryRequest};
//!
//! let koko = Koko::from_texts(&[
//!     "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
//!     "Anna ate some delicious cheesecake that she bought at a grocery store.",
//! ]);
//! let out = QueryRequest::new(koko_lang::queries::EXAMPLE_2_1)
//!     .limit(1)
//!     .order(Order::DocOrder)
//!     .run(&koko)
//!     .unwrap();
//! assert_eq!(out.rows.len(), 1);
//! assert!(out.truncated, "a second match exists");
//! ```
//!
//! # Row-ordering contract
//!
//! Result *rows* (content, order, scores) are a deterministic function
//! of the corpus, the query, and the request — independent of shard
//! count, parallelism, caches, and incremental-ingest history. (The
//! bookkeeping fields are looser on early-terminated runs:
//! `total_matches` is a lower bound and `truncated` errs conservative,
//! and how far a scan got may depend on shard layout and cache state;
//! both are exact whenever no `limit` is in play.)
//!
//! * [`Order::DocOrder`] (the default) returns rows grouped by document —
//!   documents ordered by the lexicographic order of their decimal ids
//!   (the engine's historical tuple order, kept byte-for-byte stable) —
//!   and, within a document, in extraction order (the engine's canonical
//!   tuple sort). This is exactly the order [`Koko::query`] has always
//!   produced.
//! * [`Order::ScoreDesc`] stably re-sorts that sequence by descending
//!   score: ties keep their `DocOrder` position, so the effective key is
//!   (score desc, doc, row).
//!
//! Under either order, `limit(k)` returns a *prefix* of the unlimited
//! run: rows `offset .. offset + k` of the full sequence.
//!
//! [`Koko::query`]: crate::Koko::query

use crate::engine::{Koko, QueryOutput};
use crate::error::Error;
use std::time::Duration;

/// Row ordering of a [`QueryRequest`]'s results (see the
/// [module docs](self) for the exact contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Order {
    /// Document order, then within-document extraction order — byte-wise
    /// identical to the historical [`Koko::query`](crate::Koko::query)
    /// ordering. Supports top-k early termination.
    #[default]
    DocOrder,
    /// Highest score first; ties broken stably by `DocOrder` position,
    /// i.e. (score desc, doc, row). With a `limit`, each shard runs a
    /// bounded-heap top-k driven by WAND-style score upper bounds: once
    /// `offset + limit` rows are held, documents whose shard bound cannot
    /// beat the worst held score are skipped without being loaded or
    /// extracted (visible in
    /// [`Profile::bound_skipped_docs`](crate::Profile::bound_skipped_docs)).
    /// Returned rows are byte-identical to the full-scan reference.
    ScoreDesc,
}

/// One query with per-request evaluation options — the single entry path
/// every other query API ([`Koko::query`], [`Koko::query_with_cache`],
/// [`Koko::query_batch`], the wire protocol, the CLI) is built on.
///
/// The builder is consuming: start from [`QueryRequest::new`], chain
/// options, finish with [`QueryRequest::run`]. A default request (no
/// options touched) answers byte-identically to [`Koko::query`].
///
/// [`Koko::query`]: crate::Koko::query
/// [`Koko::query_with_cache`]: crate::Koko::query_with_cache
/// [`Koko::query_batch`]: crate::Koko::query_batch
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    pub(crate) text: String,
    pub(crate) limit: Option<usize>,
    pub(crate) offset: usize,
    pub(crate) min_score: Option<f64>,
    pub(crate) order: Order,
    pub(crate) deadline: Option<Duration>,
    pub(crate) cache: bool,
    pub(crate) explain: bool,
}

impl QueryRequest {
    /// A request for `text` with default semantics (everything returned,
    /// `DocOrder`, caches consulted, no deadline, no explain report).
    pub fn new(text: impl Into<String>) -> QueryRequest {
        QueryRequest {
            text: text.into(),
            limit: None,
            offset: 0,
            min_score: None,
            order: Order::DocOrder,
            deadline: None,
            cache: true,
            explain: false,
        }
    }

    /// The query text this request evaluates.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Return at most `k` rows (after [`QueryRequest::offset`]). This is
    /// *early termination*, not post-filtering. Under [`Order::DocOrder`]
    /// each shard stops loading, extracting and scoring documents as soon
    /// as it has `offset + k` surviving rows. Under [`Order::ScoreDesc`]
    /// each shard keeps a bounded min-heap of its best `offset + k` rows
    /// and skips documents whose score upper bound cannot beat the heap
    /// floor. Skipped work is visible in [`Profile::docs_skipped`] /
    /// [`Profile::candidates_skipped`] / [`Profile::bound_skipped_docs`].
    ///
    /// [`Profile::docs_skipped`]: crate::Profile::docs_skipped
    /// [`Profile::candidates_skipped`]: crate::Profile::candidates_skipped
    /// [`Profile::bound_skipped_docs`]: crate::Profile::bound_skipped_docs
    pub fn limit(mut self, k: usize) -> QueryRequest {
        self.limit = Some(k);
        self
    }

    /// Skip the first `n` rows of the ordered result — pagination's page
    /// start. Skipped rows still count toward
    /// [`QueryOutput::total_matches`] but do not set
    /// [`QueryOutput::truncated`] (only matches past the *end* of the
    /// window do), so advancing the offset until `truncated` is `false`
    /// walks every match exactly once.
    ///
    /// [`QueryOutput::total_matches`]: crate::QueryOutput::total_matches
    /// [`QueryOutput::truncated`]: crate::QueryOutput::truncated
    pub fn offset(mut self, n: usize) -> QueryRequest {
        self.offset = n;
        self
    }

    /// Drop rows whose aggregated score is below `s`. The floor is
    /// applied inside the aggregation stage — below the merge, the
    /// limit/offset window and the result cache — so pruned rows are
    /// never materialized, never count toward `limit`, and are tallied in
    /// [`Profile::min_score_pruned`].
    ///
    /// [`Profile::min_score_pruned`]: crate::Profile::min_score_pruned
    pub fn min_score(mut self, s: f64) -> QueryRequest {
        self.min_score = Some(s);
        self
    }

    /// Row ordering (default [`Order::DocOrder`]).
    pub fn order(mut self, order: Order) -> QueryRequest {
        self.order = order;
        self
    }

    /// Abandon the query with [`Error::DeadlineExceeded`] once `budget`
    /// wall-clock has elapsed (measured from [`QueryRequest::run`]). The
    /// check runs between pipeline stages and at document boundaries in
    /// the extraction loop; a `Duration::ZERO` budget always fails at the
    /// first check.
    ///
    /// [`Error::DeadlineExceeded`]: crate::Error::DeadlineExceeded
    pub fn deadline(mut self, budget: Duration) -> QueryRequest {
        self.deadline = Some(budget);
        self
    }

    /// Consult and fill the compiled-query and result caches (default
    /// `true`). `false` bypasses both for this call only — nothing is
    /// read, written, or counted.
    pub fn cache(mut self, use_cache: bool) -> QueryRequest {
        self.cache = use_cache;
        self
    }

    /// Attach an [`Explain`] report to the output: the chosen skip plan,
    /// per-shard candidate/row counts, and early-termination decisions
    /// (per-stage timings live in [`Profile`](crate::Profile) as always).
    /// Explain forces a real evaluation, so the result cache is not
    /// consulted for this call (the compiled-query cache still is).
    pub fn explain(mut self, explain: bool) -> QueryRequest {
        self.explain = explain;
        self
    }

    /// Evaluate this request against an engine. Equivalent to
    /// [`Koko::run`](crate::Koko::run).
    pub fn run(&self, koko: &Koko) -> Result<QueryOutput, Error> {
        koko.run(self)
    }
}

/// Where a query's time and pruning went — attached to
/// [`QueryOutput::explain`](crate::QueryOutput::explain) by
/// [`QueryRequest::explain`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Explain {
    /// Human-readable rendering of the skip plan GSP chose for the first
    /// planned candidate sentence (one line per horizontal condition;
    /// empty when the query has none or no candidate reached planning).
    pub plans: Vec<String>,
    /// Per-shard evaluation counters, in shard order (base shards first,
    /// then deltas).
    pub shards: Vec<ShardExplain>,
    /// Per-worker fan-out accounting when the query was answered by a
    /// cluster coordinator (one entry per worker contacted, in shard-map
    /// order). Always empty for single-node execution, so single-node
    /// explain output is byte-identical to what it was before clustering
    /// existed.
    pub remote_shards: Vec<RemoteShardExplain>,
}

impl Explain {
    /// Candidate sentences across all shards (DPLI output).
    pub fn total_candidates(&self) -> usize {
        self.shards.iter().map(|s| s.candidates).sum()
    }

    /// Whether any shard stopped early because the limit was reached.
    pub fn early_terminated(&self) -> bool {
        self.shards.iter().any(|s| s.early_stopped)
    }

    /// Workers that answered (no error), when this report came from a
    /// cluster coordinator. Zero for single-node execution.
    pub fn healthy_workers(&self) -> usize {
        self.remote_shards
            .iter()
            .filter(|w| w.error.is_none())
            .count()
    }

    /// Workers that failed (timeout, disconnect, refused) — in partial
    /// mode their shards are missing from the returned rows.
    pub fn failed_workers(&self) -> usize {
        self.remote_shards.len() - self.healthy_workers()
    }
}

/// One worker's slice of a coordinator fan-out, attached to
/// [`Explain::remote_shards`] by the cluster coordinator. Mirrors
/// [`ShardExplain`] one level up: a worker serves a contiguous range of
/// documents (a subset of base/delta shards) and this records what its
/// round-trip contributed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoteShardExplain {
    /// Worker name from the shard map (e.g. `"w0"`).
    pub worker: String,
    /// Address the reply actually came from (primary or replica).
    pub addr: String,
    /// First global document id this worker owns.
    pub doc_base: u32,
    /// Number of documents this worker serves.
    pub docs: u32,
    /// Rows the worker contributed to the merged result.
    pub rows: usize,
    /// Wall-clock round-trip of the worker call as seen by the
    /// coordinator (enqueue to reply), in milliseconds.
    pub rtt_ms: f64,
    /// Structured error when the worker failed: `"timeout"`,
    /// `"disconnect"`, `"unavailable"`, or the worker's own error text.
    /// `None` on a healthy reply.
    pub error: Option<String>,
    /// Retries spent before the reply (0 = first attempt answered).
    pub retries: usize,
}

/// One shard's slice of an [`Explain`] report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardExplain {
    /// Shard id (position in the snapshot's shard list).
    pub shard: usize,
    /// Whether this is an append-only delta shard (live ingest).
    pub is_delta: bool,
    /// Index lookups DPLI performed (dominant paths only).
    pub lookups: usize,
    /// Candidate sentences DPLI produced for this shard.
    pub candidates: usize,
    /// Distinct candidate documents those sentences live in.
    pub docs: usize,
    /// Documents actually loaded + extracted (< `docs` iff the shard
    /// terminated early).
    pub docs_processed: usize,
    /// Deduplicated raw tuples extracted from the processed documents.
    pub tuples: usize,
    /// Rows this shard handed to the merge. Equal to the rows that
    /// survived aggregation (threshold + `min_score`), except under a
    /// ranked top-k, where only the shard's best `offset + limit` rows
    /// are kept.
    pub rows: usize,
    /// Rows dropped by the request's `min_score` floor.
    pub min_score_pruned: usize,
    /// True when the shard stopped before `docs` ran out because the
    /// requested `offset + limit` rows were already found (`DocOrder`),
    /// or because no remaining document could beat the top-k heap floor
    /// (`ScoreDesc`).
    pub early_stopped: bool,
    /// Upper bound on any row score this shard could produce, derived
    /// from the compiled query plus the shard's bound statistics (`1.0`
    /// or the weights-only sum when statistics are absent, e.g. pre-v3
    /// snapshots). `0.0` when the bound proves the shard row-free.
    pub score_bound: f64,
    /// The `ScoreDesc` top-k heap floor when the shard finished with a
    /// full heap — the score a document had to beat to matter. `None`
    /// when the heap never filled or the request was not a ranked top-k.
    pub heap_floor: Option<f64>,
    /// Candidate documents skipped because [`ShardExplain::score_bound`]
    /// (or the shard's infeasibility) proved they could not beat
    /// [`ShardExplain::heap_floor`]. Subset of the skipped-document
    /// totals in [`Profile`](crate::Profile).
    pub bound_skipped_docs: usize,
    /// Candidate documents skipped by the *block-max* refinement: the
    /// document's 128-doc block bound proved it row-free or unable to
    /// beat the heap floor while the shard-wide bound alone could not.
    /// Disjoint from [`ShardExplain::bound_skipped_docs`]; zero when the
    /// snapshot carries no block statistics (pre-v4 formats or stripped
    /// sections).
    pub block_bound_skipped_docs: usize,
    /// Galloping probes the DPLI candidate stream performed while
    /// intersecting this shard's posting cursors (exponential probe +
    /// binary search positions inspected).
    pub probes: usize,
}
