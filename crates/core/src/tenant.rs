//! Multi-tenant admission control: per-tenant token buckets, bounded
//! admission queues, concurrency limits, and `QueryRequest` defaults.
//!
//! The serving layer authenticates each wire request to a *tenant* (the
//! protocol's `auth` field) and asks this module whether to run it now,
//! park it in a bounded queue, or reject it with a structured overload
//! error. The policy/state split keeps the logic testable in isolation:
//!
//! * [`TenantPolicy`] — static limits for one tenant: token-bucket rate
//!   and burst, queue bound, concurrency bound, and `QueryRequest`
//!   defaults (deadline default and hard cap).
//! * [`TenantTable`] — the named policies plus an optional default
//!   policy for unnamed (anonymous) callers. An **empty** table turns
//!   admission off entirely — the seed server's open-door behavior.
//! * [`AdmissionState`] — the runtime counters. Deliberately clockless:
//!   every method takes `now_s` (monotonic seconds, any epoch) so tests
//!   and proptests drive time deterministically.
//!
//! The decision tree in [`AdmissionState::admit`] is, per tenant and in
//! order: unknown tenant → [`Overload::UnknownTenant`]; token bucket
//! empty → [`Overload::RateLimited`] with a retry hint; a free
//! concurrency slot → [`Admission::Dispatch`]; queue space →
//! [`Admission::Enqueue`]; otherwise [`Overload::QueueFull`]. Tokens are
//! charged at *arrival* (enqueued work has already paid), so the queue
//! bounds concurrency overflow only. All state is per-tenant: one
//! tenant exhausting its budget can never consume another's.

use crate::request::QueryRequest;
use std::collections::BTreeMap;
use std::time::Duration;

/// Static admission limits and request defaults for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPolicy {
    /// Sustained request rate (token-bucket refill), requests/second.
    /// `<= 0` disables rate limiting for this tenant.
    pub rate_per_s: f64,
    /// Token-bucket capacity: how many requests may arrive back-to-back
    /// before the rate limit bites. Clamped to at least 1 token.
    pub burst: f64,
    /// Requests parked while all concurrency slots are busy. `0` means
    /// no queueing: a request either dispatches or is rejected.
    pub max_queue: usize,
    /// Requests from this tenant running simultaneously (min 1).
    pub max_concurrent: usize,
    /// Deadline applied to requests that don't carry one.
    pub default_deadline: Option<Duration>,
    /// Hard ceiling on any requested deadline; longer asks are clamped
    /// down (and requests without a deadline get exactly the cap if no
    /// `default_deadline` is set).
    pub deadline_cap: Option<Duration>,
}

impl Default for TenantPolicy {
    /// Permissive: no rate limit, modest queue, effectively unbounded
    /// concurrency, no deadline shaping.
    fn default() -> TenantPolicy {
        TenantPolicy {
            rate_per_s: 0.0,
            burst: 1.0,
            max_queue: 64,
            max_concurrent: usize::MAX,
            default_deadline: None,
            deadline_cap: None,
        }
    }
}

impl TenantPolicy {
    /// Parse the CLI/server spec `rate:burst:queue:concurrency[:cap_ms]`
    /// (the part after the tenant name). `rate` may be fractional; `0`
    /// disables rate limiting. The optional trailing field is a deadline
    /// cap in milliseconds.
    pub fn parse(spec: &str) -> Result<TenantPolicy, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() < 4 || parts.len() > 5 {
            return Err(format!(
                "tenant policy `{spec}`: expected rate:burst:queue:concurrency[:cap_ms]"
            ));
        }
        let rate_per_s: f64 = parts[0]
            .parse()
            .map_err(|_| format!("tenant policy `{spec}`: bad rate `{}`", parts[0]))?;
        let burst: f64 = parts[1]
            .parse()
            .map_err(|_| format!("tenant policy `{spec}`: bad burst `{}`", parts[1]))?;
        let max_queue: usize = parts[2]
            .parse()
            .map_err(|_| format!("tenant policy `{spec}`: bad queue `{}`", parts[2]))?;
        let max_concurrent: usize = parts[3]
            .parse()
            .map_err(|_| format!("tenant policy `{spec}`: bad concurrency `{}`", parts[3]))?;
        if !rate_per_s.is_finite() || rate_per_s < 0.0 {
            return Err(format!(
                "tenant policy `{spec}`: rate must be finite and >= 0"
            ));
        }
        if !burst.is_finite() || burst < 0.0 {
            return Err(format!(
                "tenant policy `{spec}`: burst must be finite and >= 0"
            ));
        }
        if max_concurrent == 0 {
            return Err(format!("tenant policy `{spec}`: concurrency must be >= 1"));
        }
        let deadline_cap = match parts.get(4) {
            None => None,
            Some(ms) => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("tenant policy `{spec}`: bad cap_ms `{ms}`"))?;
                Some(Duration::from_millis(ms))
            }
        };
        Ok(TenantPolicy {
            rate_per_s,
            burst,
            max_queue,
            max_concurrent,
            default_deadline: None,
            deadline_cap,
        })
    }

    /// Lower this tenant's request defaults onto `req`: fill in a missing
    /// deadline from `default_deadline` (else `deadline_cap`), then clamp
    /// any deadline to `deadline_cap`.
    pub fn shape_request(&self, req: &mut QueryRequest) {
        if req.deadline.is_none() {
            req.deadline = self.default_deadline.or(self.deadline_cap);
        }
        if let (Some(cap), Some(d)) = (self.deadline_cap, req.deadline) {
            if d > cap {
                req.deadline = Some(cap);
            }
        }
    }
}

/// The set of configured tenants plus an optional default policy for
/// requests that carry no `auth`. Empty table = admission disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantTable {
    named: BTreeMap<String, TenantPolicy>,
    default_policy: Option<TenantPolicy>,
}

impl TenantTable {
    /// An empty table: admission control off, every request dispatches.
    pub fn new() -> TenantTable {
        TenantTable::default()
    }

    /// Register (or replace) the policy for a named tenant.
    pub fn insert(&mut self, name: impl Into<String>, policy: TenantPolicy) {
        self.named.insert(name.into(), policy);
    }

    /// Set the policy applied to requests without an `auth` field. If
    /// unset (and the table is nonempty), anonymous requests are
    /// rejected as [`Overload::UnknownTenant`].
    pub fn set_default(&mut self, policy: TenantPolicy) {
        self.default_policy = Some(policy);
    }

    /// Parse a `name:rate:burst:queue:concurrency[:cap_ms]` spec and
    /// insert it (the CLI's `--tenant=` flag format).
    pub fn insert_spec(&mut self, spec: &str) -> Result<(), String> {
        let (name, rest) = spec.split_once(':').ok_or_else(|| {
            format!("tenant spec `{spec}`: expected name:rate:burst:queue:concurrency[:cap_ms]")
        })?;
        if name.is_empty() {
            return Err(format!("tenant spec `{spec}`: empty tenant name"));
        }
        self.insert(name, TenantPolicy::parse(rest)?);
        Ok(())
    }

    /// True when no policies are configured (admission control off).
    pub fn is_empty(&self) -> bool {
        self.named.is_empty() && self.default_policy.is_none()
    }

    /// Number of named tenants.
    pub fn len(&self) -> usize {
        self.named.len()
    }

    /// Resolve a request's `auth` to a policy: named tenants first,
    /// anonymous callers get the default policy if one is set.
    pub fn policy_for(&self, tenant: Option<&str>) -> Option<&TenantPolicy> {
        match tenant {
            Some(name) => self.named.get(name),
            None => self.default_policy.as_ref(),
        }
    }

    /// Iterate the named tenants in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TenantPolicy)> {
        self.named.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Why a request was refused — each maps to one structured wire error.
#[derive(Debug, Clone, PartialEq)]
pub enum Overload {
    /// The `auth` value names no configured tenant (and no default
    /// policy covers anonymous callers). 401-equivalent.
    UnknownTenant,
    /// The tenant's token bucket is empty. 429-equivalent; retry after
    /// the embedded hint.
    RateLimited {
        /// Time until the bucket refills one token at the sustained rate.
        retry_after: Duration,
    },
    /// Concurrency slots and the admission queue are both full.
    /// 429-equivalent.
    QueueFull {
        /// The configured queue bound that was hit.
        max_queue: usize,
    },
}

/// The admission verdict for one arriving request.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Run now: a concurrency slot was taken. Pair with
    /// [`AdmissionState::on_complete`] when the request finishes.
    Dispatch,
    /// Park the request: a queue slot was taken. Dispatch later via
    /// [`AdmissionState::try_dispatch_queued`].
    Enqueue,
    /// Refuse with the embedded structured error. No state was taken.
    Reject(Overload),
}

/// A deterministic token bucket. Time is caller-supplied monotonic
/// seconds so behavior is a pure function of the call sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate_per_s: f64,
    burst: f64,
    tokens: f64,
    last_s: f64,
}

impl TokenBucket {
    /// A bucket that starts full. `rate_per_s <= 0` builds an unlimited
    /// bucket whose [`TokenBucket::try_take`] always succeeds.
    pub fn new(rate_per_s: f64, burst: f64) -> TokenBucket {
        let burst = burst.max(1.0);
        TokenBucket {
            rate_per_s,
            burst,
            tokens: burst,
            last_s: 0.0,
        }
    }

    /// Take one token at time `now_s`, refilling first. On failure
    /// returns how long until one token is available at the sustained
    /// rate. Time moving backwards is treated as no time passing.
    pub fn try_take(&mut self, now_s: f64) -> Result<(), Duration> {
        if self.rate_per_s <= 0.0 {
            return Ok(());
        }
        let elapsed = (now_s - self.last_s).max(0.0);
        self.last_s = self.last_s.max(now_s);
        self.tokens = (self.tokens + elapsed * self.rate_per_s).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err(Duration::from_secs_f64(deficit / self.rate_per_s))
        }
    }

    /// Tokens currently held (after the last refill; diagnostic).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

#[derive(Debug)]
struct TenantState {
    bucket: TokenBucket,
    in_flight: usize,
    queued: usize,
}

/// Runtime admission state for every tenant in a [`TenantTable`].
///
/// Owns counters only — the serving layer keeps the parked request
/// payloads (keyed by the same tenant name) and consults this state for
/// every transition. Single-threaded by design: the reactor owns it, so
/// no locking is needed and proptests can replay interleavings exactly.
#[derive(Debug)]
pub struct AdmissionState {
    table: TenantTable,
    states: BTreeMap<String, TenantState>,
}

/// Key used internally for anonymous (no-`auth`) callers. The wire
/// protocol forbids empty `auth` strings, so this cannot collide with a
/// real tenant name.
const ANON: &str = "";

impl AdmissionState {
    /// Build runtime state for `table`. Buckets start full.
    pub fn new(table: TenantTable) -> AdmissionState {
        AdmissionState {
            table,
            states: BTreeMap::new(),
        }
    }

    /// True when a tenant table is configured (admission control on).
    pub fn enabled(&self) -> bool {
        !self.table.is_empty()
    }

    /// The configured table.
    pub fn table(&self) -> &TenantTable {
        &self.table
    }

    fn key(tenant: Option<&str>) -> &str {
        tenant.unwrap_or(ANON)
    }

    fn state_for(&mut self, tenant: Option<&str>) -> Option<&mut TenantState> {
        let policy = self.table.policy_for(tenant)?.clone();
        let key = Self::key(tenant).to_string();
        Some(self.states.entry(key).or_insert_with(|| TenantState {
            bucket: TokenBucket::new(policy.rate_per_s, policy.burst),
            in_flight: 0,
            queued: 0,
        }))
    }

    /// Decide the fate of a request arriving from `tenant` at `now_s`.
    /// See the [module docs](self) for the decision order. With admission
    /// disabled (empty table) every request dispatches untracked.
    pub fn admit(&mut self, tenant: Option<&str>, now_s: f64) -> Admission {
        if !self.enabled() {
            return Admission::Dispatch;
        }
        let Some(policy) = self.table.policy_for(tenant).cloned() else {
            return Admission::Reject(Overload::UnknownTenant);
        };
        let state = self
            .state_for(tenant)
            .expect("policy_for succeeded, state_for must too");
        if let Err(retry_after) = state.bucket.try_take(now_s) {
            return Admission::Reject(Overload::RateLimited { retry_after });
        }
        if state.in_flight < policy.max_concurrent.max(1) {
            state.in_flight += 1;
            Admission::Dispatch
        } else if state.queued < policy.max_queue {
            state.queued += 1;
            Admission::Enqueue
        } else {
            Admission::Reject(Overload::QueueFull {
                max_queue: policy.max_queue,
            })
        }
    }

    /// Record a dispatched request finishing. Call once per
    /// [`Admission::Dispatch`] (and per successful
    /// [`AdmissionState::try_dispatch_queued`]).
    pub fn on_complete(&mut self, tenant: Option<&str>) {
        if !self.enabled() {
            return;
        }
        if let Some(state) = self.states.get_mut(Self::key(tenant)) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
    }

    /// Promote one queued request of `tenant` into a concurrency slot.
    /// Returns `true` when the caller should now dispatch the oldest
    /// parked payload for this tenant. Call after
    /// [`AdmissionState::on_complete`] frees a slot.
    pub fn try_dispatch_queued(&mut self, tenant: Option<&str>) -> bool {
        if !self.enabled() {
            return false;
        }
        let Some(policy) = self.table.policy_for(tenant).cloned() else {
            return false;
        };
        let Some(state) = self.states.get_mut(Self::key(tenant)) else {
            return false;
        };
        if state.queued > 0 && state.in_flight < policy.max_concurrent.max(1) {
            state.queued -= 1;
            state.in_flight += 1;
            true
        } else {
            false
        }
    }

    /// Forget a queued request that will never dispatch (its connection
    /// closed). Frees the queue slot without touching concurrency.
    pub fn forget_queued(&mut self, tenant: Option<&str>) {
        if let Some(state) = self.states.get_mut(Self::key(tenant)) {
            state.queued = state.queued.saturating_sub(1);
        }
    }

    /// Requests of `tenant` currently running (diagnostic).
    pub fn in_flight(&self, tenant: Option<&str>) -> usize {
        self.states
            .get(Self::key(tenant))
            .map_or(0, |s| s.in_flight)
    }

    /// Requests of `tenant` currently parked (diagnostic).
    pub fn queued(&self, tenant: Option<&str>) -> usize {
        self.states.get(Self::key(tenant)).map_or(0, |s| s.queued)
    }

    /// Shape `req` with the tenant's request defaults (deadline default
    /// and cap); a no-op for unknown tenants or a disabled table.
    pub fn shape_request(&self, tenant: Option<&str>, req: &mut QueryRequest) {
        if let Some(policy) = self.table.policy_for(tenant) {
            policy.shape_request(req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(rate: f64, burst: f64, queue: usize, conc: usize) -> TenantPolicy {
        TenantPolicy {
            rate_per_s: rate,
            burst,
            max_queue: queue,
            max_concurrent: conc,
            default_deadline: None,
            deadline_cap: None,
        }
    }

    #[test]
    fn empty_table_admits_everything() {
        let mut adm = AdmissionState::new(TenantTable::new());
        assert!(!adm.enabled());
        for i in 0..1000 {
            assert_eq!(
                adm.admit(Some("anyone"), i as f64 * 1e-6),
                Admission::Dispatch
            );
        }
    }

    #[test]
    fn unknown_tenant_is_rejected_when_enabled() {
        let mut table = TenantTable::new();
        table.insert("alice", policy(0.0, 1.0, 4, 2));
        let mut adm = AdmissionState::new(table);
        assert_eq!(
            adm.admit(Some("mallory"), 0.0),
            Admission::Reject(Overload::UnknownTenant)
        );
        assert_eq!(
            adm.admit(None, 0.0),
            Admission::Reject(Overload::UnknownTenant),
            "no default policy: anonymous callers are refused"
        );
        assert_eq!(adm.admit(Some("alice"), 0.0), Admission::Dispatch);
    }

    #[test]
    fn default_policy_covers_anonymous_callers() {
        let mut table = TenantTable::new();
        table.insert("alice", policy(0.0, 1.0, 4, 2));
        table.set_default(policy(0.0, 1.0, 0, 1));
        let mut adm = AdmissionState::new(table);
        assert_eq!(adm.admit(None, 0.0), Admission::Dispatch);
        assert_eq!(
            adm.admit(None, 0.0),
            Admission::Reject(Overload::QueueFull { max_queue: 0 }),
            "anonymous concurrency 1, queue 0"
        );
        adm.on_complete(None);
        assert_eq!(adm.admit(None, 0.0), Admission::Dispatch);
    }

    #[test]
    fn token_bucket_rate_limits_and_refills() {
        let mut bucket = TokenBucket::new(10.0, 2.0);
        assert!(bucket.try_take(0.0).is_ok());
        assert!(bucket.try_take(0.0).is_ok());
        let retry = bucket.try_take(0.0).unwrap_err();
        assert!(retry > Duration::ZERO && retry <= Duration::from_millis(100));
        // 100ms refills exactly one token at 10/s.
        assert!(bucket.try_take(0.1).is_ok());
        assert!(bucket.try_take(0.1).is_err());
        // A long idle period caps at burst, not unbounded.
        assert!(bucket.try_take(100.0).is_ok());
        assert!(bucket.try_take(100.0).is_ok());
        assert!(bucket.try_take(100.0).is_err());
    }

    #[test]
    fn unlimited_bucket_never_blocks() {
        let mut bucket = TokenBucket::new(0.0, 1.0);
        for _ in 0..10_000 {
            assert!(bucket.try_take(0.0).is_ok());
        }
    }

    #[test]
    fn concurrency_then_queue_then_reject() {
        let mut table = TenantTable::new();
        table.insert("t", policy(0.0, 1.0, 2, 2));
        let mut adm = AdmissionState::new(table);
        assert_eq!(adm.admit(Some("t"), 0.0), Admission::Dispatch);
        assert_eq!(adm.admit(Some("t"), 0.0), Admission::Dispatch);
        assert_eq!(adm.admit(Some("t"), 0.0), Admission::Enqueue);
        assert_eq!(adm.admit(Some("t"), 0.0), Admission::Enqueue);
        assert_eq!(
            adm.admit(Some("t"), 0.0),
            Admission::Reject(Overload::QueueFull { max_queue: 2 })
        );
        assert_eq!(adm.in_flight(Some("t")), 2);
        assert_eq!(adm.queued(Some("t")), 2);

        // Completion promotes exactly one queued request.
        adm.on_complete(Some("t"));
        assert!(adm.try_dispatch_queued(Some("t")));
        assert!(!adm.try_dispatch_queued(Some("t")), "slots full again");
        assert_eq!(adm.in_flight(Some("t")), 2);
        assert_eq!(adm.queued(Some("t")), 1);
    }

    #[test]
    fn tenants_are_isolated() {
        let mut table = TenantTable::new();
        table.insert("small", policy(0.0, 1.0, 0, 1));
        table.insert("big", policy(0.0, 1.0, 8, 8));
        let mut adm = AdmissionState::new(table);
        assert_eq!(adm.admit(Some("small"), 0.0), Admission::Dispatch);
        assert!(matches!(
            adm.admit(Some("small"), 0.0),
            Admission::Reject(Overload::QueueFull { .. })
        ));
        // `small` being saturated must not dent `big`'s budget.
        for _ in 0..8 {
            assert_eq!(adm.admit(Some("big"), 0.0), Admission::Dispatch);
        }
    }

    #[test]
    fn rate_limited_rejection_carries_retry_hint() {
        let mut table = TenantTable::new();
        table.insert("t", policy(2.0, 1.0, 8, 8));
        let mut adm = AdmissionState::new(table);
        assert_eq!(adm.admit(Some("t"), 0.0), Admission::Dispatch);
        match adm.admit(Some("t"), 0.0) {
            Admission::Reject(Overload::RateLimited { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
                assert!(retry_after <= Duration::from_millis(500), "{retry_after:?}");
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        let mut table = TenantTable::new();
        table.insert_spec("alice:10:20:64:4:2500").unwrap();
        table.insert_spec("bob:0:1:0:1").unwrap();
        assert_eq!(table.len(), 2);
        let alice = table.policy_for(Some("alice")).unwrap();
        assert_eq!(alice.rate_per_s, 10.0);
        assert_eq!(alice.burst, 20.0);
        assert_eq!(alice.max_queue, 64);
        assert_eq!(alice.max_concurrent, 4);
        assert_eq!(alice.deadline_cap, Some(Duration::from_millis(2500)));
        assert!(table.policy_for(Some("carol")).is_none());

        assert!(TenantTable::new().insert_spec("noname").is_err());
        assert!(TenantTable::new().insert_spec(":1:1:1:1").is_err());
        assert!(TenantTable::new().insert_spec("x:abc:1:1:1").is_err());
        assert!(TenantTable::new().insert_spec("x:1:1:1:0").is_err());
        assert!(TenantTable::new().insert_spec("x:1:1:1:1:1:1").is_err());
    }

    #[test]
    fn shape_request_applies_deadline_defaults_and_caps() {
        let mut p = policy(0.0, 1.0, 0, 1);
        p.default_deadline = Some(Duration::from_millis(200));
        p.deadline_cap = Some(Duration::from_millis(500));

        let mut req = QueryRequest::new("q");
        p.shape_request(&mut req);
        assert_eq!(req.deadline, Some(Duration::from_millis(200)));

        let mut req = QueryRequest::new("q").deadline(Duration::from_secs(30));
        p.shape_request(&mut req);
        assert_eq!(req.deadline, Some(Duration::from_millis(500)), "capped");

        let mut req = QueryRequest::new("q").deadline(Duration::from_millis(100));
        p.shape_request(&mut req);
        assert_eq!(
            req.deadline,
            Some(Duration::from_millis(100)),
            "under the cap: untouched"
        );

        // Cap only (no default): requests without a deadline get the cap.
        let mut p2 = policy(0.0, 1.0, 0, 1);
        p2.deadline_cap = Some(Duration::from_millis(750));
        let mut req = QueryRequest::new("q");
        p2.shape_request(&mut req);
        assert_eq!(req.deadline, Some(Duration::from_millis(750)));
    }

    #[test]
    fn forget_queued_frees_the_slot() {
        let mut table = TenantTable::new();
        table.insert("t", policy(0.0, 1.0, 1, 1));
        let mut adm = AdmissionState::new(table);
        assert_eq!(adm.admit(Some("t"), 0.0), Admission::Dispatch);
        assert_eq!(adm.admit(Some("t"), 0.0), Admission::Enqueue);
        assert!(matches!(adm.admit(Some("t"), 0.0), Admission::Reject(_)));
        adm.forget_queued(Some("t"));
        assert_eq!(adm.admit(Some("t"), 0.0), Admission::Enqueue, "slot freed");
    }
}
