//! Engine errors.

use std::fmt;

/// Anything that can go wrong while evaluating a KOKO query.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Query text failed to parse or normalize.
    Parse(String),
    /// A regular expression inside the query is malformed.
    Regex(String),
    /// The query references something the engine cannot evaluate
    /// (e.g. `.subtree` of a non-node variable).
    Semantic(String),
    /// Storage-layer failure while loading articles.
    Storage(String),
    /// A `.koko` snapshot file could not be written or read back
    /// (missing, truncated, corrupt, or wrong format version). The inner
    /// error names the file and the failure mode.
    Snapshot(koko_storage::SnapshotFileError),
    /// The per-request deadline ([`QueryRequest::deadline`]) elapsed
    /// before evaluation finished. The deadline is checked between
    /// pipeline stages and at document boundaries inside the extraction
    /// loop, so partial work is abandoned promptly and no partial rows
    /// are ever returned.
    ///
    /// [`QueryRequest::deadline`]: crate::QueryRequest::deadline
    DeadlineExceeded {
        /// The budget the request allowed.
        budget: std::time::Duration,
        /// How long the query had been running at the failed check.
        elapsed: std::time::Duration,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Regex(m) => write!(f, "regex error: {m}"),
            Error::Semantic(m) => write!(f, "semantic error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::DeadlineExceeded { budget, elapsed } => write!(
                f,
                "deadline exceeded: budget {budget:?}, elapsed {elapsed:?}"
            ),
        }
    }
}

impl From<koko_storage::SnapshotFileError> for Error {
    fn from(e: koko_storage::SnapshotFileError) -> Self {
        Error::Snapshot(e)
    }
}

impl std::error::Error for Error {}

impl From<koko_lang::ParseError> for Error {
    fn from(e: koko_lang::ParseError) -> Self {
        Error::Parse(e.message)
    }
}

impl From<koko_regex::Error> for Error {
    fn from(e: koko_regex::Error) -> Self {
        Error::Regex(e.to_string())
    }
}
