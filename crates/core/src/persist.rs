//! Snapshot persistence: build once with `Snapshot::save`, serve many
//! times with `Snapshot::load`.
//!
//! The expensive half of Figure 2 — NLP preprocessing and index
//! construction — runs once, and the resulting [`Snapshot`] (per-shard
//! [`koko_index::KokoIndex`] + document store, the
//! [`koko_index::ShardRouter`], and the embedding model) is written to a
//! single `.koko` file. Loading deserializes those structures directly, so
//! cold-start cost drops from a full parse-and-index pass to a decode.
//! Loaded snapshots answer queries byte-identically to freshly built ones
//! (enforced by `tests/snapshot_roundtrip.rs`).
//!
//! # File layout
//!
//! The container framing (magic `KOKOSNAP`, version, payload length,
//! FNV-1a checksum) is owned by [`koko_storage::snapshot_file`]; this
//! module owns the payload. Version 3 (current) appends per-shard
//! score-bound statistics after the shard sections; version 2 introduced
//! the generational manifest so a snapshot saved after incremental adds
//! round-trips its base/delta split:
//!
//! ```text
//! payload  := Embeddings | manifest | ShardRouter | Vec<Blob> | stats
//! manifest := generation (u64) | num_base (u64)
//! blob     := Shard (id, doc/sid ranges, KokoIndex, DocStore)
//! stats    := Vec<Option<ShardBoundStats>>   (v3; absent in v1/v2)
//! ```
//!
//! Older files still load: version-1 files (no manifest) predate live
//! updates, so every shard is base and the generation is 1; files without
//! the stats section leave every shard's statistics `None`, and ranked
//! top-k queries fall back to the conservative weights-only bound — same
//! answers, less pruning. The stats travel *outside* the shard blobs so
//! shard bytes are identical across versions.
//!
//! Each shard is encoded and decoded independently, so both directions
//! fan out over `koko-par` worker threads — save/load scale with cores the
//! same way ingest does. The in-memory corpus is *not* stored twice: it is
//! reconstructed by decoding each shard's document store (far cheaper than
//! re-parsing text, and the decoded documents are bit-identical to the
//! originals because the store holds their exact encoded bytes).

use crate::error::Error;
use crate::snapshot::Snapshot;
use koko_embed::Embeddings;
use koko_index::{Shard, ShardBoundStats, ShardRouter};
use koko_nlp::{Corpus, Document};
use koko_storage::docstore::Blob;
use koko_storage::{
    read_snapshot_file_versioned, write_snapshot_file, Codec, DecodeError, SnapshotFileError,
};
use std::path::Path;
use std::sync::Arc;

fn corrupt(path: &Path, e: DecodeError) -> Error {
    Error::Snapshot(SnapshotFileError::Corrupt {
        path: path.display().to_string(),
        detail: e.0,
    })
}

impl Snapshot {
    /// Serialize the whole snapshot to a `.koko` file at `path`, returning
    /// the file size in bytes. Shards encode on worker threads when
    /// `parallel` is set.
    ///
    /// ```
    /// use koko_core::{Koko, Snapshot};
    ///
    /// let koko = Koko::from_texts(&["Anna ate some delicious cheesecake."]);
    /// let path = std::env::temp_dir().join("doctest_save.koko");
    /// let bytes = koko.snapshot().save(&path, true).unwrap();
    /// assert!(bytes > 0);
    ///
    /// let loaded = Snapshot::load(&path, true).unwrap();
    /// assert_eq!(loaded.num_shards(), koko.snapshot().num_shards());
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn save(&self, path: &Path, parallel: bool) -> Result<u64, Error> {
        let threads = if parallel { 0 } else { 1 };
        let mut buf = bytes::BytesMut::new();
        self.embeddings().encode(&mut buf);
        // Generational manifest (format v2): which generation this
        // snapshot is, and how many leading shards are base (the rest are
        // deltas from incremental adds).
        self.generation().encode(&mut buf);
        (self.num_base_shards() as u64).encode(&mut buf);
        self.router().encode(&mut buf);
        let sections: Vec<Blob> =
            koko_par::par_map(self.shards(), threads, |_, shard| Blob(shard.to_bytes()));
        // Blob frames carry a u32 length; a shard section past that limit
        // would wrap silently on encode and produce an unloadable file, so
        // refuse here (use more shards to split the corpus instead).
        if let Some((i, blob)) = sections
            .iter()
            .enumerate()
            .find(|(_, b)| b.0.len() > u32::MAX as usize)
        {
            return Err(Error::Snapshot(SnapshotFileError::Io {
                path: path.display().to_string(),
                error: format!(
                    "shard {i} serializes to {} bytes, over the 4 GiB per-shard limit; \
                     rebuild with a higher shard count",
                    blob.0.len()
                ),
            }));
        }
        sections.encode(&mut buf);
        // Per-shard score-bound statistics (format v3), appended as their
        // own section so the shard blobs above stay byte-identical across
        // versions. A shard loaded from a pre-v3 file has none; its `None`
        // round-trips.
        let stats: Vec<Option<ShardBoundStats>> = self
            .shards()
            .iter()
            .map(|s| s.bound_stats().cloned())
            .collect();
        stats.encode(&mut buf);
        write_snapshot_file(path, &buf).map_err(Error::Snapshot)?;
        Ok((koko_storage::snapshot_file::SNAPSHOT_HEADER_LEN + buf.len()) as u64)
    }

    /// Load a snapshot written by [`Snapshot::save`]. Shards decode on
    /// worker threads when `parallel` is set. Corrupt, truncated, or
    /// wrong-version files produce a structured
    /// [`Error::Snapshot`] naming the file — never a panic.
    ///
    /// ```
    /// use koko_core::{Koko, Snapshot};
    ///
    /// let koko = Koko::from_texts(&["The cafe was busy.", "Anna was happy."]);
    /// let path = std::env::temp_dir().join("doctest_load.koko");
    /// koko.snapshot().save(&path, false).unwrap();
    ///
    /// let loaded = Snapshot::load(&path, false).unwrap();
    /// assert_eq!(loaded.corpus().num_documents(), 2);
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn load(path: &Path, parallel: bool) -> Result<Snapshot, Error> {
        let (version, payload) = read_snapshot_file_versioned(path).map_err(Error::Snapshot)?;
        let mut input: &[u8] = &payload;
        let embed = Embeddings::decode(&mut input).map_err(|e| corrupt(path, e))?;
        // v1 files predate the manifest: all-base, generation 1.
        let (generation, num_base) = if version >= 2 {
            let generation = u64::decode(&mut input).map_err(|e| corrupt(path, e))?;
            let num_base = u64::decode(&mut input).map_err(|e| corrupt(path, e))? as usize;
            (generation, Some(num_base))
        } else {
            (1, None)
        };
        let router = ShardRouter::decode(&mut input).map_err(|e| corrupt(path, e))?;
        let sections = Vec::<Blob>::decode(&mut input).map_err(|e| corrupt(path, e))?;
        let num_base = num_base.unwrap_or(sections.len());
        if num_base > sections.len() {
            return Err(corrupt(
                path,
                DecodeError(format!(
                    "manifest claims {num_base} base shards, payload holds {}",
                    sections.len()
                )),
            ));
        }
        // v3 appends per-shard score-bound statistics. An absent section —
        // even in a v3-stamped file — is tolerated as "no stats" (missing
        // statistics only cost pruning, never answers); a *present but
        // malformed* one is corrupt like any other section.
        let stats: Vec<Option<ShardBoundStats>> = if version >= 3 && !input.is_empty() {
            let stats =
                Vec::<Option<ShardBoundStats>>::decode(&mut input).map_err(|e| corrupt(path, e))?;
            if stats.len() != sections.len() {
                return Err(corrupt(
                    path,
                    DecodeError(format!(
                        "stats section describes {} shards, payload holds {}",
                        stats.len(),
                        sections.len()
                    )),
                ));
            }
            stats
        } else {
            vec![None; sections.len()]
        };
        if !input.is_empty() {
            return Err(corrupt(path, DecodeError("trailing payload bytes".into())));
        }
        if router.num_shards() != sections.len() {
            return Err(corrupt(
                path,
                DecodeError(format!(
                    "router describes {} shards, payload holds {}",
                    router.num_shards(),
                    sections.len()
                )),
            ));
        }

        let threads = if parallel { 0 } else { 1 };
        // Decode every shard, then rebuild the in-memory corpus from the
        // shard document stores — both fan out per shard.
        let shards: Vec<Result<Shard, DecodeError>> =
            koko_par::par_map(&sections, threads, |_, blob| Shard::from_bytes(&blob.0));
        let mut decoded = Vec::with_capacity(shards.len());
        for (shard, stats) in shards.into_iter().zip(stats) {
            let mut shard = shard.map_err(|e| corrupt(path, e))?;
            shard.set_bound_stats(stats);
            decoded.push(shard);
        }
        let mut expect_doc = 0u32;
        let mut expect_sid = 0u32;
        for (i, shard) in decoded.iter().enumerate() {
            if shard.doc_range().start != expect_doc || shard.sid_range().start != expect_sid {
                return Err(corrupt(
                    path,
                    DecodeError(format!("shard {i} is not contiguous with its predecessor")),
                ));
            }
            expect_doc = shard.doc_range().end;
            expect_sid = shard.sid_range().end;
        }
        // The stored router must agree with the shard ranges exactly —
        // a mismatched router would misroute (or panic on) every id
        // lookup at query time, long after load claimed success.
        if router != ShardRouter::from_shards(&decoded) {
            return Err(corrupt(
                path,
                DecodeError("shard router disagrees with the shard ranges".into()),
            ));
        }

        let doc_lists: Vec<Result<Vec<Document>, DecodeError>> =
            koko_par::par_map(&decoded, threads, |_, shard| {
                shard
                    .doc_range()
                    .map(|doc| shard.load_document(doc))
                    .collect()
            });
        let mut docs = Vec::with_capacity(expect_doc as usize);
        for list in doc_lists {
            docs.extend(list.map_err(|e| corrupt(path, e))?);
        }
        let corpus = Corpus::new(docs);
        if corpus.num_sentences() != expect_sid as usize {
            return Err(corrupt(
                path,
                DecodeError(format!(
                    "stored documents hold {} sentences, shard ranges cover {}",
                    corpus.num_sentences(),
                    expect_sid
                )),
            ));
        }
        Ok(Snapshot::from_parts(
            corpus,
            decoded.into_iter().map(Arc::new).collect(),
            num_base,
            generation,
            router,
            embed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Koko;
    use koko_storage::SNAPSHOT_VERSION;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("koko_core_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Koko {
        Koko::from_texts(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The cafe was busy.",
        ])
    }

    #[test]
    fn save_reports_the_file_size() {
        let path = tmp("size.koko");
        let bytes = sample().snapshot().save(&path, true).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn sequential_and_parallel_save_produce_identical_files() {
        let (pa, pb) = (tmp("par.koko"), tmp("seq.koko"));
        let koko = sample();
        koko.snapshot().save(&pa, true).unwrap();
        koko.snapshot().save(&pb, false).unwrap();
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    }

    #[test]
    fn load_rejects_missing_file_with_structured_error() {
        let path = tmp("missing.koko");
        std::fs::remove_file(&path).ok();
        match Snapshot::load(&path, true) {
            Err(Error::Snapshot(SnapshotFileError::Io { path: p, .. })) => {
                assert!(p.contains("missing.koko"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_plain_text_as_not_a_snapshot() {
        let path = tmp("plain.txt");
        std::fs::write(&path, "The cafe was busy.\n").unwrap();
        assert!(matches!(
            Snapshot::load(&path, true),
            Err(Error::Snapshot(SnapshotFileError::NotASnapshot { .. }))
        ));
    }

    #[test]
    fn load_rejects_wrong_version_naming_expected() {
        let path = tmp("version.koko");
        sample().snapshot().save(&path, false).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&(SNAPSHOT_VERSION + 7).to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = Snapshot::load(&path, true).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("version.koko") && msg.contains(&SNAPSHOT_VERSION.to_string()),
            "{msg}"
        );
    }

    #[test]
    fn load_rejects_truncated_and_corrupted_payloads() {
        let path = tmp("damage.koko");
        sample().snapshot().save(&path, false).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Truncations at several depths: header, early payload, mid-shard.
        for cut in [9, 20, 30, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = Snapshot::load(&path, true).unwrap_err();
            assert!(matches!(err, Error::Snapshot(_)), "cut {cut}: {err:?}");
        }
        // Bit flip in the middle of the payload: checksum catches it.
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            Snapshot::load(&path, true),
            Err(Error::Snapshot(SnapshotFileError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn load_rejects_router_that_disagrees_with_shards() {
        use crate::engine::EngineOpts;
        let opts = EngineOpts {
            num_shards: 2,
            ..EngineOpts::default()
        };
        // Same shard count, different document boundaries.
        let a = Koko::from_texts_with_opts(
            &["Anna ate cake. She was happy. The cafe was busy.", "Go."],
            opts,
        );
        let b = Koko::from_texts_with_opts(&["One.", "Two.", "Three.", "Four."], opts);
        assert_ne!(a.snapshot().router(), b.snapshot().router());

        // Hand-assemble a payload pairing b's shards with a's router.
        let mut buf = bytes::BytesMut::new();
        b.snapshot().embeddings().encode(&mut buf);
        1u64.encode(&mut buf); // manifest: generation
        (b.snapshot().num_shards() as u64).encode(&mut buf); // manifest: num_base
        a.snapshot().router().encode(&mut buf);
        let sections: Vec<Blob> = b
            .snapshot()
            .shards()
            .iter()
            .map(|s| Blob(s.to_bytes()))
            .collect();
        sections.encode(&mut buf);
        let path = tmp("router_mismatch.koko");
        write_snapshot_file(&path, &buf).unwrap();

        match Snapshot::load(&path, true) {
            Err(Error::Snapshot(SnapshotFileError::Corrupt { detail, .. })) => {
                assert!(detail.contains("router"), "{detail}");
            }
            other => panic!("expected router-mismatch rejection, got {other:?}"),
        }
    }

    #[test]
    fn version1_files_load_as_generation1_all_base() {
        let koko = sample();
        let snap = koko.snapshot();
        // Hand-assemble the pre-live v1 payload: no manifest between the
        // embeddings and the router.
        let mut buf = bytes::BytesMut::new();
        snap.embeddings().encode(&mut buf);
        snap.router().encode(&mut buf);
        let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
        sections.encode(&mut buf);
        let path = tmp("v1.koko");
        write_snapshot_file(&path, &buf).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&1u16.to_le_bytes());
        std::fs::write(&path, &data).unwrap();

        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.generation(), 1);
        assert_eq!(loaded.num_base_shards(), loaded.num_shards());
        assert_eq!(loaded.num_delta_shards(), 0);
        assert_eq!(
            loaded.corpus().num_documents(),
            snap.corpus().num_documents()
        );
    }

    #[test]
    fn snapshot_with_deltas_round_trips_generation_and_split() {
        let koko = sample();
        koko.add_texts(&["The barista poured a latte.", "go Falcons!"]);
        let snap = koko.snapshot();
        assert_eq!(snap.num_delta_shards(), 1);
        let path = tmp("delta.koko");
        snap.save(&path, true).unwrap();

        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.generation(), snap.generation());
        assert_eq!(loaded.num_base_shards(), snap.num_base_shards());
        assert_eq!(loaded.num_delta_shards(), 1);
        assert_eq!(
            loaded.corpus().num_documents(),
            snap.corpus().num_documents()
        );
        // A base-count past the shard list is rejected, not trusted.
        let mut buf = bytes::BytesMut::new();
        snap.embeddings().encode(&mut buf);
        snap.generation().encode(&mut buf);
        (snap.num_shards() as u64 + 5).encode(&mut buf);
        snap.router().encode(&mut buf);
        let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
        sections.encode(&mut buf);
        let bad = tmp("bad_manifest.koko");
        write_snapshot_file(&bad, &buf).unwrap();
        match Snapshot::load(&bad, true) {
            Err(Error::Snapshot(SnapshotFileError::Corrupt { detail, .. })) => {
                assert!(detail.contains("base shards"), "{detail}");
            }
            other => panic!("expected manifest rejection, got {other:?}"),
        }
    }

    #[test]
    fn bound_stats_round_trip_through_v3() {
        let path = tmp("stats.koko");
        let koko = sample();
        koko.snapshot().save(&path, true).unwrap();
        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.num_shards(), koko.snapshot().num_shards());
        for (a, b) in loaded.shards().iter().zip(koko.snapshot().shards()) {
            let got = a.bound_stats().expect("v3 load carries stats");
            assert_eq!(got, b.bound_stats().unwrap());
        }
        // Re-saving a loaded snapshot reproduces the file byte-for-byte
        // (stats included).
        let path2 = tmp("stats_resave.koko");
        loaded.save(&path2, false).unwrap();
        let first = std::fs::read(&path).unwrap();
        let second = std::fs::read(&path2).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn v2_files_without_stats_load_and_resave() {
        let koko = sample();
        let snap = koko.snapshot();
        // Hand-assemble a v2 payload: manifest + router + shards, no
        // stats section, stamped version 2.
        let mut buf = bytes::BytesMut::new();
        snap.embeddings().encode(&mut buf);
        snap.generation().encode(&mut buf);
        (snap.num_base_shards() as u64).encode(&mut buf);
        snap.router().encode(&mut buf);
        let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
        sections.encode(&mut buf);
        let path = tmp("v2.koko");
        write_snapshot_file(&path, &buf).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&2u16.to_le_bytes());
        std::fs::write(&path, &data).unwrap();

        let loaded = Snapshot::load(&path, true).unwrap();
        assert!(
            loaded.shards().iter().all(|s| s.bound_stats().is_none()),
            "pre-v3 files carry no stats"
        );
        assert_eq!(
            loaded.corpus().num_documents(),
            snap.corpus().num_documents()
        );
        // Re-saving the stats-less snapshot writes a valid v3 file whose
        // stats section holds `None` per shard.
        let resaved = tmp("v2_resave.koko");
        loaded.save(&resaved, false).unwrap();
        let again = Snapshot::load(&resaved, true).unwrap();
        assert!(again.shards().iter().all(|s| s.bound_stats().is_none()));
    }

    #[test]
    fn malformed_stats_section_is_rejected() {
        let koko = sample();
        let snap = koko.snapshot();
        let mut buf = bytes::BytesMut::new();
        snap.embeddings().encode(&mut buf);
        snap.generation().encode(&mut buf);
        (snap.num_base_shards() as u64).encode(&mut buf);
        snap.router().encode(&mut buf);
        let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
        sections.encode(&mut buf);
        // A stats section for the wrong number of shards.
        let stats: Vec<Option<ShardBoundStats>> = vec![None; snap.num_shards() + 3];
        stats.encode(&mut buf);
        let path = tmp("bad_stats.koko");
        write_snapshot_file(&path, &buf).unwrap();
        match Snapshot::load(&path, true) {
            Err(Error::Snapshot(SnapshotFileError::Corrupt { detail, .. })) => {
                assert!(detail.contains("stats section"), "{detail}");
            }
            other => panic!("expected stats rejection, got {other:?}"),
        }
    }

    #[test]
    fn empty_corpus_round_trips() {
        let path = tmp("empty.koko");
        let koko = Koko::from_texts::<&str>(&[]);
        koko.snapshot().save(&path, true).unwrap();
        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.corpus().num_documents(), 0);
        assert_eq!(loaded.num_shards(), koko.snapshot().num_shards());
    }

    #[test]
    fn custom_embeddings_survive_the_round_trip() {
        let path = tmp("ontology.koko");
        let koko =
            sample().with_embeddings(Embeddings::new().with_ontology(&[("beans", &["arabica"])]));
        koko.snapshot().save(&path, true).unwrap();
        let loaded = Snapshot::load(&path, true).unwrap();
        assert!(loaded.embeddings().knows("arabica"));
        assert_eq!(
            loaded.embeddings().similarity("arabica", "coffee"),
            koko.snapshot().embeddings().similarity("arabica", "coffee"),
        );
    }
}
