//! Snapshot persistence: build once with `Snapshot::save`, serve many
//! times with `Snapshot::load` — or map with [`Snapshot::open_mmap`] and
//! pay for shards only as queries touch them.
//!
//! The expensive half of Figure 2 — NLP preprocessing and index
//! construction — runs once, and the resulting [`Snapshot`] (per-shard
//! [`koko_index::KokoIndex`] + document store, the
//! [`koko_index::ShardRouter`], and the embedding model) is written to a
//! single `.koko` file. Loaded snapshots answer queries byte-identically
//! to freshly built ones (enforced by `tests/snapshot_roundtrip.rs`).
//!
//! # File layout
//!
//! The container framing is owned by [`koko_storage::snapshot_file`]
//! (v1–3 payload frame) and [`koko_storage::section`] (v4 section table);
//! this module owns the contents. Saves write **version 4**: a section
//! table locating independently-checksummed, 8-aligned sections —
//!
//! ```text
//! EMBED    Embeddings codec frame
//! MANIFEST generation (u64 LE) | num_base (u64 LE)
//! ROUTER   ShardRouter codec frame
//! SHARD i  id + doc/sid ranges + KokoIndex frame   (per shard)
//! STORE i  DocStore codec frame                    (per shard)
//! BOUNDS i score-bound hash array                  (per shard, optional)
//! BLOCKS i block-max statistics                    (per shard, optional)
//! ```
//!
//! Because every section is located by offset and checksummed on first
//! touch, [`Snapshot::open_mmap`] validates the header + table in
//! O(sections) and maps the rest: each shard decodes out of the mapping
//! the first time a query routes to it, and article bytes inside a
//! shard's store stay untouched pages until `LoadArticle` faults them in.
//! Cold-start cost stops scaling with corpus size, and a corpus larger
//! than RAM serves queries under the page cache's eviction policy.
//!
//! Older payload-framed files still load through the same entry points:
//! version-1 files (no manifest) predate live updates, so every shard is
//! base and the generation is 1; files without the stats section leave
//! every shard's statistics `None`, and ranked top-k queries fall back to
//! the conservative weights-only bound — same answers, less pruning. The
//! per-shard frames inside v4 sections are byte-identical to the frames
//! embedded in v1–3 payloads, so no migration re-encodes anything.
//!
//! Saving back to the file a v4 snapshot was opened from **appends**:
//! unchanged shards' sections are carried forward by table reference,
//! new/regrown deltas plus a fresh manifest, router, and table are
//! written past the committed extent, and an in-place header rewrite
//! publishes the result atomically (see
//! [`koko_storage::append_sections`]). An `add` therefore costs I/O
//! proportional to the *new* documents; the next full save (or
//! [`Snapshot::compacted`]) reclaims the superseded bytes.

use crate::error::Error;
use crate::snapshot::{PersistedShardRef, ShardSlot, Snapshot, SnapshotBacking};
use koko_embed::Embeddings;
use koko_index::{BlockBoundStats, Shard, ShardBoundStats, ShardRouter};
use koko_nlp::{Corpus, Document};
use koko_storage::docstore::Blob;
use koko_storage::{
    append_sections, read_snapshot_file_versioned, read_snapshot_version, write_sectioned_file,
    Codec, DecodeError, SectionEntry, SectionWriter, SectionedFile, SnapshotFileError,
    SECTIONED_VERSION, SEC_BLOCKS, SEC_BOUNDS, SEC_EMBED, SEC_MANIFEST, SEC_ROUTER, SEC_SHARD,
    SEC_STORE,
};
use std::path::Path;
use std::sync::Arc;

fn corrupt(path: &Path, e: DecodeError) -> Error {
    Error::Snapshot(corrupt_label(&path.display().to_string(), e))
}

fn corrupt_label(path: &str, e: DecodeError) -> SnapshotFileError {
    SnapshotFileError::Corrupt {
        path: path.to_string(),
        detail: e.0,
    }
}

/// The per-shard section entries of one persisted shard, resolved from a
/// validated section table.
#[derive(Clone, Copy)]
struct ShardSections {
    shard: SectionEntry,
    store: SectionEntry,
    bounds: Option<SectionEntry>,
    blocks: Option<SectionEntry>,
}

/// Decode one shard out of its mapped sections, verifying it against the
/// router's expectations — the sectioned replacement for the old
/// whole-payload contiguity check, run per shard on first touch.
fn decode_shard_sections(
    sf: &SectionedFile,
    slot: usize,
    secs: ShardSections,
    router: &ShardRouter,
) -> Result<Shard, SnapshotFileError> {
    let meta = sf.section_bytes(&secs.shard)?;
    let store_bytes = sf.section_bytes(&secs.store)?;
    let bounds = match secs.bounds {
        Some(e) => Some(
            ShardBoundStats::decode_section(sf.section_bytes(&e)?)
                .map_err(|e| corrupt_label(sf.path(), e))?,
        ),
        None => None,
    };
    let blocks = match secs.blocks {
        Some(e) => Some(
            BlockBoundStats::decode_section(sf.section_bytes(&e)?)
                .map_err(|e| corrupt_label(sf.path(), e))?,
        ),
        None => None,
    };
    let shard = Shard::decode_sections(meta.as_slice(), store_bytes, bounds, blocks)
        .map_err(|e| corrupt_label(sf.path(), e))?;
    // A shard that decodes cleanly but disagrees with the router would
    // misroute (or panic on) id lookups long after open claimed success.
    if shard.id() != slot
        || shard.doc_range() != router.doc_range_of(slot)
        || shard.sid_range() != router.sid_range_of(slot)
    {
        return Err(SnapshotFileError::Corrupt {
            path: sf.path().to_string(),
            detail: format!("shard {slot} covers different ranges than the router claims"),
        });
    }
    Ok(shard)
}

/// Everything `open_mmap`/eager-v4 share: map the file, validate the
/// table, decode the small always-needed sections (embeddings, manifest,
/// router), and resolve every shard's section entries — without reading
/// any shard payload.
struct OpenedV4 {
    sf: SectionedFile,
    embed: Embeddings,
    generation: u64,
    num_base: usize,
    router: ShardRouter,
    shard_secs: Vec<ShardSections>,
}

fn open_v4(path: &Path) -> Result<OpenedV4, Error> {
    let sf = SectionedFile::open_mmap(path).map_err(Error::Snapshot)?;
    let embed_bytes = sf
        .section_bytes(&sf.require(SEC_EMBED, 0).map_err(Error::Snapshot)?)
        .map_err(Error::Snapshot)?;
    let embed = Embeddings::from_bytes(embed_bytes.as_slice())
        .map_err(|e| Error::Snapshot(corrupt_label(sf.path(), e)))?;
    let manifest = sf
        .section_bytes(&sf.require(SEC_MANIFEST, 0).map_err(Error::Snapshot)?)
        .map_err(Error::Snapshot)?;
    if manifest.len() != 16 {
        return Err(Error::Snapshot(SnapshotFileError::Corrupt {
            path: sf.path().to_string(),
            detail: format!("manifest section is {} bytes, expected 16", manifest.len()),
        }));
    }
    let m = manifest.as_slice();
    let generation = u64::from_le_bytes(m[0..8].try_into().expect("sized"));
    let num_base = u64::from_le_bytes(m[8..16].try_into().expect("sized")) as usize;
    let router_bytes = sf
        .section_bytes(&sf.require(SEC_ROUTER, 0).map_err(Error::Snapshot)?)
        .map_err(Error::Snapshot)?;
    let router = ShardRouter::from_bytes(router_bytes.as_slice())
        .map_err(|e| Error::Snapshot(corrupt_label(sf.path(), e)))?;
    router
        .validate_contiguous()
        .map_err(|e| Error::Snapshot(corrupt_label(sf.path(), e)))?;
    if num_base > router.num_shards() {
        return Err(Error::Snapshot(SnapshotFileError::Corrupt {
            path: sf.path().to_string(),
            detail: format!(
                "manifest claims {num_base} base shards, router describes {}",
                router.num_shards()
            ),
        }));
    }
    // Every routed shard must have its sections in the table — checked
    // here (O(sections)) so a missing shard fails at open, not at the
    // first unlucky query.
    let mut shard_secs = Vec::with_capacity(router.num_shards());
    for i in 0..router.num_shards() {
        shard_secs.push(ShardSections {
            shard: sf.require(SEC_SHARD, i as u32).map_err(Error::Snapshot)?,
            store: sf.require(SEC_STORE, i as u32).map_err(Error::Snapshot)?,
            bounds: sf.find(SEC_BOUNDS, i as u32),
            blocks: sf.find(SEC_BLOCKS, i as u32),
        });
    }
    Ok(OpenedV4 {
        sf,
        embed,
        generation,
        num_base,
        router,
        shard_secs,
    })
}

fn backing_of(path: &Path, o: &OpenedV4) -> SnapshotBacking {
    SnapshotBacking {
        path: path.to_path_buf(),
        header: o.sf.header(),
        extent: o.sf.extent(),
        embed_entry: o.sf.find(SEC_EMBED, 0),
        shard_refs: o
            .shard_secs
            .iter()
            .map(|s| {
                Some(PersistedShardRef {
                    shard: s.shard,
                    store: s.store,
                    bounds: s.bounds,
                    blocks: s.blocks,
                })
            })
            .collect(),
    }
}

impl Snapshot {
    /// Serialize the whole snapshot to a `.koko` file at `path`, returning
    /// the file size in bytes. Shards encode on worker threads when
    /// `parallel` is set.
    ///
    /// If this snapshot was opened from (or last saved to) a v4 file at
    /// this same `path`, the save *appends*: sections of unchanged shards
    /// are carried forward by reference and only new deltas, the
    /// manifest, the router and a fresh table are written — I/O
    /// proportional to what changed. Any mismatch (different path, file
    /// replaced behind us, embeddings swapped) falls back to a full
    /// atomic rewrite.
    ///
    /// ```
    /// use koko_core::{Koko, Snapshot};
    ///
    /// let koko = Koko::from_texts(&["Anna ate some delicious cheesecake."]);
    /// let path = std::env::temp_dir().join("doctest_save.koko");
    /// let bytes = koko.snapshot().save(&path, true).unwrap();
    /// assert!(bytes > 0);
    ///
    /// let loaded = Snapshot::load(&path, true).unwrap();
    /// assert_eq!(loaded.num_shards(), koko.snapshot().num_shards());
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn save(&self, path: &Path, parallel: bool) -> Result<u64, Error> {
        if let Some(size) = self.try_append_save(path)? {
            return Ok(size);
        }
        self.full_save(path, parallel)
    }

    fn manifest_section(&self) -> Vec<u8> {
        let mut m = Vec::with_capacity(16);
        m.extend_from_slice(&self.generation().to_le_bytes());
        m.extend_from_slice(&(self.num_base_shards() as u64).to_le_bytes());
        m
    }

    /// Full v4 rewrite: every section re-encoded, image published
    /// atomically (temp file + rename + dir fsync).
    fn full_save(&self, path: &Path, parallel: bool) -> Result<u64, Error> {
        let threads = if parallel { 0 } else { 1 };
        let shards = self.try_shards().map_err(Error::Snapshot)?;
        // Per-shard sections encode independently, so they fan out over
        // worker threads like ingest does; assembly order is fixed, so
        // sequential and parallel saves are byte-identical.
        struct EncodedShard {
            meta: Vec<u8>,
            store: Vec<u8>,
            bounds: Option<Vec<u8>>,
            blocks: Option<Vec<u8>>,
        }
        let encoded: Vec<EncodedShard> =
            koko_par::par_map(shards, threads, |_, shard| EncodedShard {
                meta: shard.encode_meta_section(),
                store: shard.store().to_bytes(),
                bounds: shard.bound_stats().map(|b| b.encode_section()),
                blocks: shard.block_stats().map(|b| b.encode_section()),
            });
        let mut w = SectionWriter::new();
        w.add_section(SEC_EMBED, 0, &self.embeddings().to_bytes());
        w.add_section(SEC_MANIFEST, 0, &self.manifest_section());
        w.add_section(SEC_ROUTER, 0, &self.router().to_bytes());
        for (i, enc) in encoded.iter().enumerate() {
            w.add_section(SEC_SHARD, i as u32, &enc.meta);
            w.add_section(SEC_STORE, i as u32, &enc.store);
            if let Some(b) = &enc.bounds {
                w.add_section(SEC_BOUNDS, i as u32, b);
            }
            if let Some(b) = &enc.blocks {
                w.add_section(SEC_BLOCKS, i as u32, b);
            }
        }
        let image = koko_storage::SharedBytes::from_vec(w.finish());
        write_sectioned_file(path, image.as_slice()).map_err(Error::Snapshot)?;
        // Remember where everything landed so the next save to this path
        // can append instead of rewriting (re-reading our own image, not
        // the file — the bytes are identical by construction).
        let sf = SectionedFile::open_bytes(&path.display().to_string(), image.clone())
            .map_err(Error::Snapshot)?;
        let refs = (0..shards.len())
            .map(|i| {
                Some(PersistedShardRef {
                    shard: sf.require(SEC_SHARD, i as u32).expect("just written"),
                    store: sf.require(SEC_STORE, i as u32).expect("just written"),
                    bounds: sf.find(SEC_BOUNDS, i as u32),
                    blocks: sf.find(SEC_BLOCKS, i as u32),
                })
            })
            .collect();
        *self.backing.lock().expect("backing lock") = Some(SnapshotBacking {
            path: path.to_path_buf(),
            header: sf.header(),
            extent: sf.extent(),
            embed_entry: sf.find(SEC_EMBED, 0),
            shard_refs: refs,
        });
        Ok(image.len() as u64)
    }

    /// Append-save: reuse the backing file's unchanged sections. Returns
    /// `Ok(None)` when this save can't append (no backing, different
    /// path, swapped embeddings, or the file changed behind us) — the
    /// caller falls back to [`Snapshot::full_save`].
    fn try_append_save(&self, path: &Path) -> Result<Option<u64>, Error> {
        let Some(b) = self.backing.lock().expect("backing lock").clone() else {
            return Ok(None);
        };
        if b.path != path || b.embed_entry.is_none() {
            return Ok(None);
        }
        let embed_entry = b.embed_entry.expect("checked above");
        let mut keep: Vec<SectionEntry> = vec![embed_entry];
        let mut new: Vec<(u16, u32, Vec<u8>)> = vec![
            (SEC_MANIFEST, 0, self.manifest_section()),
            (SEC_ROUTER, 0, self.router().to_bytes()),
        ];
        for (i, r) in b.shard_refs.iter().enumerate() {
            match r {
                Some(r) => {
                    keep.push(r.shard);
                    keep.push(r.store);
                    if let Some(bounds) = r.bounds {
                        keep.push(bounds);
                    }
                    if let Some(blocks) = r.blocks {
                        keep.push(blocks);
                    }
                }
                None => {
                    // Changed since the file was written (regrown or new
                    // delta) — materialized by construction, but surface
                    // a structured error rather than panic if not.
                    let shard = self.try_shard(i).map_err(Error::Snapshot)?;
                    new.push((SEC_SHARD, i as u32, shard.encode_meta_section()));
                    new.push((SEC_STORE, i as u32, shard.store().to_bytes()));
                    if let Some(bounds) = shard.bound_stats() {
                        new.push((SEC_BOUNDS, i as u32, bounds.encode_section()));
                    }
                    if let Some(blocks) = shard.block_stats() {
                        new.push((SEC_BLOCKS, i as u32, blocks.encode_section()));
                    }
                }
            }
        }
        let Some((header, table)) =
            append_sections(path, &b.header, b.extent, &keep, &new).map_err(Error::Snapshot)?
        else {
            return Ok(None); // file replaced behind us → full rewrite
        };
        let table_offset = u64::from_le_bytes(header[10..18].try_into().expect("sized"));
        let extent = table_offset
            + 4
            + table.entries.len() as u64 * koko_storage::section::SECTION_ENTRY_LEN as u64;
        let refs = (0..b.shard_refs.len())
            .map(|i| {
                let i = i as u32;
                Some(PersistedShardRef {
                    shard: *table.find(SEC_SHARD, i)?,
                    store: *table.find(SEC_STORE, i)?,
                    bounds: table.find(SEC_BOUNDS, i).copied(),
                    blocks: table.find(SEC_BLOCKS, i).copied(),
                })
            })
            .collect::<Option<Vec<_>>>()
            .map(|refs| refs.into_iter().map(Some).collect::<Vec<_>>())
            .ok_or_else(|| {
                Error::Snapshot(SnapshotFileError::Corrupt {
                    path: path.display().to_string(),
                    detail: "appended table lost a shard section".into(),
                })
            })?;
        *self.backing.lock().expect("backing lock") = Some(SnapshotBacking {
            path: path.to_path_buf(),
            header,
            extent,
            embed_entry: Some(embed_entry),
            shard_refs: refs,
        });
        let size = std::fs::metadata(path)
            .map_err(|e| {
                Error::Snapshot(SnapshotFileError::Io {
                    path: path.display().to_string(),
                    error: e.to_string(),
                })
            })?
            .len();
        Ok(Some(size))
    }

    /// Load a snapshot written by [`Snapshot::save`], fully materialized:
    /// every shard decoded (on worker threads when `parallel` is set) and
    /// the corpus re-assembled before returning. Corrupt, truncated, or
    /// wrong-version files produce a structured [`Error::Snapshot`]
    /// naming the file — never a panic.
    ///
    /// For O(1)-cost opens that defer shard decoding to first touch, use
    /// [`Snapshot::open_mmap`] — answers are byte-identical either way.
    ///
    /// ```
    /// use koko_core::{Koko, Snapshot};
    ///
    /// let koko = Koko::from_texts(&["The cafe was busy.", "Anna was happy."]);
    /// let path = std::env::temp_dir().join("doctest_load.koko");
    /// koko.snapshot().save(&path, false).unwrap();
    ///
    /// let loaded = Snapshot::load(&path, false).unwrap();
    /// assert_eq!(loaded.corpus().num_documents(), 2);
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn load(path: &Path, parallel: bool) -> Result<Snapshot, Error> {
        match read_snapshot_version(path).map_err(Error::Snapshot)? {
            SECTIONED_VERSION => Snapshot::load_v4_eager(path, parallel),
            _ => Snapshot::load_payload(path, parallel),
        }
    }

    /// Open the v4 snapshot at `path` by memory-mapping it: validates the
    /// header, section table, manifest and router in O(sections) without
    /// reading any shard payload, then returns a snapshot whose shards
    /// decode out of the mapping the first time a query touches them.
    /// Each section is checksum-verified on that first touch, so
    /// corruption surfaces as a structured error from the query that
    /// found it — never silently and never as a crash.
    ///
    /// Cold-open cost is independent of corpus size, and a corpus larger
    /// than RAM is served under the page cache's eviction policy. The
    /// mapping holds the file's pages; KOKO's own writers never truncate
    /// a published snapshot (full saves replace the file by rename,
    /// appends only extend it), but an *external* truncation of the
    /// mapped file can fault a reader fatally — the classic mmap
    /// contract.
    ///
    /// Payload-framed files (v1–3) have no section table to map and fall
    /// back to the eager [`Snapshot::load`] transparently.
    pub fn open_mmap(path: &Path) -> Result<Snapshot, Error> {
        match read_snapshot_version(path).map_err(Error::Snapshot)? {
            SECTIONED_VERSION => {
                let o = open_v4(path)?;
                let backing = backing_of(path, &o);
                let slots = o
                    .shard_secs
                    .iter()
                    .enumerate()
                    .map(|(i, secs)| {
                        let sf = o.sf.clone();
                        let router = o.router.clone();
                        let secs = *secs;
                        ShardSlot::lazy(move || decode_shard_sections(&sf, i, secs, &router))
                    })
                    .collect();
                Ok(Snapshot::from_lazy_parts(
                    slots,
                    o.num_base,
                    o.generation,
                    o.router,
                    o.embed,
                    Some(backing),
                ))
            }
            _ => Snapshot::load(path, true),
        }
    }

    /// Eager v4 load: same validation as [`Snapshot::open_mmap`], then
    /// every shard decoded up front (fanned out over worker threads) and
    /// the corpus re-assembled — the write-path open, where later
    /// operations must not discover corruption behind infallible
    /// signatures.
    fn load_v4_eager(path: &Path, parallel: bool) -> Result<Snapshot, Error> {
        let o = open_v4(path)?;
        let threads = if parallel { 0 } else { 1 };
        let decoded: Vec<Result<Shard, SnapshotFileError>> =
            koko_par::par_map(&o.shard_secs, threads, |i, secs| {
                decode_shard_sections(&o.sf, i, *secs, &o.router)
            });
        let mut slots = Vec::with_capacity(decoded.len());
        for shard in decoded {
            slots.push(ShardSlot::ready(Arc::new(shard.map_err(Error::Snapshot)?)));
        }
        let backing = backing_of(path, &o);
        let snap = Snapshot::from_lazy_parts(
            slots,
            o.num_base,
            o.generation,
            o.router,
            o.embed,
            Some(backing),
        );
        // Re-assemble the corpus from the stores now (parallel, validated
        // against the router) — the write-path contract is "no lazy state
        // left behind".
        snap.try_corpus().map_err(Error::Snapshot)?;
        Ok(snap)
    }

    /// Load a payload-framed (v1–3) snapshot.
    fn load_payload(path: &Path, parallel: bool) -> Result<Snapshot, Error> {
        let (version, payload) = read_snapshot_file_versioned(path).map_err(Error::Snapshot)?;
        let mut input: &[u8] = &payload;
        let embed = Embeddings::decode(&mut input).map_err(|e| corrupt(path, e))?;
        // v1 files predate the manifest: all-base, generation 1.
        let (generation, num_base) = if version >= 2 {
            let generation = u64::decode(&mut input).map_err(|e| corrupt(path, e))?;
            let num_base = u64::decode(&mut input).map_err(|e| corrupt(path, e))? as usize;
            (generation, Some(num_base))
        } else {
            (1, None)
        };
        let router = ShardRouter::decode(&mut input).map_err(|e| corrupt(path, e))?;
        let sections = Vec::<Blob>::decode(&mut input).map_err(|e| corrupt(path, e))?;
        let num_base = num_base.unwrap_or(sections.len());
        if num_base > sections.len() {
            return Err(corrupt(
                path,
                DecodeError(format!(
                    "manifest claims {num_base} base shards, payload holds {}",
                    sections.len()
                )),
            ));
        }
        // v3 appends per-shard score-bound statistics. An absent section —
        // even in a v3-stamped file — is tolerated as "no stats" (missing
        // statistics only cost pruning, never answers); a *present but
        // malformed* one is corrupt like any other section.
        let stats: Vec<Option<ShardBoundStats>> = if version >= 3 && !input.is_empty() {
            let stats =
                Vec::<Option<ShardBoundStats>>::decode(&mut input).map_err(|e| corrupt(path, e))?;
            if stats.len() != sections.len() {
                return Err(corrupt(
                    path,
                    DecodeError(format!(
                        "stats section describes {} shards, payload holds {}",
                        stats.len(),
                        sections.len()
                    )),
                ));
            }
            stats
        } else {
            vec![None; sections.len()]
        };
        if !input.is_empty() {
            return Err(corrupt(path, DecodeError("trailing payload bytes".into())));
        }
        if router.num_shards() != sections.len() {
            return Err(corrupt(
                path,
                DecodeError(format!(
                    "router describes {} shards, payload holds {}",
                    router.num_shards(),
                    sections.len()
                )),
            ));
        }

        let threads = if parallel { 0 } else { 1 };
        // Decode every shard, then rebuild the in-memory corpus from the
        // shard document stores — both fan out per shard.
        let shards: Vec<Result<Shard, DecodeError>> =
            koko_par::par_map(&sections, threads, |_, blob| Shard::from_bytes(&blob.0));
        let mut decoded = Vec::with_capacity(shards.len());
        for (shard, stats) in shards.into_iter().zip(stats) {
            let mut shard = shard.map_err(|e| corrupt(path, e))?;
            shard.set_bound_stats(stats);
            decoded.push(shard);
        }
        let mut expect_doc = 0u32;
        let mut expect_sid = 0u32;
        for (i, shard) in decoded.iter().enumerate() {
            if shard.doc_range().start != expect_doc || shard.sid_range().start != expect_sid {
                return Err(corrupt(
                    path,
                    DecodeError(format!("shard {i} is not contiguous with its predecessor")),
                ));
            }
            expect_doc = shard.doc_range().end;
            expect_sid = shard.sid_range().end;
        }
        // The stored router must agree with the shard ranges exactly —
        // a mismatched router would misroute (or panic on) every id
        // lookup at query time, long after load claimed success.
        if router != ShardRouter::from_shards(&decoded) {
            return Err(corrupt(
                path,
                DecodeError("shard router disagrees with the shard ranges".into()),
            ));
        }

        let doc_lists: Vec<Result<Vec<Document>, DecodeError>> =
            koko_par::par_map(&decoded, threads, |_, shard| {
                shard
                    .doc_range()
                    .map(|doc| shard.load_document(doc))
                    .collect()
            });
        let mut docs = Vec::with_capacity(expect_doc as usize);
        for list in doc_lists {
            docs.extend(list.map_err(|e| corrupt(path, e))?);
        }
        let corpus = Corpus::new(docs);
        if corpus.num_sentences() != expect_sid as usize {
            return Err(corrupt(
                path,
                DecodeError(format!(
                    "stored documents hold {} sentences, shard ranges cover {}",
                    corpus.num_sentences(),
                    expect_sid
                )),
            ));
        }
        Ok(Snapshot::from_parts(
            corpus,
            decoded.into_iter().map(Arc::new).collect(),
            num_base,
            generation,
            router,
            embed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Koko;
    use koko_storage::{write_snapshot_file, SNAPSHOT_VERSION};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("koko_core_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Koko {
        Koko::from_texts(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The cafe was busy.",
        ])
    }

    #[test]
    fn save_reports_the_file_size() {
        let path = tmp("size.koko");
        let bytes = sample().snapshot().save(&path, true).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn saves_are_version_4() {
        let path = tmp("v4_stamp.koko");
        sample().snapshot().save(&path, true).unwrap();
        assert_eq!(read_snapshot_version(&path).unwrap(), SECTIONED_VERSION);
        assert_eq!(SNAPSHOT_VERSION, SECTIONED_VERSION);
    }

    #[test]
    fn sequential_and_parallel_save_produce_identical_files() {
        let (pa, pb) = (tmp("par.koko"), tmp("seq.koko"));
        let koko = sample();
        koko.snapshot().save(&pa, true).unwrap();
        koko.snapshot().save(&pb, false).unwrap();
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    }

    #[test]
    fn load_rejects_missing_file_with_structured_error() {
        let path = tmp("missing.koko");
        std::fs::remove_file(&path).ok();
        match Snapshot::load(&path, true) {
            Err(Error::Snapshot(SnapshotFileError::Io { path: p, .. })) => {
                assert!(p.contains("missing.koko"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_plain_text_as_not_a_snapshot() {
        let path = tmp("plain.txt");
        std::fs::write(&path, "The cafe was busy.\n").unwrap();
        assert!(matches!(
            Snapshot::load(&path, true),
            Err(Error::Snapshot(SnapshotFileError::NotASnapshot { .. }))
        ));
    }

    #[test]
    fn load_rejects_wrong_version_naming_expected() {
        let path = tmp("version.koko");
        sample().snapshot().save(&path, false).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&(SNAPSHOT_VERSION + 7).to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = Snapshot::load(&path, true).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("version.koko") && msg.contains(&SNAPSHOT_VERSION.to_string()),
            "{msg}"
        );
    }

    #[test]
    fn load_rejects_truncated_and_corrupted_files() {
        let path = tmp("damage.koko");
        sample().snapshot().save(&path, false).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Truncations at several depths: header, table pointer past EOF,
        // mid-table.
        for cut in [9, 20, 30, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = Snapshot::load(&path, true).unwrap_err();
            assert!(matches!(err, Error::Snapshot(_)), "cut {cut}: {err:?}");
        }
        // Bit flip inside the first section (sections start at offset
        // 32): the per-section checksum catches it when the eager load
        // touches that section.
        let mut flipped = full.clone();
        flipped[40] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            Snapshot::load(&path, true),
            Err(Error::Snapshot(SnapshotFileError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn load_rejects_router_that_disagrees_with_shards() {
        use crate::engine::EngineOpts;
        let opts = EngineOpts {
            num_shards: 2,
            ..EngineOpts::default()
        };
        // Same shard count, different document boundaries.
        let a = Koko::from_texts_with_opts(
            &["Anna ate cake. She was happy. The cafe was busy.", "Go."],
            opts,
        );
        let b = Koko::from_texts_with_opts(&["One.", "Two.", "Three.", "Four."], opts);
        assert_ne!(a.snapshot().router(), b.snapshot().router());

        // Hand-assemble a payload-framed (v3) file pairing b's shards
        // with a's router — the legacy path must still validate.
        let mut buf = bytes::BytesMut::new();
        b.snapshot().embeddings().encode(&mut buf);
        1u64.encode(&mut buf); // manifest: generation
        (b.snapshot().num_shards() as u64).encode(&mut buf); // manifest: num_base
        a.snapshot().router().encode(&mut buf);
        let sections: Vec<Blob> = b
            .snapshot()
            .shards()
            .iter()
            .map(|s| Blob(s.to_bytes()))
            .collect();
        sections.encode(&mut buf);
        let path = tmp("router_mismatch.koko");
        write_snapshot_file(&path, &buf).unwrap();

        match Snapshot::load(&path, true) {
            Err(Error::Snapshot(SnapshotFileError::Corrupt { detail, .. })) => {
                assert!(detail.contains("router"), "{detail}");
            }
            other => panic!("expected router-mismatch rejection, got {other:?}"),
        }

        // The same mismatch through a hand-built *v4* file: shard ranges
        // are validated against the router on materialization.
        let mut w = SectionWriter::new();
        w.add_section(SEC_EMBED, 0, &b.snapshot().embeddings().to_bytes());
        let mut manifest = Vec::new();
        manifest.extend_from_slice(&1u64.to_le_bytes());
        manifest.extend_from_slice(&(b.snapshot().num_shards() as u64).to_le_bytes());
        w.add_section(SEC_MANIFEST, 0, &manifest);
        w.add_section(SEC_ROUTER, 0, &a.snapshot().router().to_bytes());
        for (i, shard) in b.snapshot().shards().iter().enumerate() {
            w.add_section(SEC_SHARD, i as u32, &shard.encode_meta_section());
            w.add_section(SEC_STORE, i as u32, &shard.store().to_bytes());
        }
        let path4 = tmp("router_mismatch_v4.koko");
        write_sectioned_file(&path4, &w.finish()).unwrap();
        match Snapshot::load(&path4, true) {
            Err(Error::Snapshot(SnapshotFileError::Corrupt { detail, .. })) => {
                assert!(detail.contains("router"), "{detail}");
            }
            other => panic!("expected v4 router-mismatch rejection, got {other:?}"),
        }
    }

    #[test]
    fn version1_files_load_as_generation1_all_base() {
        let koko = sample();
        let snap = koko.snapshot();
        // Hand-assemble the pre-live v1 payload: no manifest between the
        // embeddings and the router.
        let mut buf = bytes::BytesMut::new();
        snap.embeddings().encode(&mut buf);
        snap.router().encode(&mut buf);
        let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
        sections.encode(&mut buf);
        let path = tmp("v1.koko");
        write_snapshot_file(&path, &buf).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&1u16.to_le_bytes());
        std::fs::write(&path, &data).unwrap();

        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.generation(), 1);
        assert_eq!(loaded.num_base_shards(), loaded.num_shards());
        assert_eq!(loaded.num_delta_shards(), 0);
        assert_eq!(
            loaded.corpus().num_documents(),
            snap.corpus().num_documents()
        );
        // open_mmap on a payload-framed file falls back to eager load.
        let mapped = Snapshot::open_mmap(&path).unwrap();
        assert_eq!(mapped.num_documents(), snap.corpus().num_documents());
    }

    #[test]
    fn snapshot_with_deltas_round_trips_generation_and_split() {
        let koko = sample();
        koko.add_texts(&["The barista poured a latte.", "go Falcons!"]);
        let snap = koko.snapshot();
        assert_eq!(snap.num_delta_shards(), 1);
        let path = tmp("delta.koko");
        snap.save(&path, true).unwrap();

        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.generation(), snap.generation());
        assert_eq!(loaded.num_base_shards(), snap.num_base_shards());
        assert_eq!(loaded.num_delta_shards(), 1);
        assert_eq!(
            loaded.corpus().num_documents(),
            snap.corpus().num_documents()
        );
        // A base-count past the shard list is rejected, not trusted.
        let mut buf = bytes::BytesMut::new();
        snap.embeddings().encode(&mut buf);
        snap.generation().encode(&mut buf);
        (snap.num_shards() as u64 + 5).encode(&mut buf);
        snap.router().encode(&mut buf);
        let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
        sections.encode(&mut buf);
        let bad = tmp("bad_manifest.koko");
        write_snapshot_file(&bad, &buf).unwrap();
        match Snapshot::load(&bad, true) {
            Err(Error::Snapshot(SnapshotFileError::Corrupt { detail, .. })) => {
                assert!(detail.contains("base shards"), "{detail}");
            }
            other => panic!("expected manifest rejection, got {other:?}"),
        }
    }

    #[test]
    fn bound_stats_round_trip_through_save() {
        let path = tmp("stats.koko");
        let koko = sample();
        koko.snapshot().save(&path, true).unwrap();
        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.num_shards(), koko.snapshot().num_shards());
        for (a, b) in loaded.shards().iter().zip(koko.snapshot().shards()) {
            let got = a.bound_stats().expect("saved snapshots carry stats");
            assert_eq!(got, b.bound_stats().unwrap());
            let blocks = a.block_stats().expect("saved snapshots carry block stats");
            assert_eq!(blocks, b.block_stats().unwrap());
        }
        // Re-saving a loaded snapshot to a fresh path reproduces the file
        // byte-for-byte (stats included).
        let path2 = tmp("stats_resave.koko");
        loaded.save(&path2, false).unwrap();
        let first = std::fs::read(&path).unwrap();
        let second = std::fs::read(&path2).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn v2_files_without_stats_load_and_resave() {
        let koko = sample();
        let snap = koko.snapshot();
        // Hand-assemble a v2 payload: manifest + router + shards, no
        // stats section, stamped version 2.
        let mut buf = bytes::BytesMut::new();
        snap.embeddings().encode(&mut buf);
        snap.generation().encode(&mut buf);
        (snap.num_base_shards() as u64).encode(&mut buf);
        snap.router().encode(&mut buf);
        let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
        sections.encode(&mut buf);
        let path = tmp("v2.koko");
        write_snapshot_file(&path, &buf).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&2u16.to_le_bytes());
        std::fs::write(&path, &data).unwrap();

        let loaded = Snapshot::load(&path, true).unwrap();
        assert!(
            loaded.shards().iter().all(|s| s.bound_stats().is_none()),
            "pre-v3 files carry no stats"
        );
        assert!(
            loaded.shards().iter().all(|s| s.block_stats().is_none()),
            "payload-framed files carry no block stats"
        );
        assert_eq!(
            loaded.corpus().num_documents(),
            snap.corpus().num_documents()
        );
        // Re-saving the stats-less snapshot writes a valid v4 file with
        // no BOUNDS sections.
        let resaved = tmp("v2_resave.koko");
        loaded.save(&resaved, false).unwrap();
        let again = Snapshot::load(&resaved, true).unwrap();
        assert!(again.shards().iter().all(|s| s.bound_stats().is_none()));
    }

    #[test]
    fn malformed_stats_section_is_rejected() {
        let koko = sample();
        let snap = koko.snapshot();
        let mut buf = bytes::BytesMut::new();
        snap.embeddings().encode(&mut buf);
        snap.generation().encode(&mut buf);
        (snap.num_base_shards() as u64).encode(&mut buf);
        snap.router().encode(&mut buf);
        let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
        sections.encode(&mut buf);
        // A stats section for the wrong number of shards.
        let stats: Vec<Option<ShardBoundStats>> = vec![None; snap.num_shards() + 3];
        stats.encode(&mut buf);
        let path = tmp("bad_stats.koko");
        write_snapshot_file(&path, &buf).unwrap();
        match Snapshot::load(&path, true) {
            Err(Error::Snapshot(SnapshotFileError::Corrupt { detail, .. })) => {
                assert!(detail.contains("stats section"), "{detail}");
            }
            other => panic!("expected stats rejection, got {other:?}"),
        }
    }

    #[test]
    fn empty_corpus_round_trips() {
        let path = tmp("empty.koko");
        let koko = Koko::from_texts::<&str>(&[]);
        koko.snapshot().save(&path, true).unwrap();
        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.corpus().num_documents(), 0);
        assert_eq!(loaded.num_shards(), koko.snapshot().num_shards());
        let mapped = Snapshot::open_mmap(&path).unwrap();
        assert_eq!(mapped.num_documents(), 0);
    }

    #[test]
    fn custom_embeddings_survive_the_round_trip() {
        let path = tmp("ontology.koko");
        let koko =
            sample().with_embeddings(Embeddings::new().with_ontology(&[("beans", &["arabica"])]));
        koko.snapshot().save(&path, true).unwrap();
        let loaded = Snapshot::load(&path, true).unwrap();
        assert!(loaded.embeddings().knows("arabica"));
        assert_eq!(
            loaded.embeddings().similarity("arabica", "coffee"),
            koko.snapshot().embeddings().similarity("arabica", "coffee"),
        );
    }

    #[test]
    fn open_mmap_is_lazy_and_serves_identical_documents() {
        let path = tmp("mmap.koko");
        let koko = sample();
        koko.snapshot().save(&path, true).unwrap();

        let mapped = Snapshot::open_mmap(&path).unwrap();
        // Counts come from the router — no shard has materialized yet.
        assert_eq!(
            mapped.num_documents(),
            koko.snapshot().corpus().num_documents()
        );
        assert_eq!(
            mapped.num_sentences(),
            koko.snapshot().corpus().num_sentences()
        );
        assert_eq!(mapped.num_shards(), koko.snapshot().num_shards());
        assert_eq!(mapped.generation(), koko.snapshot().generation());
        // Touching one document materializes one shard and decodes
        // bit-identically.
        for doc in 0..mapped.num_documents() as u32 {
            assert_eq!(
                &mapped.load_document(doc).unwrap(),
                koko.snapshot().corpus().document(doc)
            );
        }
        // Full materialization matches the eager load exactly.
        let eager = Snapshot::load(&path, true).unwrap();
        for (a, b) in mapped.try_shards().unwrap().iter().zip(eager.shards()) {
            assert_eq!(a.to_bytes(), b.to_bytes());
            assert_eq!(a.bound_stats(), b.bound_stats());
            assert_eq!(a.block_stats(), b.block_stats());
        }
        assert_eq!(
            mapped.try_corpus().unwrap().num_sentences(),
            eager.corpus().num_sentences()
        );
    }

    #[test]
    fn mmap_open_surfaces_section_corruption_on_touch_not_open() {
        let path = tmp("mmap_corrupt.koko");
        sample().snapshot().save(&path, true).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        // Corrupt the *last* store section: open must still succeed
        // (payloads unread), the touch must fail structurally.
        let sf = SectionedFile::open_mmap(&path).unwrap();
        let num_stores = sf.table().of_kind(SEC_STORE).count() as u32;
        let store = sf.find(SEC_STORE, num_stores - 1).unwrap();
        drop(sf);
        data[store.offset as usize] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let mapped = Snapshot::open_mmap(&path).unwrap();
        match mapped.try_shards() {
            Err(SnapshotFileError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch on materialization, got {other:?}"),
        }
        // The eager load refuses up front.
        assert!(matches!(
            Snapshot::load(&path, true),
            Err(Error::Snapshot(SnapshotFileError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn resave_to_same_path_appends_instead_of_rewriting() {
        let path = tmp("append_save.koko");
        let koko = sample();
        koko.save(&path).unwrap();
        let before = SectionedFile::open_mmap(&path).unwrap();
        let embed_before = before.find(SEC_EMBED, 0).unwrap();
        let shard0_before = before.find(SEC_SHARD, 0).unwrap();
        let extent_before = before.extent();
        drop(before);

        // Reopen (eagerly — the write path), add documents, save again.
        let reopened = Koko::open(&path).unwrap();
        reopened.add_texts(&["The barista poured a latte for Anna."]);
        reopened.save(&path).unwrap();

        let after = SectionedFile::open_mmap(&path).unwrap();
        // Base sections were carried forward by reference: same offsets,
        // no rewrite. The new table lives past the old extent.
        assert_eq!(after.find(SEC_EMBED, 0).unwrap(), embed_before);
        assert_eq!(after.find(SEC_SHARD, 0).unwrap(), shard0_before);
        assert!(after.extent() > extent_before);
        let delta_idx = (after.table().of_kind(SEC_SHARD).count() - 1) as u32;
        assert!(
            after.find(SEC_SHARD, delta_idx).unwrap().offset >= extent_before,
            "delta shard is appended past the old extent"
        );
        drop(after);

        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(
            loaded.num_documents(),
            koko.snapshot().corpus().num_documents() + 1
        );
        assert_eq!(loaded.num_delta_shards(), 1);

        // A second append round-trips too (the refreshed backing stays
        // consistent with the file).
        reopened.add_texts(&["go Falcons!"]);
        reopened.save(&path).unwrap();
        let again = Snapshot::load(&path, true).unwrap();
        assert_eq!(
            again.num_documents(),
            koko.snapshot().corpus().num_documents() + 2
        );
    }

    #[test]
    fn append_falls_back_to_rewrite_when_file_changed_behind_us() {
        let path = tmp("append_fallback.koko");
        let koko = Koko::from_texts(&["Anna ate cake.", "The cafe was busy."]);
        koko.save(&path).unwrap();
        let reopened = Koko::open(&path).unwrap();
        // Replace the file behind the opened engine's back.
        let other = Koko::from_texts(&["Completely different corpus."]);
        other.save(&path).unwrap();
        // Saving the original still succeeds — full rewrite, not a
        // corrupting append onto the stranger's sections.
        reopened.add_texts(&["go Falcons!"]);
        reopened.save(&path).unwrap();
        let loaded = Snapshot::load(&path, true).unwrap();
        assert_eq!(loaded.num_documents(), 3);
    }
}
