//! `koko-core` — the KOKO query-evaluation engine (§4 of *Scalable Semantic
//! Querying of Text*, Wang et al., VLDB 2018), sharded for parallel
//! execution.
//!
//! # Architecture: LiveIndex / Snapshot / Shard / executor
//!
//! The engine is split into an immutable data half — published in
//! generations — and a stateless code half:
//!
//! * [`Snapshot`] ([`snapshot`]) — one immutable generation: the parsed
//!   corpus, a list of [`koko_index::Shard`]s (contiguous document ranges,
//!   each with its own `KokoIndex` and `DocStore` — balanced *base* shards
//!   followed by append-only *delta* shards from incremental ingest), the
//!   [`koko_index::ShardRouter`] translating global ↔ shard-local ids, and
//!   the embedding model. Snapshots are `Send + Sync`; one snapshot serves
//!   any number of concurrent executions.
//! * [`LiveIndex`] ([`live`]) — the cell that publishes the current
//!   snapshot to readers and lets writers ([`Koko::add_texts`],
//!   [`Koko::compact`]) atomically swap in successors, each with a fresh
//!   epoch. Readers pin a generation per query and are never blocked by
//!   writers beyond the pointer swap.
//! * **executor** ([`engine::execute_query`]) — per-query logic borrowing a
//!   snapshot. The per-shard stage (DPLI → LoadArticle → GSP/extract) fans
//!   out over worker threads; partial tuples and [`Profile`] timers merge
//!   deterministically, so sharded output is byte-identical (rows, order,
//!   scores) to the single-shard sequential evaluator — and incremental
//!   ingest (any split, compacted or not) answers byte-identically to a
//!   batch build.
//! * [`Koko`] — the user-facing façade: `Arc<LiveIndex>` + [`EngineOpts`].
//!   `EngineOpts::num_shards` (0 = one per core) and `EngineOpts::parallel`
//!   control the layout; [`Koko::query_batch`] evaluates many queries
//!   against the shared snapshot concurrently.
//! * [`QueryRequest`] ([`request`]) — per-request options (top-k with
//!   early termination, offset pagination, score floors, ordering,
//!   deadlines, explain reports). Every query API is a wrapper over
//!   [`Koko::run`], so there is exactly one execution entry path.
//!
//! Per query, the executor follows Figure 2's workflow:
//!
//! 1. **Normalize** ([`koko_lang::normalize()`]) — absolute paths, derived
//!    constraints, synthesized `∧` variables (once, on the calling thread);
//! 2. **DPLI** ([`dpli`]) — dominant-path decomposition and multi-index
//!    lookups producing candidate sentences (per shard, in parallel);
//! 3. **LoadArticle** — candidate articles decoded from the shard's
//!    document store (per shard, in parallel);
//! 4. **GSP / extract** ([`gsp`], [`binder`]) — skip plans, nested-loop
//!    binding, alignment of skipped variables, constraint validation (per
//!    shard, in parallel);
//! 5. **merge** — shard partials combined in deterministic order;
//! 6. **Aggregate** ([`aggregate`]) — satisfying/excluding clause scoring
//!    with document-level evidence aggregation (sequential, cache-backed).
//!
//! # Quickstart
//!
//! ```
//! use koko_core::Koko;
//!
//! let koko = Koko::from_texts(&[
//!     "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
//! ]);
//! let out = koko.query(koko_lang::queries::EXAMPLE_2_1).unwrap();
//! assert_eq!(out.rows.len(), 1);
//! let e = &out.rows[0].values[0];
//! assert_eq!(e.text, "chocolate ice cream");
//! ```
//!
//! Many queries over one snapshot:
//!
//! ```
//! use koko_core::{EngineOpts, Koko};
//!
//! let opts = EngineOpts { num_shards: 2, ..EngineOpts::default() };
//! let koko = Koko::from_texts_with_opts(
//!     &["Anna ate some delicious cheesecake.", "The cafe was busy."],
//!     opts,
//! );
//! let results = koko.query_batch(&[
//!     koko_lang::queries::EXAMPLE_2_1,
//!     koko_lang::queries::TITLE,
//! ]);
//! assert!(results.iter().all(Result::is_ok));
//! ```

pub mod aggregate;
pub mod binder;
pub mod cache;
pub mod dpli;
pub mod engine;
pub mod error;
pub mod gsp;
pub mod live;
pub mod persist;
pub mod profile;
pub mod request;
pub mod snapshot;
pub mod tenant;

pub use cache::CacheStats;
pub use engine::{
    execute_compiled, execute_query, AddReport, CompactReport, EngineOpts, Koko, OutValue,
    QueryOutput, Row,
};
pub use error::Error;
pub use live::LiveIndex;
pub use profile::Profile;
pub use request::{Explain, Order, QueryRequest, RemoteShardExplain, ShardExplain};
pub use snapshot::Snapshot;
pub use tenant::{Admission, AdmissionState, Overload, TenantPolicy, TenantTable, TokenBucket};

#[cfg(test)]
mod tests {
    use super::*;
    use koko_lang::queries;

    fn fig1_koko() -> Koko {
        Koko::from_texts(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The cafe was busy today.",
        ])
    }

    #[test]
    fn example_21_end_to_end() {
        // Paper: on the Figure 1 sentence "the query returns the pair
        // (e, d)" with e = "chocolate ice cream" and d = "a chocolate ice
        // cream , which was delicious". Our test corpus adds the Example
        // 3.1 sentence, which legitimately matches too (cheesecake).
        let koko = fig1_koko();
        let out = koko.query(queries::EXAMPLE_2_1).unwrap();
        assert_eq!(out.rows.len(), 2, "{:?}", out.rows);
        let fig1_row = out.rows.iter().find(|r| r.doc == 0).expect("fig1 row");
        assert_eq!(fig1_row.values[0].text, "chocolate ice cream");
        assert_eq!(
            fig1_row.values[1].text,
            "a chocolate ice cream , which was delicious"
        );
        let anna_row = out.rows.iter().find(|r| r.doc == 1).expect("anna row");
        assert_eq!(anna_row.values[0].text, "cheesecake");
        assert!(out.profile.candidate_sentences <= 2);
    }

    #[test]
    fn example_22_similarity_queries() {
        // Paper: Q1 returns Tokyo/Beijing on S2 and nothing on S1; Q2
        // returns China/Japan on S1 and nothing on S2.
        let koko = Koko::from_texts(&[
            "cities in asian countries such as China and Japan.",
            "cities in asian countries such as Beijing and Tokyo.",
        ]);
        let q1 = koko.query(queries::EXAMPLE_2_2_Q1).unwrap();
        let cities = q1.doc_values("a");
        assert!(cities.contains(&(1, "Beijing".into())), "{cities:?}");
        assert!(cities.contains(&(1, "Tokyo".into())), "{cities:?}");
        assert!(!cities.iter().any(|(d, _)| *d == 0), "{cities:?}");
        let q2 = koko.query(queries::EXAMPLE_2_2_Q2).unwrap();
        let countries = q2.doc_values("a");
        assert!(countries.contains(&(0, "China".into())), "{countries:?}");
        assert!(countries.contains(&(0, "Japan".into())), "{countries:?}");
        assert!(!countries.iter().any(|(d, _)| *d == 1), "{countries:?}");
    }

    #[test]
    fn example_23_cafe_aggregation() {
        let koko = Koko::from_texts(&[
            // Strong boolean evidence (name contains Cafe).
            "Velvet Moon Cafe opened downtown. The owner was proud.",
            // Aggregated weak evidence: two descriptor hits.
            "Quiet Owl serves delicious cappuccinos. Quiet Owl employs excellent baristas. Quiet Owl serves espresso.",
            // Excluded brand.
            "They bought a La Marzocco for the bar, a cafe needs one.",
            // No evidence at all.
            "Anna visited London in May 1999.",
        ]);
        let out = koko.query(queries::EXAMPLE_2_3).unwrap();
        let names = out.distinct("x");
        assert!(names.iter().any(|n| n == "Velvet Moon Cafe"), "{names:?}");
        assert!(names.iter().any(|n| n == "Quiet Owl"), "{names:?}");
        assert!(!names.iter().any(|n| n == "La Marzocco"), "{names:?}");
        assert!(!names.iter().any(|n| n == "London"), "{names:?}");
    }

    #[test]
    fn title_query_end_to_end() {
        let koko = Koko::from_texts(&[
            "Cyd Charisse had been called Sid for years.",
            "The cafe was busy.",
        ]);
        let out = koko.query(queries::TITLE).unwrap();
        assert_eq!(out.rows.len(), 1, "{:?}", out.rows);
        let row = &out.rows[0];
        assert_eq!(row.values[0].text, "Cyd Charisse"); // a:Person
        assert_eq!(row.values[1].text, "Sid"); // b = p.subtree
    }

    #[test]
    fn date_of_birth_query() {
        let koko = Koko::from_texts(&["Vera Alys was born in 1911.", "Anna visited London today."]);
        let out = koko.query(queries::DATE_OF_BIRTH).unwrap();
        let pairs: Vec<(String, String)> = out
            .rows
            .iter()
            .map(|r| (r.values[0].text.clone(), r.values[1].text.clone()))
            .collect();
        assert!(
            pairs.contains(&("Vera Alys".into(), "1911".into())),
            "{pairs:?}"
        );
        // Second document has no verb similar to "born" + no Date.
        assert!(out.rows.iter().all(|r| r.doc == 0), "{:?}", out.rows);
    }

    #[test]
    fn chocolate_query() {
        let koko = Koko::from_texts(&[
            "Baking chocolate is a type of chocolate that is prepared for baking.",
            "Anna ate some cheesecake.",
        ]);
        let out = koko.query(queries::CHOCOLATE).unwrap();
        assert_eq!(out.rows.len(), 1, "{:?}", out.rows);
        assert_eq!(out.rows[0].values[0].text, "Baking chocolate");
    }

    #[test]
    fn gsp_vs_nogsp_same_results() {
        let texts = [
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Cyd Charisse had been called Sid for years.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
        ];
        for q in [queries::EXAMPLE_2_1, queries::TITLE, queries::EXAMPLE_4_1] {
            let gsp = Koko::from_texts(&texts);
            let mut nogsp = Koko::from_texts(&texts);
            nogsp.opts.use_gsp = false;
            let mut a = gsp.query(q).unwrap().rows;
            let mut b = nogsp.query(q).unwrap().rows;
            let key = |r: &Row| format!("{:?}", r.values);
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "query {q:?}");
        }
    }

    #[test]
    fn profile_stages_are_populated() {
        let koko = fig1_koko();
        let out = koko.query(queries::EXAMPLE_2_1).unwrap();
        let p = out.profile;
        assert!(p.total().as_nanos() > 0);
        assert!(p.normalize.as_nanos() > 0);
    }

    #[test]
    fn store_backed_vs_in_memory_agree() {
        let mut koko = fig1_koko();
        let a = koko.query(queries::EXAMPLE_2_1).unwrap().rows;
        koko.opts.store_backed = false;
        let b = koko.query(queries::EXAMPLE_2_1).unwrap().rows;
        assert_eq!(a, b);
    }

    #[test]
    fn parse_error_propagates() {
        let koko = fig1_koko();
        assert!(matches!(
            koko.query("this is not a query"),
            Err(Error::Parse(_))
        ));
    }

    #[test]
    fn empty_corpus() {
        let koko = Koko::from_texts::<&str>(&[]);
        let out = koko.query(queries::EXAMPLE_2_1).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn compiled_cache_hits_on_repeat() {
        let koko = fig1_koko();
        let first = koko.query(queries::EXAMPLE_2_1).unwrap();
        assert_eq!(first.profile.compiled_cache_misses, 1);
        assert_eq!(first.profile.compiled_cache_hits, 0);
        let second = koko.query(queries::EXAMPLE_2_1).unwrap();
        assert_eq!(second.profile.compiled_cache_hits, 1);
        assert_eq!(second.rows, first.rows);
        let stats = koko.cache_stats();
        assert_eq!((stats.compiled_hits, stats.compiled_misses), (1, 1));
    }

    #[test]
    fn result_cache_hit_skips_evaluation() {
        let opts = EngineOpts {
            result_cache: 16,
            ..EngineOpts::default()
        };
        let koko = Koko::from_texts_with_opts(
            &[
                "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
                "Anna ate some delicious cheesecake that she bought at a grocery store.",
            ],
            opts,
        );
        let cold = koko.query(queries::EXAMPLE_2_1).unwrap();
        assert_eq!(cold.profile.result_cache_misses, 1);
        assert_eq!(cold.profile.result_cache_hits, 0);
        assert!(!cold.rows.is_empty());

        let warm = koko.query(queries::EXAMPLE_2_1).unwrap();
        assert_eq!(warm.rows, cold.rows, "cached rows byte-identical");
        assert_eq!(warm.profile.result_cache_hits, 1);
        // Every evaluation stage was skipped: timers are exactly zero.
        assert_eq!(warm.profile.dpli.as_nanos(), 0);
        assert_eq!(warm.profile.load_article.as_nanos(), 0);
        assert_eq!(warm.profile.gsp.as_nanos(), 0);
        assert_eq!(warm.profile.extract.as_nanos(), 0);
        assert_eq!(warm.profile.satisfying.as_nanos(), 0);
        // ... but the producing run's counters survive.
        assert_eq!(
            warm.profile.candidate_sentences,
            cold.profile.candidate_sentences
        );
        assert_eq!(warm.profile.raw_tuples, cold.profile.raw_tuples);
    }

    #[test]
    fn cache_bypass_counts_nothing() {
        let opts = EngineOpts {
            result_cache: 16,
            ..EngineOpts::default()
        };
        let koko = Koko::from_texts_with_opts(&["Anna ate some delicious cheesecake."], opts);
        let cached = koko.query(queries::EXAMPLE_2_1).unwrap();
        let bypassed = koko.query_with_cache(queries::EXAMPLE_2_1, false).unwrap();
        assert_eq!(bypassed.rows, cached.rows);
        assert_eq!(bypassed.profile.compiled_cache_hits, 0);
        assert_eq!(bypassed.profile.result_cache_hits, 0);
        assert_eq!(bypassed.profile.result_cache_misses, 0);
        let stats = koko.cache_stats();
        // Only the first (cached) call touched the caches.
        assert_eq!(stats.compiled_hits + stats.compiled_misses, 1);
        assert_eq!(stats.result_hits + stats.result_misses, 1);
    }

    #[test]
    fn result_cache_respects_option_changes() {
        let opts = EngineOpts {
            result_cache: 16,
            num_shards: 1,
            ..EngineOpts::default()
        };
        let mut koko = Koko::from_texts_with_opts(
            &["cities in asian countries such as Beijing and Tokyo."],
            opts,
        );
        let loose = koko.query(queries::EXAMPLE_2_2_Q1).unwrap();
        assert!(!loose.rows.is_empty());
        // Raising the default threshold must not serve the cached rows.
        koko.opts.default_threshold = 0.99;
        koko.opts.use_descriptors = false;
        let strict = koko.query(queries::EXAMPLE_2_2_Q1).unwrap();
        assert_eq!(strict.profile.result_cache_hits, 0, "stale hit served");
    }

    #[test]
    fn query_batch_shares_the_caches() {
        let opts = EngineOpts {
            result_cache: 16,
            ..EngineOpts::default()
        };
        let koko = Koko::from_texts_with_opts(&["Anna ate some delicious cheesecake."], opts);
        let q = queries::EXAMPLE_2_1;
        let outs = koko.query_batch(&[q, q, q]);
        let rows: Vec<_> = outs.iter().map(|o| &o.as_ref().unwrap().rows).collect();
        assert_eq!(rows[0], rows[1]);
        assert_eq!(rows[1], rows[2]);
        let stats = koko.cache_stats();
        // Three lookups total; exactly one evaluated (races permitting,
        // at least one hit is guaranteed only in the sequential case, so
        // assert on the totals instead).
        assert_eq!(stats.result_hits + stats.result_misses, 3);
        assert!(stats.result_misses >= 1);
    }
}
