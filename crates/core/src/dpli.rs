//! DPLI — "Decompose Paths and Lookup Indices" (Algorithm 1, §4.2).
//!
//! Finds the *dominant* paths among the query's node variables (§4.2.1),
//! turns each into a lookup pattern for the multi-index, fetches candidate
//! postings, and intersects everything (including entity-variable and
//! token-sequence sentence sets) into the candidate sentence list the rest
//! of the engine iterates over.

use crate::binder::CompiledQuery;
use koko_index::koko::intersect_sorted;
use koko_index::KokoIndex;
use koko_lang::{NVarKind, NodeCond, Step, StepLabel};
use koko_nlp::{NodeLabel, PNode, Sid, TreePattern};

/// Outcome of the DPLI stage.
#[derive(Debug, Clone)]
pub struct DpliResult {
    /// Candidate sentence ids, sorted.
    pub candidate_sids: Vec<Sid>,
    /// Number of index lookups performed (dominant paths only).
    pub lookups: usize,
}

/// Build the index-lookup pattern for an absolute path. Each step
/// contributes its most selective constraint: an exact word (from the label
/// or a `text=` condition) beats a parse label beats a POS tag beats `*`;
/// the dropped conditions are re-checked by the binder, so candidates stay
/// complete.
pub fn lookup_pattern(steps: &[Step]) -> TreePattern {
    let nodes = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let text_cond = s.conds.iter().find_map(|c| match c {
                NodeCond::Text(w) => Some(w.clone()),
                _ => None,
            });
            let label = if let Some(w) = text_cond {
                NodeLabel::Word(w)
            } else {
                match &s.label {
                    StepLabel::Word(w) => NodeLabel::Word(w.clone()),
                    StepLabel::Pl(l) => NodeLabel::Pl(*l),
                    StepLabel::Pos(p) => NodeLabel::Pos(*p),
                    StepLabel::Wildcard => {
                        // A wildcard with a pos= condition is still usable.
                        s.conds
                            .iter()
                            .find_map(|c| match c {
                                NodeCond::Pos(p) => Some(NodeLabel::Pos(*p)),
                                _ => None,
                            })
                            .unwrap_or(NodeLabel::Wildcard)
                    }
                }
            };
            PNode {
                parent: if i == 0 { None } else { Some((i - 1) as u32) },
                axis: s.axis,
                label,
            }
        })
        .collect();
    TreePattern {
        nodes,
        // Normalized paths are absolute but their first step may use `//`;
        // TreePattern's `root_anchored` means "node 0 must be the sentence
        // root", which only holds when the first axis is `/`.
        root_anchored: steps
            .first()
            .is_some_and(|s| s.axis == koko_nlp::Axis::Child),
    }
}

/// Signature used for the domination test: steps compare equal when axis,
/// label and conditions agree (conditions order-insensitively — "modulo
/// order of conjunction", §4.2.1).
fn step_sig(s: &Step) -> (u8, String, Vec<String>) {
    let axis = match s.axis {
        koko_nlp::Axis::Child => 0,
        koko_nlp::Axis::Descendant => 1,
    };
    let label = match &s.label {
        StepLabel::Pl(l) => format!("l:{}", l.name()),
        StepLabel::Pos(p) => format!("p:{}", p.name()),
        StepLabel::Word(w) => format!("w:{w}"),
        StepLabel::Wildcard => "*".to_string(),
    };
    let mut conds: Vec<String> = s.conds.iter().map(|c| format!("{c:?}")).collect();
    conds.sort();
    (axis, label, conds)
}

/// Whether path `p` is dominated by path `q` (§4.2.1): `p` is a prefix of
/// `q` with identical per-step conditions.
pub fn dominated_by(p: &[Step], q: &[Step]) -> bool {
    if p.len() > q.len() {
        return false;
    }
    p.iter()
        .zip(q.iter())
        .all(|(a, b)| step_sig(a) == step_sig(b))
}

/// Indices (into the query's node-path list) of the dominant paths.
pub fn dominant_paths(paths: &[&[Step]]) -> Vec<usize> {
    (0..paths.len())
        .filter(|&i| {
            !(0..paths.len()).any(|j| {
                j != i
                    && dominated_by(paths[i], paths[j])
                    // Equal paths: keep the first as dominant.
                    && !(dominated_by(paths[j], paths[i]) && j > i)
            })
        })
        .collect()
}

/// Run the DPLI stage.
pub fn run(cq: &CompiledQuery, index: &KokoIndex) -> DpliResult {
    let mut sets: Vec<Vec<Sid>> = Vec::new();
    let mut lookups = 0usize;

    // Node variables: lookup dominant paths only.
    let paths: Vec<&[Step]> = cq.norm.node_vars().map(|(_, _, steps)| steps).collect();
    for di in dominant_paths(&paths) {
        let pattern = lookup_pattern(paths[di]);
        lookups += 1;
        if let Some(refs) = index.lookup_path(&pattern) {
            let mut sids: Vec<Sid> = refs.iter().map(|&r| index.posting(r).sid).collect();
            sids.dedup();
            sets.push(sids);
        }
    }

    // Entity variables: sentences containing a mention of the right type.
    for v in &cq.norm.vars {
        match &v.kind {
            NVarKind::Entity { etype } => {
                let mut sids: Vec<Sid> = index
                    .entities_of_type(*etype)
                    .iter()
                    .map(|e| e.sid)
                    .collect();
                sids.sort_unstable();
                sids.dedup();
                sets.push(sids);
            }
            NVarKind::Tokens { words } => {
                // Sentences containing every word of the literal sequence.
                let mut acc: Option<Vec<Sid>> = None;
                for w in words {
                    let mut sids: Vec<Sid> = index
                        .word_refs(w)
                        .iter()
                        .map(|&r| index.posting(r).sid)
                        .collect();
                    sids.dedup();
                    acc = Some(match acc {
                        None => sids,
                        Some(prev) => intersect_sorted(&prev, &sids),
                    });
                }
                if let Some(sids) = acc {
                    sets.push(sids);
                }
            }
            _ => {}
        }
    }

    let candidate_sids = match sets.into_iter().reduce(|a, b| intersect_sorted(&a, &b)) {
        Some(s) => s,
        None => (0..index.num_sentences()).collect(),
    };
    DpliResult {
        candidate_sids,
        lookups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::CompiledQuery;
    use koko_lang::{normalize, parse_query, queries};
    use koko_nlp::Pipeline;

    fn compiled(q: &str) -> CompiledQuery {
        CompiledQuery::compile(normalize(&parse_query(q).unwrap()).unwrap()).unwrap()
    }

    fn index() -> (koko_nlp::Corpus, KokoIndex) {
        let corpus = Pipeline::new().parse_corpus(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The cafe was busy today.",
            "Cyd Charisse had been called Sid for years.",
        ]);
        let idx = KokoIndex::build(&corpus);
        (corpus, idx)
    }

    #[test]
    fn domination_example_41() {
        // In Example 4.1, d = //verb[text=ate]/dobj//"delicious" dominates
        // b = //verb[text=ate] and c = //verb[text=ate]/dobj.
        let cq = compiled(queries::EXAMPLE_4_1);
        let paths: Vec<&[Step]> = cq.norm.node_vars().map(|(_, _, s)| s).collect();
        assert_eq!(paths.len(), 3);
        let dom = dominant_paths(&paths);
        assert_eq!(dom.len(), 1, "only d is dominant");
        assert_eq!(paths[dom[0]].len(), 3);
    }

    #[test]
    fn equal_paths_keep_one_dominant() {
        let cq = compiled("extract x:Str from t if (/ROOT:{ a = //verb, b = //verb, x = a + b })");
        let paths: Vec<&[Step]> = cq.norm.node_vars().map(|(_, _, s)| s).collect();
        let dom = dominant_paths(&paths);
        assert_eq!(dom.len(), 1);
    }

    #[test]
    fn candidates_for_example_21() {
        let (corpus, idx) = index();
        let cq = compiled(queries::EXAMPLE_2_1);
        let r = run(&cq, &idx);
        // Sentences 0 and 1 have verb→dobj→…→"delicious"; 2 and 3 do not.
        assert!(r.candidate_sids.contains(&0));
        assert!(r.candidate_sids.contains(&1));
        assert!(!r.candidate_sids.contains(&2));
        assert!(!r.candidate_sids.contains(&3));
        assert_eq!(r.lookups, 1, "one dominant path");
        let _ = corpus;
    }

    #[test]
    fn empty_extract_keeps_all_sentences() {
        let (_, idx) = index();
        let cq = compiled(queries::EXAMPLE_2_3);
        let r = run(&cq, &idx);
        // x:Entity requires a mention; "The cafe was busy today." has no
        // entity mention, the other three sentences do.
        assert_eq!(r.candidate_sids, vec![0, 1, 3]);
    }

    #[test]
    fn tokens_and_entities_prune() {
        let (_, idx) = index();
        let cq = compiled(queries::TITLE);
        let r = run(&cq, &idx);
        // Only the Cyd Charisse sentence has "called" + Person.
        assert_eq!(r.candidate_sids, vec![3]);
    }

    #[test]
    fn lookup_pattern_priorities() {
        let cq = compiled(queries::EXAMPLE_4_1);
        let d_steps = cq
            .norm
            .node_vars()
            .find(|(_, v, _)| v.name == "d")
            .map(|(_, _, s)| s)
            .unwrap();
        let pat = lookup_pattern(d_steps);
        // //verb[text=ate] → word "ate" wins over pos verb.
        assert_eq!(pat.nodes[0].label, NodeLabel::Word("ate".into()));
        assert!(!pat.root_anchored);
    }
}
