//! DPLI — "Decompose Paths and Lookup Indices" (Algorithm 1, §4.2).
//!
//! Finds the *dominant* paths among the query's node variables (§4.2.1),
//! turns each into a lookup pattern for the multi-index, fetches candidate
//! postings, and intersects everything (including entity-variable and
//! token-sequence sentence sets) into the candidate sentences the rest of
//! the engine iterates over.
//!
//! The intersection is *lazy*: [`stream`] returns a [`CandidateStream`] of
//! cursors over the index's sid-sorted posting lists, ordered by ascending
//! list length and advanced with galloping (exponential-probe) seeks.
//! Candidates come out one sentence id at a time — no posting set is ever
//! materialized on the query path — so top-k early termination and
//! deadlines stop paying for candidates they never look at. [`run`] drains
//! the stream into the historical `Vec<Sid>` form for callers that want
//! the whole set.

use crate::binder::CompiledQuery;
use koko_index::KokoIndex;
use koko_lang::{NVarKind, NodeCond, Step, StepLabel};
use koko_nlp::{EntityPosting, NodeLabel, PNode, Sid, TreePattern};

/// Outcome of the DPLI stage.
#[derive(Debug, Clone)]
pub struct DpliResult {
    /// Candidate sentence ids, sorted.
    pub candidate_sids: Vec<Sid>,
    /// Number of index lookups performed (dominant paths only).
    pub lookups: usize,
}

/// Build the index-lookup pattern for an absolute path. Each step
/// contributes its most selective constraint: an exact word (from the label
/// or a `text=` condition) beats a parse label beats a POS tag beats `*`;
/// the dropped conditions are re-checked by the binder, so candidates stay
/// complete.
pub fn lookup_pattern(steps: &[Step]) -> TreePattern {
    let nodes = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let text_cond = s.conds.iter().find_map(|c| match c {
                NodeCond::Text(w) => Some(w.clone()),
                _ => None,
            });
            let label = if let Some(w) = text_cond {
                NodeLabel::Word(w)
            } else {
                match &s.label {
                    StepLabel::Word(w) => NodeLabel::Word(w.clone()),
                    StepLabel::Pl(l) => NodeLabel::Pl(*l),
                    StepLabel::Pos(p) => NodeLabel::Pos(*p),
                    StepLabel::Wildcard => {
                        // A wildcard with a pos= condition is still usable.
                        s.conds
                            .iter()
                            .find_map(|c| match c {
                                NodeCond::Pos(p) => Some(NodeLabel::Pos(*p)),
                                _ => None,
                            })
                            .unwrap_or(NodeLabel::Wildcard)
                    }
                }
            };
            PNode {
                parent: if i == 0 { None } else { Some((i - 1) as u32) },
                axis: s.axis,
                label,
            }
        })
        .collect();
    TreePattern {
        nodes,
        // Normalized paths are absolute but their first step may use `//`;
        // TreePattern's `root_anchored` means "node 0 must be the sentence
        // root", which only holds when the first axis is `/`.
        root_anchored: steps
            .first()
            .is_some_and(|s| s.axis == koko_nlp::Axis::Child),
    }
}

/// Signature used for the domination test: steps compare equal when axis,
/// label and conditions agree (conditions order-insensitively — "modulo
/// order of conjunction", §4.2.1).
fn step_sig(s: &Step) -> (u8, String, Vec<String>) {
    let axis = match s.axis {
        koko_nlp::Axis::Child => 0,
        koko_nlp::Axis::Descendant => 1,
    };
    let label = match &s.label {
        StepLabel::Pl(l) => format!("l:{}", l.name()),
        StepLabel::Pos(p) => format!("p:{}", p.name()),
        StepLabel::Word(w) => format!("w:{w}"),
        StepLabel::Wildcard => "*".to_string(),
    };
    let mut conds: Vec<String> = s.conds.iter().map(|c| format!("{c:?}")).collect();
    conds.sort();
    (axis, label, conds)
}

/// Whether path `p` is dominated by path `q` (§4.2.1): `p` is a prefix of
/// `q` with identical per-step conditions.
pub fn dominated_by(p: &[Step], q: &[Step]) -> bool {
    if p.len() > q.len() {
        return false;
    }
    p.iter()
        .zip(q.iter())
        .all(|(a, b)| step_sig(a) == step_sig(b))
}

/// Indices (into the query's node-path list) of the dominant paths.
pub fn dominant_paths(paths: &[&[Step]]) -> Vec<usize> {
    (0..paths.len())
        .filter(|&i| {
            !(0..paths.len()).any(|j| {
                j != i
                    && dominated_by(paths[i], paths[j])
                    // Equal paths: keep the first as dominant.
                    && !(dominated_by(paths[j], paths[i]) && j > i)
            })
        })
        .collect()
}

/// One sid-sorted posting source feeding the k-way intersection.
struct Cursor<'a> {
    kind: CursorKind<'a>,
    /// Position: index of the next element (for [`CursorKind::All`], the
    /// next sentence id itself).
    at: usize,
}

enum CursorKind<'a> {
    /// Heap references from a dominant-path lookup (owned — the join
    /// pipeline produced them for this query).
    HeapRefs {
        index: &'a KokoIndex,
        refs: Vec<u32>,
    },
    /// Borrowed word-index posting references (one word of a literal
    /// token sequence).
    WordRefs {
        index: &'a KokoIndex,
        refs: &'a [u32],
    },
    /// Borrowed per-type entity postings (corpus insertion order, which
    /// is nondecreasing in sid).
    Entities { postings: &'a [EntityPosting] },
    /// Owned sorted sentence ids (the merged any-type entity list).
    Sids { sids: Vec<Sid> },
    /// The unconstrained universe `0..end` — no posting list backs it, so
    /// it stays a counter instead of a materialized range.
    All { end: u32 },
}

impl<'a> Cursor<'a> {
    fn new(kind: CursorKind<'a>) -> Cursor<'a> {
        let c = Cursor { kind, at: 0 };
        // The index boundary contract galloping relies on: every posting
        // source yields nondecreasing sentence ids. `KokoIndex::build`
        // guarantees it; a violation here means the index is broken.
        debug_assert!(
            matches!(c.kind, CursorKind::All { .. })
                || (1..c.len()).all(|i| c.sid_at(i - 1) <= c.sid_at(i)),
            "DPLI posting source must be sid-sorted"
        );
        c
    }

    /// Total elements (not remaining) — the selectivity key cursors are
    /// ordered by.
    fn len(&self) -> usize {
        match &self.kind {
            CursorKind::HeapRefs { refs, .. } => refs.len(),
            CursorKind::WordRefs { refs, .. } => refs.len(),
            CursorKind::Entities { postings } => postings.len(),
            CursorKind::Sids { sids } => sids.len(),
            CursorKind::All { end } => *end as usize,
        }
    }

    fn sid_at(&self, i: usize) -> Sid {
        match &self.kind {
            CursorKind::HeapRefs { index, refs } => index.posting(refs[i]).sid,
            CursorKind::WordRefs { index, refs } => index.posting(refs[i]).sid,
            CursorKind::Entities { postings } => postings[i].sid,
            CursorKind::Sids { sids } => sids[i],
            CursorKind::All { .. } => i as Sid,
        }
    }

    /// Advance to the first element with sid ≥ `target` and return that
    /// sid. Galloping seek: exponential probes from the current position
    /// bracket the target in O(log gap), then a binary search pins it.
    /// `probes` counts every posting comparison either phase makes.
    fn seek(&mut self, target: Sid, probes: &mut usize) -> Option<Sid> {
        if let CursorKind::All { end } = self.kind {
            // The universe needs no probing: jump straight to `target`.
            self.at = self.at.max(target as usize);
            return (self.at < end as usize).then_some(self.at as Sid);
        }
        let len = self.len();
        if self.at >= len {
            return None;
        }
        *probes += 1;
        if self.sid_at(self.at) >= target {
            return Some(self.sid_at(self.at));
        }
        // Gallop: double the step until it lands on or past the target
        // (or runs off the end). Invariant: sid_at(lo) < target.
        let mut lo = self.at;
        let mut step = 1usize;
        while lo + step < len && {
            *probes += 1;
            self.sid_at(lo + step) < target
        } {
            lo += step;
            step <<= 1;
        }
        // Binary search (lo, min(lo+step, len)] for the first sid ≥ target.
        let mut l = lo + 1;
        let mut r = (lo + step).min(len);
        while l < r {
            let mid = l + (r - l) / 2;
            *probes += 1;
            if self.sid_at(mid) < target {
                l = mid + 1;
            } else {
                r = mid;
            }
        }
        self.at = l;
        (l < len).then(|| self.sid_at(l))
    }
}

/// Lazy k-way intersection of every posting source a compiled query
/// constrains candidates with. Yields candidate sentence ids in ascending
/// order, one at a time; dropping the stream early (top-k termination,
/// deadlines) simply stops seeking the cursors — nothing was materialized.
pub struct CandidateStream<'a> {
    /// Intersection operands, ordered by ascending length so the most
    /// selective list drives the galloping seeks through the longer ones.
    cursors: Vec<Cursor<'a>>,
    /// Lower bound for the next candidate; `None` once exhausted.
    next_target: Option<Sid>,
    /// Number of index lookups performed (dominant paths only).
    pub lookups: usize,
    probes: usize,
    streamed: usize,
}

impl CandidateStream<'_> {
    /// The next candidate sentence id (ascending), or `None` when the
    /// intersection is exhausted.
    pub fn next_sid(&mut self) -> Option<Sid> {
        let mut target = self.next_target?;
        loop {
            let Some(candidate) = self.cursors[0].seek(target, &mut self.probes) else {
                self.next_target = None;
                return None;
            };
            let mut agreed = true;
            for k in 1..self.cursors.len() {
                match self.cursors[k].seek(candidate, &mut self.probes) {
                    None => {
                        self.next_target = None;
                        return None;
                    }
                    Some(s) if s == candidate => {}
                    Some(s) => {
                        // Disagreement: restart the round from the new,
                        // larger lower bound.
                        target = s;
                        agreed = false;
                        break;
                    }
                }
            }
            if agreed {
                self.next_target = candidate.checked_add(1);
                self.streamed += 1;
                return Some(candidate);
            }
        }
    }

    /// Posting comparisons made by galloping seeks so far.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Candidates yielded so far.
    pub fn streamed(&self) -> usize {
        self.streamed
    }
}

/// Build the lazy candidate stream for a compiled query — the DPLI stage
/// without its historical materialization. The engine consumes this
/// directly; [`run`] wraps it for callers that want the full set.
pub fn stream<'a>(cq: &CompiledQuery, index: &'a KokoIndex) -> CandidateStream<'a> {
    let mut cursors: Vec<Cursor<'a>> = Vec::new();
    let mut lookups = 0usize;

    // Node variables: lookup dominant paths only.
    let paths: Vec<&[Step]> = cq.norm.node_vars().map(|(_, _, steps)| steps).collect();
    for di in dominant_paths(&paths) {
        let pattern = lookup_pattern(paths[di]);
        lookups += 1;
        if let Some(refs) = index.lookup_path(&pattern) {
            cursors.push(Cursor::new(CursorKind::HeapRefs { index, refs }));
        }
    }

    // Entity and token-sequence variables.
    for v in &cq.norm.vars {
        match &v.kind {
            NVarKind::Entity { etype: Some(t) } => {
                cursors.push(Cursor::new(CursorKind::Entities {
                    postings: index.entity_postings_of_type(*t),
                }));
            }
            NVarKind::Entity { etype: None } => {
                // Any-type mentions: the per-type lists interleave in sid
                // order, so this one source is merged up front.
                let mut sids: Vec<Sid> =
                    index.entities_of_type(None).iter().map(|e| e.sid).collect();
                sids.sort_unstable();
                sids.dedup();
                cursors.push(Cursor::new(CursorKind::Sids { sids }));
            }
            NVarKind::Tokens { words } => {
                // One cursor per word of the literal sequence — the k-way
                // intersection absorbs what used to be a pairwise fold
                // over materialized per-word sentence sets.
                for w in words {
                    cursors.push(Cursor::new(CursorKind::WordRefs {
                        index,
                        refs: index.word_refs(w),
                    }));
                }
            }
            _ => {}
        }
    }

    if cursors.is_empty() {
        // No source constrains the query: every sentence is a candidate,
        // streamed lazily instead of collected into a 0..n vector.
        cursors.push(Cursor::new(CursorKind::All {
            end: index.num_sentences(),
        }));
    }
    // Most selective source first: cursor 0 proposes candidates, the
    // longer lists gallop to confirm or veto them. Stable sort keeps
    // equal-length sources in construction order (deterministic probes).
    cursors.sort_by_key(Cursor::len);
    CandidateStream {
        cursors,
        next_target: Some(0),
        lookups,
        probes: 0,
        streamed: 0,
    }
}

/// Run the DPLI stage eagerly: drain [`stream`] into the historical
/// materialized candidate list.
pub fn run(cq: &CompiledQuery, index: &KokoIndex) -> DpliResult {
    let mut s = stream(cq, index);
    let mut candidate_sids = Vec::new();
    while let Some(sid) = s.next_sid() {
        candidate_sids.push(sid);
    }
    DpliResult {
        candidate_sids,
        lookups: s.lookups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::CompiledQuery;
    use koko_lang::{normalize, parse_query, queries};
    use koko_nlp::Pipeline;

    fn compiled(q: &str) -> CompiledQuery {
        CompiledQuery::compile(normalize(&parse_query(q).unwrap()).unwrap()).unwrap()
    }

    fn index() -> (koko_nlp::Corpus, KokoIndex) {
        let corpus = Pipeline::new().parse_corpus(&[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "The cafe was busy today.",
            "Cyd Charisse had been called Sid for years.",
        ]);
        let idx = KokoIndex::build(&corpus);
        (corpus, idx)
    }

    #[test]
    fn domination_example_41() {
        // In Example 4.1, d = //verb[text=ate]/dobj//"delicious" dominates
        // b = //verb[text=ate] and c = //verb[text=ate]/dobj.
        let cq = compiled(queries::EXAMPLE_4_1);
        let paths: Vec<&[Step]> = cq.norm.node_vars().map(|(_, _, s)| s).collect();
        assert_eq!(paths.len(), 3);
        let dom = dominant_paths(&paths);
        assert_eq!(dom.len(), 1, "only d is dominant");
        assert_eq!(paths[dom[0]].len(), 3);
    }

    #[test]
    fn equal_paths_keep_one_dominant() {
        let cq = compiled("extract x:Str from t if (/ROOT:{ a = //verb, b = //verb, x = a + b })");
        let paths: Vec<&[Step]> = cq.norm.node_vars().map(|(_, _, s)| s).collect();
        let dom = dominant_paths(&paths);
        assert_eq!(dom.len(), 1);
    }

    #[test]
    fn candidates_for_example_21() {
        let (corpus, idx) = index();
        let cq = compiled(queries::EXAMPLE_2_1);
        let r = run(&cq, &idx);
        // Sentences 0 and 1 have verb→dobj→…→"delicious"; 2 and 3 do not.
        assert!(r.candidate_sids.contains(&0));
        assert!(r.candidate_sids.contains(&1));
        assert!(!r.candidate_sids.contains(&2));
        assert!(!r.candidate_sids.contains(&3));
        assert_eq!(r.lookups, 1, "one dominant path");
        let _ = corpus;
    }

    #[test]
    fn empty_extract_keeps_all_sentences() {
        let (_, idx) = index();
        let cq = compiled(queries::EXAMPLE_2_3);
        let r = run(&cq, &idx);
        // x:Entity requires a mention; "The cafe was busy today." has no
        // entity mention, the other three sentences do.
        assert_eq!(r.candidate_sids, vec![0, 1, 3]);
    }

    #[test]
    fn tokens_and_entities_prune() {
        let (_, idx) = index();
        let cq = compiled(queries::TITLE);
        let r = run(&cq, &idx);
        // Only the Cyd Charisse sentence has "called" + Person.
        assert_eq!(r.candidate_sids, vec![3]);
    }

    #[test]
    fn lookup_pattern_priorities() {
        let cq = compiled(queries::EXAMPLE_4_1);
        let d_steps = cq
            .norm
            .node_vars()
            .find(|(_, v, _)| v.name == "d")
            .map(|(_, _, s)| s)
            .unwrap();
        let pat = lookup_pattern(d_steps);
        // //verb[text=ate] → word "ate" wins over pos verb.
        assert_eq!(pat.nodes[0].label, NodeLabel::Word("ate".into()));
        assert!(!pat.root_anchored);
    }

    #[test]
    fn stream_matches_materialized_run() {
        let (_, idx) = index();
        for q in [
            queries::EXAMPLE_2_1,
            queries::EXAMPLE_2_3,
            queries::EXAMPLE_4_1,
            queries::TITLE,
        ] {
            let cq = compiled(q);
            let r = run(&cq, &idx);
            let mut s = stream(&cq, &idx);
            let mut got = Vec::new();
            while let Some(sid) = s.next_sid() {
                got.push(sid);
            }
            assert_eq!(got, r.candidate_sids, "query {q:?}");
            assert_eq!(s.streamed(), got.len());
            assert_eq!(s.lookups, r.lookups);
            // Constrained queries pay posting probes; drained streams
            // yield nothing more.
            assert!(s.next_sid().is_none());
        }
    }

    #[test]
    fn galloping_cursor_seeks_forward_and_counts_probes() {
        let mut probes = 0usize;
        let mut c = Cursor::new(CursorKind::Sids {
            sids: vec![0, 2, 4, 8, 16, 16, 32, 64],
        });
        assert_eq!(c.seek(0, &mut probes), Some(0));
        assert_eq!(c.seek(5, &mut probes), Some(8));
        // Duplicates resolve to their first occurrence.
        assert_eq!(c.seek(16, &mut probes), Some(16));
        assert_eq!(c.seek(17, &mut probes), Some(32));
        assert_eq!(c.seek(65, &mut probes), None);
        assert!(probes > 0, "indexed seeks must be accounted");
        // Exhausted cursors stay exhausted without probing.
        let before = probes;
        assert_eq!(c.seek(0, &mut probes), None);
        assert_eq!(probes, before);
    }

    #[test]
    fn universe_cursor_is_lazy_and_probe_free() {
        let mut probes = 0usize;
        let mut c = Cursor::new(CursorKind::All { end: 1_000_000 });
        assert_eq!(c.seek(0, &mut probes), Some(0));
        assert_eq!(c.seek(999_999, &mut probes), Some(999_999));
        assert_eq!(c.seek(1_000_000, &mut probes), None);
        assert_eq!(probes, 0, "the universe cursor never probes postings");
    }

    #[test]
    fn empty_source_short_circuits_the_intersection() {
        let (_, idx) = index();
        // "zeppelin" appears nowhere: its word cursor is empty, sorts
        // first, and vetoes every candidate without probing the universe.
        let mut probes = 0usize;
        let mut empty = Cursor::new(CursorKind::WordRefs {
            index: &idx,
            refs: idx.word_refs("zeppelin"),
        });
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.seek(0, &mut probes), None);
        let mut s = CandidateStream {
            cursors: vec![
                Cursor::new(CursorKind::WordRefs {
                    index: &idx,
                    refs: idx.word_refs("zeppelin"),
                }),
                Cursor::new(CursorKind::All {
                    end: idx.num_sentences(),
                }),
            ],
            next_target: Some(0),
            lookups: 0,
            probes: 0,
            streamed: 0,
        };
        assert_eq!(s.next_sid(), None);
        assert_eq!(s.streamed(), 0);
        assert_eq!(s.probes(), 0);
    }
}
