//! Per-stage wall-clock profiling: the six columns of Table 2
//! (Normalize, DPLI, LoadArticle, GSP, extract, satisfying).

use std::time::Duration;

/// Accumulated stage timings for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Profile {
    pub normalize: Duration,
    pub dpli: Duration,
    pub load_article: Duration,
    pub gsp: Duration,
    pub extract: Duration,
    pub satisfying: Duration,
    /// Number of candidate sentences DPLI produced.
    pub candidate_sentences: usize,
    /// Number of result rows before aggregation filtering.
    pub raw_tuples: usize,
}

impl Profile {
    /// Total across all stages.
    pub fn total(&self) -> Duration {
        self.normalize + self.dpli + self.load_article + self.gsp + self.extract + self.satisfying
    }

    /// One formatted row matching the Table 2 layout (seconds).
    pub fn table_row(&self) -> String {
        fn s(d: Duration) -> f64 {
            d.as_secs_f64()
        }
        format!(
            "{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
            s(self.normalize),
            s(self.dpli),
            s(self.load_article),
            s(self.gsp),
            s(self.extract),
            s(self.satisfying)
        )
    }

    /// Merge another profile into this one (for averaging over runs).
    pub fn add(&mut self, other: &Profile) {
        self.normalize += other.normalize;
        self.dpli += other.dpli;
        self.load_article += other.load_article;
        self.gsp += other.gsp;
        self.extract += other.extract;
        self.satisfying += other.satisfying;
        self.candidate_sentences += other.candidate_sentences;
        self.raw_tuples += other.raw_tuples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rows() {
        let mut p = Profile::default();
        p.normalize = Duration::from_millis(1);
        p.dpli = Duration::from_millis(2);
        p.extract = Duration::from_millis(3);
        assert_eq!(p.total(), Duration::from_millis(6));
        let row = p.table_row();
        assert_eq!(row.split('\t').count(), 6);
        let mut q = Profile::default();
        q.add(&p);
        q.add(&p);
        assert_eq!(q.total(), Duration::from_millis(12));
    }
}
