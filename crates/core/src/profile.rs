//! Per-stage wall-clock profiling: the six columns of Table 2
//! (Normalize, DPLI, LoadArticle, GSP, extract, satisfying).

use std::time::Duration;

/// Accumulated stage timings for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Profile {
    /// Parse + normalize the query text (§4.1), on the calling thread.
    pub normalize: Duration,
    /// Dominant-path index lookups producing candidate sentences (§4.2).
    pub dpli: Duration,
    /// Decoding candidate articles from the document store.
    pub load_article: Duration,
    /// Generating skip plans (§4.3).
    pub gsp: Duration,
    /// Binding domains + extracting tuples from candidate sentences.
    pub extract: Duration,
    /// Scoring satisfying/excluding clauses and aggregating evidence.
    pub satisfying: Duration,
    /// Number of candidate sentences DPLI produced.
    pub candidate_sentences: usize,
    /// The subset of [`Profile::candidate_sentences`] that came from
    /// *delta* shards — documents ingested live since the last
    /// compaction. Zero on a fully compacted (or never-updated) index.
    pub delta_candidates: usize,
    /// Number of result rows before aggregation filtering.
    pub raw_tuples: usize,
    /// Candidate documents never loaded or extracted because a
    /// [`QueryRequest::limit`](crate::QueryRequest::limit) was satisfied
    /// first (top-k early termination). Zero on unlimited runs.
    pub docs_skipped: usize,
    /// Candidate sentences inside those skipped documents — extraction
    /// work the limit avoided entirely.
    pub candidates_skipped: usize,
    /// Candidate documents skipped under `ScoreDesc` top-k because their
    /// shard's score upper bound could not beat the worst score already
    /// in the bounded heap (WAND-style pruning). Disjoint from
    /// [`Profile::docs_skipped`]-via-`DocOrder`: both counters accumulate
    /// into `docs_skipped` totals per shard, but `bound_skipped_docs`
    /// records only the bound-driven subset.
    pub bound_skipped_docs: usize,
    /// Candidate documents skipped under `ScoreDesc` top-k by the
    /// *block-max* refinement: the document's 128-doc block bound (a
    /// tighter, per-block analogue of the shard bound) proved it either
    /// row-free or unable to beat the heap floor, while the shard-wide
    /// bound alone could not. Disjoint from
    /// [`Profile::bound_skipped_docs`]; both are subsets of
    /// [`Profile::docs_skipped`].
    pub block_bound_skipped_docs: usize,
    /// Galloping probes the DPLI candidate stream performed: sorted-list
    /// positions inspected while intersecting posting cursors
    /// (exponential probe + binary search). The streamed analogue of a
    /// comparison count — lower means the skips paid off.
    pub gallop_probes: usize,
    /// Rows whose aggregated score fell below
    /// [`QueryRequest::min_score`](crate::QueryRequest::min_score) and were
    /// dropped inside the aggregation stage (never merged or returned).
    pub min_score_pruned: usize,
    /// Compiled-query cache hits for this execution (0 or 1 per query;
    /// accumulates under [`Profile::merge`]).
    pub compiled_cache_hits: usize,
    /// Compiled-query cache misses (the query was parsed + normalized +
    /// compiled from scratch).
    pub compiled_cache_misses: usize,
    /// Result-cache hits: the rows were served straight from the LRU and
    /// every evaluation stage (DPLI, LoadArticle, GSP, extract,
    /// satisfying) was skipped — their timers stay zero.
    pub result_cache_hits: usize,
    /// Result-cache misses while the result cache was enabled (0 when it
    /// is off or bypassed).
    pub result_cache_misses: usize,
    /// Workers a cluster coordinator fanned this query out to (0 for
    /// single-node execution — every pre-cluster profile shape is
    /// preserved exactly).
    pub remote_shards: usize,
    /// Wall-clock spent waiting on worker round-trips at the coordinator
    /// (max over concurrently outstanding workers per fan-out, summed by
    /// [`Profile::merge`] like every other stage timer). Zero for
    /// single-node execution.
    pub remote_wait: Duration,
}

impl Profile {
    /// Total across all stages.
    pub fn total(&self) -> Duration {
        self.normalize + self.dpli + self.load_article + self.gsp + self.extract + self.satisfying
    }

    /// One formatted row matching the Table 2 layout (seconds).
    pub fn table_row(&self) -> String {
        fn s(d: Duration) -> f64 {
            d.as_secs_f64()
        }
        format!(
            "{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
            s(self.normalize),
            s(self.dpli),
            s(self.load_article),
            s(self.gsp),
            s(self.extract),
            s(self.satisfying)
        )
    }

    /// Merge another profile into this one: stage timers and counters
    /// accumulate field-by-field. This is how the sharded executor folds
    /// per-shard timings into the query profile (so `extract` measured on
    /// shard 3 adds to — rather than overwrites — shard 0's), and how the
    /// benches average over repeated runs. Under parallel execution the
    /// merged durations are *CPU time summed across workers*, which can
    /// exceed wall-clock time.
    pub fn merge(&mut self, other: &Profile) {
        self.normalize += other.normalize;
        self.dpli += other.dpli;
        self.load_article += other.load_article;
        self.gsp += other.gsp;
        self.extract += other.extract;
        self.satisfying += other.satisfying;
        self.candidate_sentences += other.candidate_sentences;
        self.delta_candidates += other.delta_candidates;
        self.raw_tuples += other.raw_tuples;
        self.docs_skipped += other.docs_skipped;
        self.candidates_skipped += other.candidates_skipped;
        self.bound_skipped_docs += other.bound_skipped_docs;
        self.block_bound_skipped_docs += other.block_bound_skipped_docs;
        self.gallop_probes += other.gallop_probes;
        self.min_score_pruned += other.min_score_pruned;
        self.compiled_cache_hits += other.compiled_cache_hits;
        self.compiled_cache_misses += other.compiled_cache_misses;
        self.result_cache_hits += other.result_cache_hits;
        self.result_cache_misses += other.result_cache_misses;
        self.remote_shards += other.remote_shards;
        self.remote_wait += other.remote_wait;
    }

    /// Merge another profile into this one (alias of [`Profile::merge`],
    /// kept for the benches' averaging loops).
    pub fn add(&mut self, other: &Profile) {
        self.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rows() {
        let p = Profile {
            normalize: Duration::from_millis(1),
            dpli: Duration::from_millis(2),
            extract: Duration::from_millis(3),
            ..Profile::default()
        };
        assert_eq!(p.total(), Duration::from_millis(6));
        let row = p.table_row();
        assert_eq!(row.split('\t').count(), 6);
        let mut q = Profile::default();
        q.add(&p);
        q.add(&p);
        assert_eq!(q.total(), Duration::from_millis(12));
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = Profile {
            normalize: Duration::from_millis(1),
            dpli: Duration::from_millis(2),
            load_article: Duration::from_millis(3),
            gsp: Duration::from_millis(4),
            extract: Duration::from_millis(5),
            satisfying: Duration::from_millis(6),
            candidate_sentences: 10,
            delta_candidates: 4,
            raw_tuples: 20,
            docs_skipped: 1,
            candidates_skipped: 2,
            bound_skipped_docs: 5,
            block_bound_skipped_docs: 6,
            gallop_probes: 7,
            min_score_pruned: 3,
            compiled_cache_hits: 1,
            compiled_cache_misses: 0,
            result_cache_hits: 0,
            result_cache_misses: 1,
            remote_shards: 2,
            remote_wait: Duration::from_millis(7),
        };
        let b = Profile {
            normalize: Duration::from_millis(10),
            dpli: Duration::from_millis(20),
            load_article: Duration::from_millis(30),
            gsp: Duration::from_millis(40),
            extract: Duration::from_millis(50),
            satisfying: Duration::from_millis(60),
            candidate_sentences: 100,
            delta_candidates: 7,
            raw_tuples: 200,
            docs_skipped: 10,
            candidates_skipped: 20,
            bound_skipped_docs: 50,
            block_bound_skipped_docs: 60,
            gallop_probes: 70,
            min_score_pruned: 30,
            compiled_cache_hits: 2,
            compiled_cache_misses: 3,
            result_cache_hits: 4,
            result_cache_misses: 5,
            remote_shards: 3,
            remote_wait: Duration::from_millis(70),
        };
        a.merge(&b);
        assert_eq!(a.normalize, Duration::from_millis(11));
        assert_eq!(a.satisfying, Duration::from_millis(66));
        assert_eq!(a.candidate_sentences, 110);
        assert_eq!(a.delta_candidates, 11);
        assert_eq!(a.raw_tuples, 220);
        assert_eq!(a.docs_skipped, 11);
        assert_eq!(a.candidates_skipped, 22);
        assert_eq!(a.bound_skipped_docs, 55);
        assert_eq!(a.block_bound_skipped_docs, 66);
        assert_eq!(a.gallop_probes, 77);
        assert_eq!(a.min_score_pruned, 33);
        assert_eq!(a.compiled_cache_hits, 3);
        assert_eq!(a.compiled_cache_misses, 3);
        assert_eq!(a.result_cache_hits, 4);
        assert_eq!(a.result_cache_misses, 6);
        assert_eq!(a.remote_shards, 5);
        assert_eq!(a.remote_wait, Duration::from_millis(77));
        assert_eq!(a.total(), Duration::from_millis(231));
    }
}
