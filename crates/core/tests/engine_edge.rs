//! Edge-case engine behaviour not covered by the paper's worked examples:
//! multiple satisfying clauses, `eq` constraints, constrained elastic spans,
//! regex node conditions end-to-end, and degenerate inputs.

use koko_core::Koko;

#[test]
fn multiple_satisfying_clauses_filter_independently() {
    // One clause per output variable (§2.2: "up to one satisfying clause
    // for each output variable").
    let koko = Koko::from_texts(&["cities in asian countries such as Beijing and China."]);
    let out = koko
        .query(
            r#"extract a:GPE, b:GPE from "t" if ()
               satisfying a (a SimilarTo "city" {1.0}) with threshold 0.3
               satisfying b (b SimilarTo "country" {1.0}) with threshold 0.3"#,
        )
        .unwrap();
    // Only (Beijing, China) survives both filters.
    let pairs: Vec<(String, String)> = out
        .rows
        .iter()
        .map(|r| (r.values[0].text.clone(), r.values[1].text.clone()))
        .collect();
    assert!(
        pairs.contains(&("Beijing".into(), "China".into())),
        "{pairs:?}"
    );
    assert!(
        !pairs.iter().any(|(a, _)| a == "China"),
        "China is not city-like: {pairs:?}"
    );
    assert!(
        !pairs.iter().any(|(_, b)| b == "Beijing"),
        "Beijing is not country-like: {pairs:?}"
    );
}

#[test]
fn eq_constraint() {
    let koko = Koko::from_texts(&["Anna ate some delicious cheesecake."]);
    // x eq y with y = the dobj subtree and x a declared span over it.
    let out = koko
        .query(
            r#"extract x:Str from "t" if (/ROOT:{
                v = //verb, o = v/dobj,
                x = (o.subtree),
                y = (o.subtree)
               } (x) eq (y))"#,
        )
        .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].values[0].text, "some delicious cheesecake");
}

#[test]
fn elastic_with_token_bounds() {
    let koko = Koko::from_texts(&["Anna quickly ate some delicious cheesecake."]);
    // Gap of exactly one token between the subject and the verb.
    let hit = koko
        .query(
            r#"extract x:Str from "t" if (/ROOT:{
                x = //nsubj + ^[mintok=1, maxtok=1] + //verb })"#,
        )
        .unwrap();
    assert_eq!(hit.rows.len(), 1);
    assert_eq!(hit.rows[0].values[0].text, "Anna quickly ate");
    // maxtok=0 forbids the gap → no rows.
    let miss = koko
        .query(
            r#"extract x:Str from "t" if (/ROOT:{
                x = //nsubj + ^[maxtok=0] + //verb })"#,
        )
        .unwrap();
    assert!(miss.rows.is_empty());
}

#[test]
fn regex_node_condition_end_to_end() {
    let koko = Koko::from_texts(&[
        "Anna visited London in 1999.",
        "Anna visited London in May.",
    ]);
    // Year-shaped pobj via @regex.
    let out = koko
        .query(
            r#"extract y:Str from "t" if (/ROOT:{
                y = //*[@regex="[0-9]{4}"] })"#,
        )
        .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].values[0].text, "1999");
}

#[test]
fn near_condition_in_satisfying() {
    let koko = Koko::from_texts(&[
        "Velvet Moon serves great coffee.", // distance 2 → 1/3
        "Iron Anchor was far far far far away from any coffee.", // distance 7 → 1/8
    ]);
    let q = |t: f64| {
        format!(
            r#"extract x:Entity from "t" if ()
               satisfying x (x near "coffee" {{1}}) with threshold {t}"#
        )
    };
    let strict = koko.query(&q(0.3)).unwrap();
    let names = strict.distinct("x");
    assert!(names.iter().any(|n| n == "Velvet Moon"), "{names:?}");
    assert!(!names.iter().any(|n| n == "Iron Anchor"), "{names:?}");
    let lax = koko.query(&q(0.05)).unwrap();
    assert!(lax.distinct("x").iter().any(|n| n == "Iron Anchor"));
}

#[test]
fn mentions_vs_contains_semantics() {
    // §4.4.1: "chocolate ice cream" contains "ice" (a token), mentions
    // "choc" (a substring) but does not contain "choc".
    let koko = Koko::from_texts(&["I ate a chocolate ice cream."]);
    let run = |cond: &str| {
        koko.query(&format!(
            r#"extract x:Entity from "t" if ()
               satisfying x ({cond} {{1}}) with threshold 0.9"#
        ))
        .unwrap()
        .distinct("x")
    };
    assert!(!run(r#"str(x) contains "choc""#)
        .iter()
        .any(|n| n.contains("chocolate")));
    assert!(run(r#"str(x) mentions "choc""#)
        .iter()
        .any(|n| n.contains("chocolate")));
    assert!(run(r#"str(x) contains "ice""#)
        .iter()
        .any(|n| n.contains("chocolate")));
}

#[test]
fn document_scoped_aggregation_does_not_leak_across_documents() {
    // Evidence in doc 0 must not credit the same name in doc 1.
    let koko = Koko::from_texts(&[
        "Velvet Moon serves espresso. Velvet Moon employs baristas.",
        "Velvet Moon was mentioned once.",
    ]);
    let out = koko
        .query(
            r#"extract x:Entity from "t" if ()
               satisfying x (x [["serves coffee"]] {1}) with threshold 0.3"#,
        )
        .unwrap();
    let docs: Vec<u32> = out
        .doc_values("x")
        .into_iter()
        .filter(|(_, n)| n == "Velvet Moon")
        .map(|(d, _)| d)
        .collect();
    assert_eq!(docs, vec![0], "evidence must stay within its document");
}

#[test]
fn whitespace_and_empty_queries() {
    let koko = Koko::from_texts(&["Anna ate cake."]);
    assert!(koko.query("").is_err());
    assert!(koko.query("   \n ").is_err());
    // Query over an entity type absent from the corpus.
    let out = koko.query(r#"extract f:Facility from "t" if ()"#).unwrap();
    assert!(out.rows.is_empty());
}

#[test]
fn wildcard_only_extract_returns_every_sentence_root_binding() {
    let koko = Koko::from_texts(&["Anna ate cake. She was happy."]);
    let out = koko
        .query(r#"extract v:Str from "t" if (/ROOT:{ v = //verb })"#)
        .unwrap();
    let texts: Vec<&str> = out.rows.iter().map(|r| r.values[0].text.as_str()).collect();
    assert!(texts.contains(&"ate"));
    assert!(texts.contains(&"was"));
}
