//! Cluster-side fault injection, extending the serve-layer suite in
//! `crates/serve/tests/fault_injection.rs`: killed workers, wedged
//! workers, protocol-breaking workers, and malformed shard maps must
//! each produce a structured, deadline-bounded answer — never a panic,
//! a hang past the budget, or silently wrong rows.

use koko_cluster::{Coordinator, CoordinatorConfig, FanOutConfig, Mode, ShardMap, WorkerEntry};
use koko_core::{EngineOpts, Koko};
use koko_serve::protocol::QueryOpts;
use koko_serve::{Client, Server};
use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::time::{Duration, Instant};

const CORPUS: [&str; 4] = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "Cyd Charisse had been called Sid for years.",
    "Vera Alys was born in 1911.",
];

fn engine(texts: &[&str]) -> Koko {
    Koko::from_texts_with_opts(
        texts,
        EngineOpts {
            num_shards: 1,
            parallel: false,
            result_cache: 8,
            ..EngineOpts::default()
        },
    )
}

fn fast_config() -> CoordinatorConfig {
    CoordinatorConfig {
        default_deadline: Duration::from_millis(1500),
        fanout: FanOutConfig {
            connect_timeout: Duration::from_millis(250),
            max_retries: 1,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
            seed: 3,
        },
        ..CoordinatorConfig::default()
    }
}

fn entry(name: &str, addr: String, doc_base: u32, docs: u32, sid_base: u32) -> WorkerEntry {
    WorkerEntry {
        name: name.into(),
        addr,
        replicas: vec![],
        doc_base,
        docs,
        sid_base,
        snapshot: None,
    }
}

fn two_worker_map(addr0: String, addr1: String) -> ShardMap {
    ShardMap {
        version: 1,
        epoch: 0,
        mode: Mode::Partial,
        workers: vec![entry("w0", addr0, 0, 2, 0), entry("w1", addr1, 2, 2, 2)],
    }
}

/// Killing a worker mid-load: every in-flight and subsequent query keeps
/// getting a structured answer; once the kill is visible, answers are
/// flagged `partial` with the dead worker named — and the surviving
/// worker's rows keep flowing.
#[test]
fn worker_kill_mid_load_degrades_to_flagged_partials() {
    let w0 = Server::bind(engine(&CORPUS[..2]), "127.0.0.1:0", 1).unwrap();
    let w1 = Server::bind(engine(&CORPUS[2..]), "127.0.0.1:0", 1).unwrap();
    let map = two_worker_map(w0.local_addr().to_string(), w1.local_addr().to_string());
    let coordinator = Coordinator::bind(map, "127.0.0.1:0", fast_config()).unwrap();
    let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();

    // Healthy warm-up: full answers, no partial flag.
    for _ in 0..3 {
        let line = client
            .query(koko_lang::queries::EXAMPLE_2_1, false)
            .unwrap();
        assert!(
            line.contains("\"ok\":true") && !line.contains("partial"),
            "{line}"
        );
        assert!(
            line.contains("\"num_rows\":2"),
            "both halves answer: {line}"
        );
    }
    w1.shutdown();
    // Post-kill: every query still answers, flagged and within deadline.
    for _ in 0..5 {
        let started = Instant::now();
        let line = client
            .query(koko_lang::queries::EXAMPLE_2_1, false)
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "answers stay deadline-bounded"
        );
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"partial\":true"), "{line}");
        assert!(line.contains("\"worker\":\"w1\""), "{line}");
        assert!(
            line.contains("\"doc\":0"),
            "the surviving worker's rows keep flowing: {line}"
        );
    }
    drop(client);
    coordinator.shutdown();
    w0.shutdown();
}

/// A wedged worker (accepts, reads, never answers) must surface as a
/// structured per-worker timeout at the request deadline — not hold the
/// client forever.
#[test]
fn slow_worker_times_out_at_the_deadline_with_a_structured_error() {
    let w0 = Server::bind(engine(&CORPUS[..2]), "127.0.0.1:0", 1).unwrap();
    let wedged = TcpListener::bind("127.0.0.1:0").unwrap();
    let wedged_addr = wedged.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        // Accept and read forever; never write a byte.
        let mut held = Vec::new();
        while let Ok((stream, _)) = wedged.accept() {
            let s = stream.try_clone().unwrap();
            held.push(stream);
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                let mut s = s;
                while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
            });
        }
    });
    let map = two_worker_map(w0.local_addr().to_string(), wedged_addr);
    let coordinator = Coordinator::bind(map, "127.0.0.1:0", fast_config()).unwrap();
    let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
    let started = Instant::now();
    let line = client
        .query_with_opts(
            koko_lang::queries::EXAMPLE_2_1,
            false,
            QueryOpts {
                deadline_ms: Some(400),
                ..QueryOpts::default()
            },
        )
        .unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "deadline 400ms must not stretch to {elapsed:?}"
    );
    assert!(line.contains("\"partial\":true"), "{line}");
    assert!(
        line.contains("\"error\":\"timeout\""),
        "the wedged worker surfaces as a timeout: {line}"
    );
    assert!(line.contains("\"doc\":0"), "w0's rows survive: {line}");
    drop(client);
    coordinator.shutdown();
    w0.shutdown();
    drop(hold); // listener thread dies with the process
}

/// A worker that answers with protocol garbage is indistinguishable from
/// a broken connection: its shard degrades structurally, the other rows
/// survive.
#[test]
fn garbage_speaking_worker_degrades_like_a_disconnect() {
    let w0 = Server::bind(engine(&CORPUS[..2]), "127.0.0.1:0", 1).unwrap();
    let garbage = TcpListener::bind("127.0.0.1:0").unwrap();
    let garbage_addr = garbage.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        while let Ok((stream, _)) = garbage.accept() {
            std::thread::spawn(move || {
                use std::io::Write;
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                let mut line = String::new();
                while matches!(reader.read_line(&mut line), Ok(n) if n > 0) {
                    let _ = stream.write_all(b"!! not json !!\n");
                    line.clear();
                }
            });
        }
    });
    let map = two_worker_map(w0.local_addr().to_string(), garbage_addr);
    let coordinator = Coordinator::bind(map, "127.0.0.1:0", fast_config()).unwrap();
    let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
    let line = client
        .query(koko_lang::queries::EXAMPLE_2_1, false)
        .unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"partial\":true"), "{line}");
    assert!(
        line.contains("\"worker\":\"w1\"") && line.contains("disconnect"),
        "garbage reads as a structured disconnect: {line}"
    );
    assert!(line.contains("\"doc\":0"), "{line}");
    drop(client);
    coordinator.shutdown();
    w0.shutdown();
}

/// Malformed shard maps — gaps, overlaps, empty ranges — are refused at
/// bind time with an error naming the worker. A split map silently
/// dropping or duplicating rows is the one failure the cluster must
/// never serve.
#[test]
fn split_shard_maps_are_refused_at_bind_time() {
    let mut gap = two_worker_map("127.0.0.1:1".into(), "127.0.0.1:2".into());
    gap.workers[1].doc_base = 3;
    let err = match Coordinator::bind(gap, "127.0.0.1:0", fast_config()) {
        Err(e) => e,
        Ok(_) => panic!("a gapped shard map must not bind"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("w1"), "{err}");

    let mut overlap = two_worker_map("127.0.0.1:1".into(), "127.0.0.1:2".into());
    overlap.workers[1].doc_base = 1;
    assert!(Coordinator::bind(overlap, "127.0.0.1:0", fast_config()).is_err());

    let mut empty = two_worker_map("127.0.0.1:1".into(), "127.0.0.1:2".into());
    empty.workers[0].docs = 0;
    empty.workers[1].doc_base = 0;
    empty.workers[1].docs = 4;
    assert!(Coordinator::bind(empty, "127.0.0.1:0", fast_config()).is_err());

    // The same validation fires on the file-format path.
    assert!(ShardMap::parse(r#"{"version":1,"workers":[]}"#).is_err());
    assert!(ShardMap::parse(
        r#"{"version":1,"workers":[{"name":"w0","addr":"h:1","doc_base":1,"docs":2}]}"#
    )
    .is_err());
}
