//! The coordinator: a wire-compatible front door that owns the
//! [`ShardMap`] and answers the whole serve protocol by fanning out to
//! the workers.
//!
//! Clients speak the exact single-node protocol to the coordinator —
//! `Client` works unchanged — and get responses whose `rows` payload is
//! byte-identical to a single server holding the whole corpus:
//!
//! * **Queries** fan out over the pooled, pipelined [`FanOut`]
//!   connections. Each worker is asked for the first `offset + limit`
//!   rows of its own range (offset 0 — the global window is cut after
//!   the merge; see [`merge`]), replies are parsed, remapped by
//!   `doc_base`, merged under the canonical order, and re-serialized
//!   with the single-node writers. The reply shape mirrors the
//!   single-node contract: no `opts` → legacy shape, `opts` →
//!   extended shape, `opts.stream` → header/chunk/trailer frames.
//! * **Deadlines** propagate: `opts.deadline_ms` bounds both the
//!   worker-side evaluation and the coordinator's fan-out wait; without
//!   one the coordinator's `default_deadline` bounds the wait.
//! * **Failures** surface structurally. In [`Mode::Strict`] any worker
//!   failure fails the query with an error naming the worker. In
//!   [`Mode::Partial`] the surviving rows are returned with
//!   `"partial":true` and an `explain.remote_shards` array carrying a
//!   per-worker entry (healthy or failed, with RTT and retry counts).
//!   Partial responses are never streamed — the caller must see the
//!   `partial` flag on the first line.
//! * **Writes** are sequenced under a writer lock and published in two
//!   phases: `add` is forwarded to the tail worker (append-only ranges
//!   keep the map contiguous) and, once the worker acknowledges, the
//!   coordinator swaps in [`ShardMap::grown`] — queries pin the map
//!   `Arc` at entry, so no query ever sees a torn epoch. `compact`
//!   broadcasts to every worker and bumps the epoch the same way.
//!   Writes are submitted non-retryable: resending an `add` after an
//!   ambiguous disconnect could ingest documents twice.

use crate::fanout::{FanOut, FanOutConfig, WorkerReply};
use crate::map::{Mode, ShardMap};
use crate::merge::{self, WorkerOutput};
use koko_core::{Explain, Profile, QueryOutput, RemoteShardExplain};
use koko_serve::json::{self, write_escaped, Json};
use koko_serve::protocol::{
    err_response, ok_response, opts_response, stream_chunk, stream_header, stream_trailer,
    QueryOpts, Request, WireOrder,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Rows per streamed chunk frame (matches the single-node server).
const STREAM_CHUNK_ROWS: usize = 256;

/// Coordinator tuning.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Override the shard map's partial-failure mode (`None` = use the
    /// map's).
    pub mode: Option<Mode>,
    /// Fan-out wait for queries that carry no `deadline_ms` of their
    /// own.
    pub default_deadline: Duration,
    /// Fan-out wait for `add`/`compact` (writes rebuild shards and can
    /// legitimately take much longer than queries).
    pub write_deadline: Duration,
    /// Connection-pool tuning (retries, backoff, connect timeout).
    pub fanout: FanOutConfig,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            mode: None,
            default_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(60),
            fanout: FanOutConfig::default(),
        }
    }
}

struct Shared {
    /// The coordinator's own bound address (to self-connect and unblock
    /// `accept` when a wire `shutdown` arrives).
    addr: std::sync::OnceLock<SocketAddr>,
    /// The published topology. Readers clone the `Arc` (pinning one
    /// epoch for the whole query); writers swap the pointer under the
    /// lock — the two-phase publish.
    map: Mutex<Arc<ShardMap>>,
    fanout: FanOut,
    mode: Mode,
    default_deadline: Duration,
    write_deadline: Duration,
    /// Sequences `add`/`compact` so epochs publish in order.
    writer: Mutex<()>,
    stop: AtomicBool,
}

/// A running coordinator listener. Dropping it (or calling
/// [`Coordinator::shutdown`]) stops the accept loop; worker connections
/// close with the pool.
pub struct Coordinator {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Validate `map`, connect the fan-out pool, and start accepting
    /// clients on `addr` (use port 0 to let the OS pick).
    pub fn bind(
        map: ShardMap,
        addr: &str,
        config: CoordinatorConfig,
    ) -> std::io::Result<Coordinator> {
        map.validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let endpoints: Vec<Vec<String>> = map.workers.iter().map(|w| w.endpoints()).collect();
        let fanout = FanOut::new(endpoints, config.fanout)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            addr: std::sync::OnceLock::new(),
            mode: config.mode.unwrap_or(map.mode),
            map: Mutex::new(Arc::new(map)),
            fanout,
            default_deadline: config.default_deadline,
            write_deadline: config.write_deadline,
            writer: Mutex::new(()),
            stop: AtomicBool::new(false),
        });
        let _ = shared.addr.set(local_addr);
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("koko-coordinator".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if accept_shared.stop.load(Ordering::SeqCst) {
                            return;
                        }
                        // One-line replies must not sit in Nagle's buffer
                        // waiting for the client's delayed ACK.
                        let _ = stream.set_nodelay(true);
                        let client_shared = Arc::clone(&accept_shared);
                        let _ = thread::Builder::new()
                            .name("koko-coordinator-client".into())
                            .spawn(move || {
                                let _ = serve_client(&client_shared, stream);
                            });
                    }
                    Err(_) => {
                        if accept_shared.stop.load(Ordering::SeqCst) {
                            return;
                        }
                        thread::sleep(Duration::from_millis(10));
                    }
                }
            })?;
        Ok(Coordinator {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.map.lock().unwrap().epoch
    }

    /// A snapshot of the currently published shard map.
    pub fn shard_map(&self) -> ShardMap {
        (**self.shared.map.lock().unwrap()).clone()
    }

    /// Block until the coordinator stops (a wire `shutdown` request, or
    /// [`Coordinator::shutdown`] from another thread via a clone — the
    /// accept loop exiting for any reason).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stop accepting clients and join the accept loop. In-flight
    /// client threads finish their current line and exit on the next
    /// read.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call.
        let _ = TcpStream::connect(self.local_addr);
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop_accepting();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn serve_client(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let frames = match Request::decode(&line) {
            Err(e) => vec![err_response(0, &e)],
            Ok(Request::Ping { id }) => {
                vec![format!("{{\"id\":{id},\"ok\":true,\"pong\":true}}")]
            }
            Ok(Request::Stats { id }) => vec![stats_line(shared, id)],
            Ok(Request::Shutdown { id }) => {
                let reply = format!("{{\"id\":{id},\"ok\":true,\"stopping\":true}}");
                writer.write_all(reply.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                shared.stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so the process can exit.
                if let Some(addr) = shared.addr.get() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
            Ok(Request::Add { id, texts }) => vec![handle_add(shared, id, texts)],
            Ok(Request::Compact { id }) => vec![handle_compact(shared, id)],
            Ok(Request::Query {
                id,
                text,
                cache,
                opts,
                auth,
            }) => handle_query(shared, id, &text, cache, opts, auth.as_deref()),
        };
        for frame in frames {
            writer.write_all(frame.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
    }
}

fn stats_line(shared: &Shared, id: u64) -> String {
    let map = shared.map.lock().unwrap().clone();
    let mut out = format!(
        "{{\"id\":{id},\"ok\":true,\"cluster\":true,\"epoch\":{},\"mode\":\"{}\",\"workers\":{},\"documents\":{},\"stats\":{{\"workers\":[",
        map.epoch,
        shared.mode.as_str(),
        map.workers.len(),
        map.total_docs(),
    );
    for (i, w) in map.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_escaped(&mut out, &w.name);
        out.push_str(",\"addr\":");
        write_escaped(&mut out, &w.addr);
        out.push_str(&format!(
            ",\"replicas\":{},\"doc_base\":{},\"docs\":{}}}",
            w.replicas.len(),
            w.doc_base,
            w.docs
        ));
    }
    out.push_str("]}}");
    out
}

/// One worker's fate for a fanned-out query: its parsed output when the
/// round trip succeeded, or the structured error text.
struct WorkerResult {
    out: Option<WorkerOutput>,
    error: Option<String>,
    addr: String,
    rtt: Duration,
    retries: usize,
}

fn classify(
    reply: Option<WorkerReply>,
    doc_base: u32,
    sid_base: u32,
    fallback_addr: &str,
) -> WorkerResult {
    let reply = match reply {
        Some(r) => r,
        None => {
            return WorkerResult {
                out: None,
                error: Some("no reply".into()),
                addr: fallback_addr.to_string(),
                rtt: Duration::ZERO,
                retries: 0,
            }
        }
    };
    let addr = if reply.addr.is_empty() {
        fallback_addr.to_string()
    } else {
        reply.addr
    };
    match reply.line {
        Ok(line) => match merge::parse_worker_response(&line, doc_base, sid_base) {
            Ok(out) => WorkerResult {
                out: Some(out),
                error: None,
                addr,
                rtt: reply.rtt,
                retries: reply.retries,
            },
            Err(e) => WorkerResult {
                out: None,
                error: Some(format!("disconnect: {e}")),
                addr,
                rtt: reply.rtt,
                retries: reply.retries,
            },
        },
        Err(we) => WorkerResult {
            out: None,
            error: Some(we.wire()),
            addr,
            rtt: reply.rtt,
            retries: reply.retries,
        },
    }
}

fn handle_query(
    shared: &Shared,
    id: u64,
    text: &str,
    cache: bool,
    opts: Option<QueryOpts>,
    auth: Option<&str>,
) -> Vec<String> {
    let map = shared.map.lock().unwrap().clone();
    let budget = opts
        .and_then(|o| o.deadline_ms)
        .map(Duration::from_millis)
        .unwrap_or(shared.default_deadline);
    // Workers compute the first `offset + limit` rows of their own
    // range; the global window is cut after the merge (a row in the
    // global window is always inside its worker's `offset + limit`
    // prefix — see the merge module docs). Streaming is a
    // coordinator-side concern: workers always answer in one line.
    let worker_opts = opts.map(|o| QueryOpts {
        limit: o.limit.map(|k| k.saturating_add(o.offset.unwrap_or(0))),
        offset: None,
        stream: false,
        ..o
    });
    let lines: Vec<Option<String>> = map
        .workers
        .iter()
        .map(|_| {
            Some(
                Request::Query {
                    id,
                    text: text.to_string(),
                    cache,
                    opts: worker_opts,
                    auth: auth.map(str::to_string),
                }
                .encode(),
            )
        })
        .collect();
    let started = Instant::now();
    let replies = shared.fanout.call_all(lines, budget, true);
    let remote_wait = started.elapsed();

    let mut results: Vec<WorkerResult> = Vec::with_capacity(map.workers.len());
    for (w, reply) in map.workers.iter().zip(replies) {
        results.push(classify(reply, w.doc_base, w.sid_base, &w.addr));
    }

    // A worker-side refusal (ok:false — e.g. a query parse error) is
    // deterministic and identical on every worker: forward it verbatim
    // so clients see exactly the single-node error line.
    if let Some(refusal) = results
        .iter()
        .filter_map(|r| r.out.as_ref())
        .find_map(|o| o.error.clone())
    {
        return vec![err_response(id, &refusal)];
    }

    let failed: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.out.is_none())
        .map(|(i, _)| i)
        .collect();

    if !failed.is_empty() && shared.mode == Mode::Strict {
        let mut msg = String::from("strict mode: ");
        for (n, i) in failed.iter().enumerate() {
            if n > 0 {
                msg.push_str("; ");
            }
            msg.push_str(&format!(
                "worker {} ({}) failed: {}",
                map.workers[*i].name,
                results[*i].addr,
                results[*i].error.as_deref().unwrap_or("unknown"),
            ));
        }
        return vec![err_response(id, &msg)];
    }

    // Merge the healthy workers under the canonical order and cut the
    // global window.
    let score_desc = opts
        .and_then(|o| o.order)
        .map(|o| o == WireOrder::ScoreDesc)
        .unwrap_or(false);
    let mut per_worker: Vec<Vec<koko_core::Row>> = Vec::new();
    let mut total_matches = 0usize;
    let mut any_truncated = false;
    let mut profile = Profile::default();
    let mut plans: Vec<String> = Vec::new();
    let mut shards: Vec<koko_core::ShardExplain> = Vec::new();
    for r in &mut results {
        if let Some(out) = r.out.as_mut() {
            total_matches += out.total_matches;
            any_truncated |= out.truncated;
            profile.merge(&out.profile);
            if plans.is_empty() && !out.plans.is_empty() {
                plans = std::mem::take(&mut out.plans);
            }
            for mut s in out.shards.drain(..) {
                s.shard = shards.len();
                shards.push(s);
            }
            per_worker.push(std::mem::take(&mut out.rows));
        }
    }
    let merged = merge::merge_rows(per_worker, score_desc);
    let offset = opts.and_then(|o| o.offset).unwrap_or(0) as usize;
    let limit = opts.and_then(|o| o.limit).map(|k| k as usize);
    let (rows, truncated) = merge::window(merged, offset, limit, any_truncated);
    profile.remote_shards = map.workers.len();
    profile.remote_wait = remote_wait;

    let partial = !failed.is_empty();
    let want_explain = opts.map(|o| o.explain).unwrap_or(false);
    let explain = if want_explain || partial {
        let remote_shards: Vec<RemoteShardExplain> = map
            .workers
            .iter()
            .zip(&results)
            .map(|(w, r)| RemoteShardExplain {
                worker: w.name.clone(),
                addr: r.addr.clone(),
                doc_base: w.doc_base,
                docs: w.docs,
                rows: r.out.as_ref().map(|o| o.total_matches).unwrap_or(0),
                rtt_ms: r.rtt.as_secs_f64() * 1e3,
                error: r.error.clone(),
                retries: r.retries,
            })
            .collect();
        Some(Explain {
            plans,
            shards,
            remote_shards,
        })
    } else {
        None
    };

    let out = QueryOutput {
        rows,
        total_matches,
        truncated,
        explain,
        profile,
    };

    if partial {
        // Degraded answers always use the extended shape with the
        // partial flag up front and a fully populated explain, and are
        // never streamed: the first line must carry the flag.
        return vec![partial_response(id, &out)];
    }
    match opts {
        None => vec![ok_response(id, &out)],
        Some(o) if o.stream => {
            let mut frames = vec![stream_header(id, &out)];
            let mut chunk = 0usize;
            let mut next = 0usize;
            while next < out.rows.len() {
                let end = (next + STREAM_CHUNK_ROWS).min(out.rows.len());
                frames.push(stream_chunk(id, chunk, &out.rows[next..end]));
                chunk += 1;
                next = end;
            }
            frames.push(stream_trailer(id, chunk, &out));
            frames
        }
        Some(_) => vec![opts_response(id, &out)],
    }
}

/// The extended response shape plus `"partial":true` — the degraded-mode
/// answer. `explain` is always present (the caller populated
/// `remote_shards` with the per-worker errors).
fn partial_response(id: u64, out: &QueryOutput) -> String {
    let full = opts_response(id, out);
    // Inject the flag right after `"ok":true` so even shape-unaware
    // clients that scan the line's head can spot a degraded answer.
    let marker = "\"ok\":true,";
    match full.find(marker) {
        Some(at) => {
            let mut line = String::with_capacity(full.len() + 16);
            line.push_str(&full[..at + marker.len()]);
            line.push_str("\"partial\":true,");
            line.push_str(&full[at + marker.len()..]);
            line
        }
        None => full,
    }
}

fn handle_add(shared: &Shared, id: u64, texts: Vec<String>) -> String {
    let _writes = shared.writer.lock().unwrap();
    let map = shared.map.lock().unwrap().clone();
    let tail = map.workers.len() - 1;
    // Phase 1: mutate the tail worker (its v4 snapshot seals the new
    // delta shards before acknowledging). Non-retryable — a resend
    // after an ambiguous disconnect could ingest the documents twice.
    let mut lines: Vec<Option<String>> = vec![None; map.workers.len()];
    lines[tail] = Some(Request::Add { id, texts }.encode());
    let replies = shared.fanout.call_all(lines, shared.write_deadline, false);
    let reply = replies.into_iter().nth(tail).flatten();
    let tail_name = &map.workers[tail].name;
    let line = match reply {
        Some(WorkerReply { line: Ok(line), .. }) => line,
        Some(WorkerReply {
            line: Err(we),
            addr,
            ..
        }) => {
            return err_response(
                id,
                &format!("add failed on worker {tail_name} ({addr}): {}", we.wire()),
            )
        }
        None => return err_response(id, &format!("add failed on worker {tail_name}: no reply")),
    };
    let (added, _, _) = match parse_write_ack(&line) {
        Ok(counters) => counters,
        Err(refusal) => {
            return err_response(id, &format!("worker {tail_name} refused add: {refusal}"))
        }
    };
    // Phase 2: publish the grown map — the pointer swap. Queries that
    // pinned the old Arc keep a consistent (pre-add) view.
    let next = map.grown(added as u32);
    let epoch = next.epoch;
    let documents = next.total_docs();
    *shared.map.lock().unwrap() = Arc::new(next);
    format!(
        "{{\"id\":{id},\"ok\":true,\"added\":{added},\"documents\":{documents},\"epoch\":{epoch},\"worker\":\"{}\"}}",
        map.workers[tail].name
    )
}

fn handle_compact(shared: &Shared, id: u64) -> String {
    let _writes = shared.writer.lock().unwrap();
    let map = shared.map.lock().unwrap().clone();
    let lines: Vec<Option<String>> = map
        .workers
        .iter()
        .map(|_| Some(Request::Compact { id }.encode()))
        .collect();
    let replies = shared.fanout.call_all(lines, shared.write_deadline, false);
    let mut merged_deltas = 0usize;
    let mut shard_count = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for (w, reply) in map.workers.iter().zip(replies) {
        match reply {
            Some(WorkerReply { line: Ok(line), .. }) => match parse_write_ack(&line) {
                Ok((_, deltas, shards)) => {
                    merged_deltas += deltas;
                    shard_count += shards;
                }
                Err(refusal) => {
                    failures.push(format!("worker {} refused compact: {refusal}", w.name))
                }
            },
            Some(WorkerReply {
                line: Err(we),
                addr,
                ..
            }) => failures.push(format!("worker {} ({addr}) failed: {}", w.name, we.wire())),
            None => failures.push(format!("worker {} sent no reply", w.name)),
        }
    }
    if !failures.is_empty() {
        // No epoch bump: compaction does not change results, so workers
        // that already compacted stay correct under the old epoch.
        return err_response(id, &format!("compact incomplete: {}", failures.join("; ")));
    }
    let mut next = (*map).clone();
    next.epoch += 1;
    let epoch = next.epoch;
    *shared.map.lock().unwrap() = Arc::new(next);
    format!(
        "{{\"id\":{id},\"ok\":true,\"merged_deltas\":{merged_deltas},\"shards\":{shard_count},\"epoch\":{epoch}}}"
    )
}

/// Parse a worker's `add`/`compact` acknowledgement counters out of a
/// raw reply line (queries go through [`merge::parse_worker_response`]).
pub(crate) fn parse_write_ack(line: &str) -> Result<(usize, usize, usize), String> {
    let root = json::parse(line).map_err(|e| format!("unparseable worker response: {e:?}"))?;
    if !root.get("ok").and_then(Json::as_bool).unwrap_or(false) {
        return Err(root
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown worker error")
            .to_string());
    }
    let num = |key: &str| root.get(key).and_then(Json::as_f64).unwrap_or(0.0) as usize;
    Ok((num("added"), num("merged_deltas"), num("shards")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::WorkerEntry;
    use koko_core::{EngineOpts, Koko};
    use koko_serve::protocol::response_rows;
    use koko_serve::{Client, Server, ServerConfig};

    const CORPUS: [&str; 8] = [
        "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
        "Anna ate some delicious cheesecake that she bought at a grocery store.",
        "Cyd Charisse had been called Sid for years.",
        "Vera Alys was born in 1911.",
        "Baking chocolate is a type of chocolate that is prepared for baking.",
        "cities in asian countries such as Beijing and Tokyo.",
        "Velvet Moon Cafe opened downtown. The owner was proud.",
        "The cafe was busy today.",
    ];
    const SPLIT: usize = 4;

    fn engine(texts: &[&str]) -> Koko {
        Koko::from_texts_with_opts(
            texts,
            EngineOpts {
                result_cache: 8,
                parallel: false,
                num_shards: 1,
                ..EngineOpts::default()
            },
        )
    }

    fn fast_fanout() -> FanOutConfig {
        FanOutConfig {
            connect_timeout: Duration::from_millis(250),
            max_retries: 1,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
            seed: 11,
        }
    }

    fn bind_worker(koko: Koko, writable: bool) -> Server {
        Server::bind_config(
            koko,
            "127.0.0.1:0",
            ServerConfig {
                writable,
                ..ServerConfig::default()
            },
        )
        .expect("worker binds")
    }

    fn spawn_cluster(mode: Mode, writable: bool) -> (Vec<Server>, Coordinator) {
        let e0 = engine(&CORPUS[..SPLIT]);
        // Sentence ids are corpus-global: w1's local sids start where
        // w0's corpus ends.
        let sid_split = e0.snapshot().num_sentences() as u32;
        let w0 = bind_worker(e0, writable);
        let w1 = bind_worker(engine(&CORPUS[SPLIT..]), writable);
        let map = ShardMap {
            version: 1,
            epoch: 0,
            mode,
            workers: vec![
                WorkerEntry {
                    name: "w0".into(),
                    addr: w0.local_addr().to_string(),
                    replicas: vec![],
                    doc_base: 0,
                    docs: SPLIT as u32,
                    sid_base: 0,
                    snapshot: None,
                },
                WorkerEntry {
                    name: "w1".into(),
                    addr: w1.local_addr().to_string(),
                    replicas: vec![],
                    doc_base: SPLIT as u32,
                    docs: (CORPUS.len() - SPLIT) as u32,
                    sid_base: sid_split,
                    snapshot: None,
                },
            ],
        };
        let coordinator = Coordinator::bind(
            map,
            "127.0.0.1:0",
            CoordinatorConfig {
                default_deadline: Duration::from_secs(5),
                write_deadline: Duration::from_secs(10),
                fanout: fast_fanout(),
                ..CoordinatorConfig::default()
            },
        )
        .expect("coordinator binds");
        (vec![w0, w1], coordinator)
    }

    /// Everything before `"profile":` — id, ok, num_rows,
    /// total_matches, truncated and the full rows payload.
    fn semantic_prefix(line: &str) -> &str {
        line.split(",\"profile\":").next().unwrap()
    }

    #[test]
    fn coordinator_answers_byte_identically_to_single_node() {
        let single = Server::bind(engine(&CORPUS), "127.0.0.1:0", 1).expect("single binds");
        let (workers, coordinator) = spawn_cluster(Mode::Partial, false);
        let mut ref_client = Client::connect(&single.local_addr().to_string()).unwrap();
        let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
        let mix: Vec<(Option<QueryOpts>, &str)> = vec![
            (None, "legacy shape"),
            (Some(QueryOpts::default()), "default opts"),
            (
                Some(QueryOpts {
                    limit: Some(2),
                    offset: Some(1),
                    ..QueryOpts::default()
                }),
                "limit 2 offset 1",
            ),
            (
                Some(QueryOpts {
                    limit: Some(3),
                    order: Some(WireOrder::ScoreDesc),
                    ..QueryOpts::default()
                }),
                "score_desc limit 3",
            ),
            (
                Some(QueryOpts {
                    min_score: Some(0.3),
                    ..QueryOpts::default()
                }),
                "min_score 0.3",
            ),
        ];
        for query in [
            koko_lang::queries::EXAMPLE_2_1,
            koko_lang::queries::CHOCOLATE,
        ] {
            for (opts, label) in &mix {
                let expect = ref_client.query_as(query, true, *opts, None).unwrap();
                let got = client.query_as(query, true, *opts, None).unwrap();
                assert!(got.contains("\"ok\":true"), "{label}: {got}");
                assert_eq!(
                    semantic_prefix(&got),
                    semantic_prefix(&expect),
                    "{label}: cluster rows must be byte-identical"
                );
            }
        }
        // Streaming through the coordinator reassembles to the same rows.
        let streamed = client
            .query_stream(
                koko_lang::queries::CHOCOLATE,
                true,
                QueryOpts::default(),
                None,
            )
            .unwrap();
        let unstreamed = ref_client
            .query_with_opts(koko_lang::queries::CHOCOLATE, true, QueryOpts::default())
            .unwrap();
        assert_eq!(
            streamed.rows_json,
            response_rows(&unstreamed).unwrap(),
            "streamed rows must reassemble byte-identically"
        );
        drop(client);
        coordinator.shutdown();
        for w in workers {
            w.shutdown();
        }
        single.shutdown();
    }

    #[test]
    fn killing_a_worker_yields_a_flagged_partial_answer() {
        let (mut workers, coordinator) = spawn_cluster(Mode::Partial, false);
        workers.remove(1).shutdown(); // w1 (docs 2..4) is gone
        let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
        let line = client
            .query(koko_lang::queries::EXAMPLE_2_1, true)
            .expect("partial mode still answers");
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"partial\":true"), "{line}");
        assert!(
            line.contains("\"remote_shards\":["),
            "explain must carry per-worker entries: {line}"
        );
        assert!(
            line.contains("\"worker\":\"w1\"") && line.contains("\"error\":\"unavailable"),
            "w1's failure must be structured: {line}"
        );
        assert!(
            line.contains("\"worker\":\"w0\"") && line.contains("\"error\":null"),
            "w0 must be listed healthy: {line}"
        );
        // Only w0's range can contribute rows.
        assert!(line.contains("\"doc\":0"), "doc 0 survives: {line}");
        assert!(
            !line.contains("\"num_rows\":0"),
            "surviving rows are served: {line}"
        );
        drop(client);
        coordinator.shutdown();
        for w in workers {
            w.shutdown();
        }
    }

    #[test]
    fn strict_mode_fails_the_query_naming_the_worker() {
        let (mut workers, coordinator) = spawn_cluster(Mode::Strict, false);
        workers.remove(1).shutdown();
        let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
        let line = client.query(koko_lang::queries::CHOCOLATE, true).unwrap();
        assert!(line.contains("\"ok\":false"), "{line}");
        assert!(line.contains("strict mode"), "{line}");
        assert!(line.contains("w1"), "the failed worker is named: {line}");
        drop(client);
        coordinator.shutdown();
        for w in workers {
            w.shutdown();
        }
    }

    #[test]
    fn query_parse_errors_forward_verbatim_not_as_worker_failures() {
        let (workers, coordinator) = spawn_cluster(Mode::Partial, false);
        let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
        let line = client.query("extract nonsense (((", true).unwrap();
        assert!(line.contains("\"ok\":false"), "{line}");
        assert!(
            !line.contains("partial"),
            "a deterministic refusal is not a partial failure: {line}"
        );
        drop(client);
        coordinator.shutdown();
        for w in workers {
            w.shutdown();
        }
    }

    #[test]
    fn add_routes_to_the_tail_worker_and_publishes_a_new_epoch() {
        let (workers, coordinator) = spawn_cluster(Mode::Partial, true);
        let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
        assert_eq!(coordinator.epoch(), 0);
        let ack = client.add(&[CORPUS[4].to_string()]).unwrap();
        assert!(ack.contains("\"ok\":true"), "{ack}");
        assert!(ack.contains("\"added\":1"), "{ack}");
        assert!(ack.contains("\"documents\":9"), "{ack}");
        assert!(ack.contains("\"epoch\":1"), "{ack}");
        assert!(ack.contains("\"worker\":\"w1\""), "{ack}");
        assert_eq!(coordinator.epoch(), 1);
        assert_eq!(coordinator.shard_map().workers[1].docs, 5);
        // The new document (a copy of doc 4, which answers CHOCOLATE) is
        // queryable at its global id: tail base 4 + local id 4 = 8.
        // Bypass the cache: the result set changed.
        let line = client.query(koko_lang::queries::CHOCOLATE, false).unwrap();
        assert!(line.contains("\"doc\":8"), "{line}");
        // Compact broadcasts and bumps the epoch again.
        let ack = client.compact().unwrap();
        assert!(ack.contains("\"ok\":true"), "{ack}");
        assert!(ack.contains("\"epoch\":2"), "{ack}");
        assert_eq!(coordinator.epoch(), 2);
        drop(client);
        coordinator.shutdown();
        for w in workers {
            w.shutdown();
        }
    }

    #[test]
    fn stats_reports_the_cluster_topology() {
        let (workers, coordinator) = spawn_cluster(Mode::Partial, false);
        let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
        let line = client.stats().unwrap();
        assert!(line.contains("\"cluster\":true"), "{line}");
        assert!(line.contains("\"workers\":2"), "{line}");
        assert!(line.contains("\"documents\":8"), "{line}");
        assert!(line.contains("\"name\":\"w0\""), "{line}");
        drop(client);
        coordinator.shutdown();
        for w in workers {
            w.shutdown();
        }
    }
}
