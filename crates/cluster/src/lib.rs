//! `koko-cluster` — the multi-node layer over the serving stack: one
//! coordinator process owns the shard map and fans each query out to
//! worker `koko serve` processes, merging their replies into a response
//! that is **byte-identical** to what a single-node server holding the
//! whole corpus would have produced.
//!
//! The paper's scale story (Table 2) is a one-process curve; this crate
//! is the shard-per-node step beyond it. The design leans on invariants
//! the earlier layers already guarantee:
//!
//! * **Partitioning.** The corpus is split into contiguous document
//!   ranges, one per worker ([`ShardMap`]). Scoring is per-document
//!   evidence aggregation — no corpus-wide statistics — so a worker
//!   evaluating its sub-corpus produces exactly the subset of the
//!   full-corpus rows that live in its range.
//! * **Canonical order.** `DocOrder` is the lexicographic order of the
//!   *decimal document ids* (the engine's historical tuple order), so the
//!   coordinator cannot simply concatenate worker replies in range order:
//!   with ranges `[0..2)` and `[2..12)`, the global order interleaves
//!   (`0,1,10,11,…,2,…`). [`merge`] re-sorts row *groups* by the
//!   canonical key after remapping each worker's local document ids by
//!   its `doc_base` — a stable sort, so within-document extraction order
//!   survives. `ScoreDesc` re-sorts by (score desc, doc key, row), the
//!   same effective key `koko_core` documents.
//! * **Byte identity.** Worker rows are parsed with `koko_serve::json`
//!   (canonical escapes, shortest-round-trip floats) and re-serialized
//!   with `koko_serve::protocol::rows_json` — the exact writer the
//!   single-node server uses — so the merged `rows` payload is
//!   byte-for-byte what one server over the whole corpus emits. The
//!   workspace conformance suite asserts this across the opts mix.
//! * **Fan-out.** [`fanout::FanOut`] drives every worker connection from
//!   one `koko-net` reactor thread: connections are pooled and
//!   pipelined (the protocol answers in request order per connection, so
//!   replies match by FIFO position), deadlines propagate as per-worker
//!   budgets, and transient faults retry with jittered backoff against
//!   the worker's replica list. A timed-out connection is *poisoned* —
//!   its FIFO is ambiguous — so it is closed and rebuilt rather than
//!   reused.
//! * **Partial failure.** Worker timeouts/disconnects surface as
//!   structured entries in `Explain::remote_shards`. In
//!   [`Mode::Strict`] any failure fails the query; in [`Mode::Partial`]
//!   the surviving shards are returned with `"partial":true` so the
//!   caller knows the row set is a lower bound. Never a panic, a hang
//!   past the deadline, or silently wrong rows.
//! * **Writes.** `add`/`compact` go through the coordinator, which
//!   sequences them under a writer lock, forwards `add` to the tail
//!   worker (whose v4 append-on-add persistence seals the delta shards),
//!   broadcasts `compact`, and publishes the new epoch with a two-phase
//!   pointer swap: phase 1 mutates the worker, phase 2 atomically swaps
//!   the coordinator's `Arc<ShardMap>`. Queries pin the `Arc` at entry,
//!   so no reader ever observes a torn generation.
//!
//! See `docs/CLUSTER.md` for the topology, the shard-map format, the
//! epoch publish protocol, and the partial-failure contract.

#![deny(missing_docs)]

pub mod coordinator;
pub mod fanout;
pub mod map;
pub mod merge;

pub use coordinator::{Coordinator, CoordinatorConfig};
pub use fanout::{FanOut, FanOutConfig, WorkerError, WorkerReply};
pub use map::{Mode, ShardMap, WorkerEntry};
