//! Parsing worker replies and merging them into the canonical global
//! result — the byte-identity core of the cluster.
//!
//! A worker serves documents `[doc_base, doc_base + docs)` renumbered
//! locally from 0, so its reply rows carry *local* document ids. This
//! module parses each reply with `koko_serve::json` (canonical escapes,
//! shortest-round-trip floats — parse→re-serialize is the identity on
//! everything the wire writer emits), remaps `doc += doc_base`, and
//! merges the worker sequences under the engine's documented ordering
//! contract:
//!
//! * `DocOrder` is the **lexicographic order of decimal document ids**
//!   (`0,1,10,11,…,2,…`), so worker replies cannot be concatenated in
//!   range order — the merge stable-sorts rows by the decimal key of the
//!   remapped id. Stability preserves within-document extraction order
//!   (all rows of one document come from exactly one worker, already in
//!   canonical order).
//! * `ScoreDesc` stable-sorts by (score desc, doc key): ties keep their
//!   `DocOrder` position, matching the engine's effective key
//!   (score desc, doc, row).
//!
//! Workers are asked for `offset + limit` rows at offset 0; the global
//! window is cut *after* the merge. A row in the global top
//! `offset + limit` is necessarily in its own worker's top
//! `offset + limit` (restricting a sequence to a subset preserves order),
//! so no row the window needs is ever missing from the fan-in.

use koko_core::{OutValue, Profile, Row, ShardExplain};
use koko_serve::json::{self, Json};
use std::time::Duration;

/// One worker's parsed reply.
#[derive(Debug, Default)]
pub struct WorkerOutput {
    /// Rows with documents remapped to global ids.
    pub rows: Vec<Row>,
    /// The worker's `total_matches` (or `num_rows` on legacy replies).
    pub total_matches: usize,
    /// The worker's `truncated` flag.
    pub truncated: bool,
    /// The worker's per-stage profile (timers in µs on the wire).
    pub profile: Profile,
    /// Explain skip plans (when the request asked for explain).
    pub plans: Vec<String>,
    /// Explain per-shard counters (worker-local shard ids).
    pub shards: Vec<ShardExplain>,
    /// A structured worker-side refusal (`"ok":false`), e.g. a parse
    /// error — the same on every worker, forwarded verbatim.
    pub error: Option<String>,
}

fn num(obj: &Json, key: &str) -> usize {
    obj.get(key).and_then(Json::as_f64).unwrap_or(0.0) as usize
}

fn micros(obj: &Json, key: &str) -> Duration {
    Duration::from_micros(obj.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64)
}

/// Parse one worker response line, remapping document ids by `doc_base`
/// and sentence ids by `sid_base` (both are corpus-global in single-node
/// output; workers number them locally from 0). Structured errors name
/// what was malformed — a worker emitting unparseable JSON is treated
/// like a disconnect by the coordinator.
pub fn parse_worker_response(
    line: &str,
    doc_base: u32,
    sid_base: u32,
) -> Result<WorkerOutput, String> {
    let root = json::parse(line).map_err(|e| format!("unparseable worker response: {e:?}"))?;
    let ok = root.get("ok").and_then(Json::as_bool).unwrap_or(false);
    if !ok {
        let error = root
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown worker error")
            .to_string();
        return Ok(WorkerOutput {
            error: Some(error),
            ..WorkerOutput::default()
        });
    }
    let mut out = WorkerOutput {
        total_matches: num(&root, "total_matches").max(num(&root, "num_rows")),
        truncated: root
            .get("truncated")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        ..WorkerOutput::default()
    };
    if let Some(Json::Arr(rows)) = root.get("rows") {
        out.rows.reserve(rows.len());
        for r in rows {
            let doc = r
                .get("doc")
                .and_then(Json::as_f64)
                .ok_or("row missing \"doc\"")? as u32;
            let score = r
                .get("score")
                .and_then(Json::as_f64)
                .ok_or("row missing \"score\"")?;
            let mut values = Vec::new();
            if let Some(Json::Arr(vals)) = r.get("values") {
                for v in vals {
                    values.push(OutValue {
                        name: v
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or("value missing \"name\"")?
                            .to_string(),
                        text: v
                            .get("text")
                            .and_then(Json::as_str)
                            .ok_or("value missing \"text\"")?
                            .to_string(),
                        sid: num(v, "sid") as u32 + sid_base,
                        start: num(v, "start") as u32,
                        end: num(v, "end") as u32,
                    });
                }
            }
            out.rows.push(Row {
                doc: doc + doc_base,
                score,
                values,
            });
        }
    }
    if let Some(profile) = root.get("profile") {
        out.profile = parse_profile(profile);
    }
    if let Some(explain) = root.get("explain") {
        if let Some(Json::Arr(plans)) = explain.get("plans") {
            for p in plans {
                if let Some(s) = p.as_str() {
                    out.plans.push(s.to_string());
                }
            }
        }
        if let Some(Json::Arr(shards)) = explain.get("shards") {
            for s in shards {
                out.shards.push(ShardExplain {
                    shard: num(s, "shard"),
                    is_delta: s.get("delta").and_then(Json::as_bool).unwrap_or(false),
                    lookups: num(s, "lookups"),
                    candidates: num(s, "candidates"),
                    docs: num(s, "docs"),
                    docs_processed: num(s, "docs_processed"),
                    tuples: num(s, "tuples"),
                    rows: num(s, "rows"),
                    min_score_pruned: num(s, "min_score_pruned"),
                    early_stopped: s
                        .get("early_stopped")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    score_bound: s.get("score_bound").and_then(Json::as_f64).unwrap_or(0.0),
                    heap_floor: s.get("heap_floor").and_then(Json::as_f64),
                    bound_skipped_docs: num(s, "bound_skipped_docs"),
                    block_bound_skipped_docs: num(s, "block_bound_skipped_docs"),
                    probes: num(s, "probes"),
                });
            }
        }
    }
    Ok(out)
}

/// Parse the wire profile (µs timers + counters) back into a [`Profile`]
/// so the coordinator can aggregate where time went across workers.
fn parse_profile(p: &Json) -> Profile {
    Profile {
        normalize: micros(p, "normalize_us"),
        dpli: micros(p, "dpli_us"),
        load_article: micros(p, "load_article_us"),
        gsp: micros(p, "gsp_us"),
        extract: micros(p, "extract_us"),
        satisfying: micros(p, "satisfying_us"),
        candidate_sentences: num(p, "candidates"),
        delta_candidates: num(p, "delta_candidates"),
        raw_tuples: num(p, "raw_tuples"),
        compiled_cache_hits: num(p, "compiled_cache_hits"),
        compiled_cache_misses: num(p, "compiled_cache_misses"),
        result_cache_hits: num(p, "result_cache_hits"),
        result_cache_misses: num(p, "result_cache_misses"),
        ..Profile::default()
    }
}

/// The canonical decimal-lexicographic document key — `DocOrder`'s sort
/// key, kept as the id's decimal string.
fn doc_key(doc: u32) -> String {
    doc.to_string()
}

/// Merge worker row sequences into the canonical global order.
/// `score_desc` selects the `ScoreDesc` contract; otherwise `DocOrder`.
/// Both sorts are stable, so within-document extraction order (and, for
/// `ScoreDesc`, the `DocOrder` position of ties) survives the merge.
pub fn merge_rows(per_worker: Vec<Vec<Row>>, score_desc: bool) -> Vec<Row> {
    let mut rows: Vec<(String, Row)> = per_worker
        .into_iter()
        .flatten()
        .map(|r| (doc_key(r.doc), r))
        .collect();
    if score_desc {
        // (score desc, doc key); stability keeps extraction order within
        // equal keys. Scores come off the wire bit-exact (shortest
        // round-trip floats), so the comparison matches single-node.
        rows.sort_by(|a, b| {
            b.1.score
                .partial_cmp(&a.1.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
    } else {
        rows.sort_by(|a, b| a.0.cmp(&b.0));
    }
    rows.into_iter().map(|(_, r)| r).collect()
}

/// Cut the global `offset`/`limit` window out of the merged sequence and
/// derive the `truncated` flag: matches beyond the window's end exist iff
/// the merged fan-in holds more rows than `offset + limit` or some worker
/// itself truncated.
pub fn window(
    merged: Vec<Row>,
    offset: usize,
    limit: Option<usize>,
    any_worker_truncated: bool,
) -> (Vec<Row>, bool) {
    let total_here = merged.len();
    let end = match limit {
        Some(k) => offset.saturating_add(k).min(total_here),
        None => total_here,
    };
    let start = offset.min(total_here);
    let rows: Vec<Row> = merged
        .into_iter()
        .skip(start)
        .take(end.saturating_sub(start))
        .collect();
    let truncated = any_worker_truncated || total_here > end;
    (rows, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_core::QueryOutput;
    use koko_serve::protocol::{ok_response, rows_json};

    fn row(doc: u32, score: f64, text: &str) -> Row {
        Row {
            doc,
            score,
            values: vec![OutValue {
                name: "e".into(),
                text: text.into(),
                sid: doc,
                start: 0,
                end: 2,
            }],
        }
    }

    #[test]
    fn doc_order_merge_interleaves_lexicographically() {
        // Worker 0 serves docs [0..2), worker 1 serves [2..12): global
        // lexicographic-decimal order interleaves the ranges
        // (0,1,10,11,2,3,…) — concatenation would be wrong.
        let w0 = vec![row(0, 1.0, "a"), row(1, 1.0, "b")];
        let w1: Vec<Row> = (0..10).map(|i| row(i + 2, 1.0, "c")).collect();
        let merged = merge_rows(vec![w0, w1], false);
        let order: Vec<u32> = merged.iter().map(|r| r.doc).collect();
        let mut expect: Vec<u32> = (0..12).collect();
        expect.sort_by_key(|d| d.to_string());
        assert_eq!(order, expect, "0,1,10,11,2,… not 0,1,2,3,…");
    }

    #[test]
    fn score_desc_ties_keep_doc_order_position() {
        let w0 = vec![row(1, 0.5, "a")];
        let w1 = vec![row(10, 0.9, "b"), row(11, 0.5, "c")];
        let merged = merge_rows(vec![w0, w1], true);
        let order: Vec<u32> = merged.iter().map(|r| r.doc).collect();
        // 0.9 first; the 0.5 tie breaks by doc key: "1" < "11".
        assert_eq!(order, vec![10, 1, 11]);
    }

    #[test]
    fn parse_remap_reserialize_is_byte_identical() {
        // Serialize locally-numbered rows the way a worker would, parse
        // with doc_base remap, re-serialize — the only difference must be
        // the document ids.
        let local = vec![row(0, 0.75, "chocolate \"ice\" cream"), row(1, 1.0, "päi")];
        let line = ok_response(
            7,
            &QueryOutput {
                rows: local.clone(),
                ..QueryOutput::default()
            },
        );
        let parsed = parse_worker_response(&line, 4, 4).unwrap();
        assert!(parsed.error.is_none());
        let mut expect = local;
        for r in &mut expect {
            r.doc += 4;
            for v in &mut r.values {
                v.sid += 4;
            }
        }
        assert_eq!(rows_json(&parsed.rows), rows_json(&expect));
        // And the remap really moved the ids.
        assert_eq!(parsed.rows[0].doc, 4);
        assert_eq!(parsed.rows[1].doc, 5);
    }

    #[test]
    fn worker_refusals_surface_as_structured_errors() {
        let parsed =
            parse_worker_response("{\"id\":1,\"ok\":false,\"error\":\"parse error\"}", 0, 0)
                .unwrap();
        assert_eq!(parsed.error.as_deref(), Some("parse error"));
        assert!(parse_worker_response("not json at all", 0, 0).is_err());
    }

    #[test]
    fn window_cuts_after_the_merge_and_flags_truncation() {
        let merged: Vec<Row> = (0..5).map(|i| row(i, 1.0, "x")).collect();
        let (rows, truncated) = window(merged.clone(), 1, Some(2), false);
        assert_eq!(rows.iter().map(|r| r.doc).collect::<Vec<_>>(), vec![1, 2]);
        assert!(truncated, "rows 3,4 lie beyond the window");
        let (rows, truncated) = window(merged.clone(), 0, None, false);
        assert_eq!(rows.len(), 5);
        assert!(!truncated);
        let (_, truncated) = window(merged, 0, Some(10), true);
        assert!(truncated, "a truncated worker keeps the flag sticky");
    }
}
