//! The coordinator's worker pool: every worker connection driven by one
//! `koko-net` reactor thread — pooled, pipelined, deadline-aware, with
//! bounded retry + jittered backoff across each worker's replica list.
//!
//! # Why FIFO matching is sound
//!
//! The NDJSON protocol answers one response line per request line, *in
//! request order per connection*, and the coordinator never streams from
//! workers — so replies match outstanding requests by queue position
//! alone, no request-id bookkeeping on the hot path. The moment that
//! invariant becomes doubtful (a per-worker deadline expires with
//! requests in flight) the connection is *poisoned*: every outstanding
//! request on it is failed or retried on a fresh connection, and the
//! socket is closed rather than reused.
//!
//! # Failure taxonomy
//!
//! * [`WorkerError::Timeout`] — the per-worker budget elapsed before the
//!   reply arrived.
//! * [`WorkerError::Disconnect`] — the connection died mid-flight and the
//!   retry budget (or the job's idempotency) did not allow a resend.
//! * [`WorkerError::Unavailable`] — no endpoint (primary or replica)
//!   accepted a connection within the retry budget.
//!
//! Queries are idempotent and resend freely; writes (`add`/`compact`)
//! are submitted non-retryable — a resent `add` would double-ingest —
//! so they fail fast and the coordinator surfaces the ambiguity.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use koko_net::{Event, Interest, Poller, Waker};

/// How one worker call failed (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// The per-worker deadline elapsed.
    Timeout,
    /// The connection died mid-flight (reason attached).
    Disconnect(String),
    /// No endpoint accepted a connection within the retry budget.
    Unavailable(String),
}

impl WorkerError {
    /// Short wire spelling for explain output (`"timeout"`,
    /// `"disconnect: …"`, `"unavailable: …"`).
    pub fn wire(&self) -> String {
        match self {
            WorkerError::Timeout => "timeout".to_string(),
            WorkerError::Disconnect(r) => format!("disconnect: {r}"),
            WorkerError::Unavailable(r) => format!("unavailable: {r}"),
        }
    }
}

/// One worker's answer (or structured failure) to a fanned-out request.
#[derive(Debug)]
pub struct WorkerReply {
    /// Index of the worker in the pool (= shard-map order).
    pub worker: usize,
    /// The endpoint the final attempt targeted.
    pub addr: String,
    /// The raw response line, or the structured failure.
    pub line: Result<String, WorkerError>,
    /// Submit-to-reply wall clock as seen by the coordinator.
    pub rtt: Duration,
    /// Retries spent (0 = the first attempt answered).
    pub retries: usize,
}

/// Tuning for the pool; the defaults suit localhost topologies and the
/// test suite. All sleeps are jittered by a deterministic LCG.
#[derive(Debug, Clone, Copy)]
pub struct FanOutConfig {
    /// Cap on one blocking connect attempt.
    pub connect_timeout: Duration,
    /// Per-request retry budget (resends after disconnects, reconnect
    /// attempts while unreachable). `0` = fail on the first fault.
    pub max_retries: usize,
    /// First backoff before a reconnect; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff.
    pub backoff_cap: Duration,
    /// Jitter seed (varied per worker internally).
    pub seed: u64,
}

impl Default for FanOutConfig {
    fn default() -> FanOutConfig {
        FanOutConfig {
            connect_timeout: Duration::from_millis(1000),
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            seed: 0xC0FF_EE00_D15C_0B41,
        }
    }
}

/// A request in flight (or queued for resend) on one worker connection.
struct Pending {
    line: String,
    reply: Sender<WorkerReply>,
    deadline: Instant,
    enqueued: Instant,
    retries: usize,
    retryable: bool,
}

struct Job {
    worker: usize,
    line: String,
    deadline: Instant,
    reply: Sender<WorkerReply>,
    retryable: bool,
}

/// One worker's connection state inside the reactor.
struct Conn {
    endpoints: Vec<String>,
    endpoint_idx: usize,
    stream: Option<TcpStream>,
    outbuf: Vec<u8>,
    out_pos: usize,
    inbuf: Vec<u8>,
    pending: VecDeque<Pending>,
    consecutive_failures: u32,
    next_attempt_at: Instant,
    seed: u64,
}

impl Conn {
    fn current_addr(&self) -> &str {
        &self.endpoints[self.endpoint_idx % self.endpoints.len()]
    }

    fn backoff(&mut self, config: &FanOutConfig) -> Duration {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = ((self.seed >> 33) & 0x7FFF_FFFF) as f64 / (1u64 << 31) as f64;
        let exp = config
            .backoff_base
            .saturating_mul(1u32 << self.consecutive_failures.min(16))
            .min(config.backoff_cap);
        exp.mul_f64(0.5 + 0.5 * unit)
    }
}

/// The pooled, pipelined worker fan-out (see the [module docs](self)).
pub struct FanOut {
    submit: Sender<Job>,
    waker: Arc<Waker>,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl FanOut {
    /// Spin up the reactor over one connection slot per worker;
    /// `endpoints[i]` is worker *i*'s address list (primary first, then
    /// replicas). Connections are opened lazily on first use.
    pub fn new(endpoints: Vec<Vec<String>>, config: FanOutConfig) -> std::io::Result<FanOut> {
        let waker = Arc::new(Waker::new()?);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (submit, jobs) = mpsc::channel::<Job>();
        let workers = endpoints.len();
        let reactor = Reactor::new(endpoints, config, Arc::clone(&waker))?;
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("koko-fanout".into())
            .spawn(move || reactor.run(jobs, flag))?;
        Ok(FanOut {
            submit,
            waker,
            shutdown,
            handle: Some(handle),
            workers,
        })
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queue one request line (no trailing newline) for `worker`; the
    /// reply (or structured failure) arrives on `reply`. `retryable`
    /// gates resends after disconnects — `false` for writes.
    pub fn submit(
        &self,
        worker: usize,
        line: String,
        deadline: Instant,
        reply: Sender<WorkerReply>,
        retryable: bool,
    ) -> std::io::Result<()> {
        if worker >= self.workers {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("worker index {worker} out of range ({})", self.workers),
            ));
        }
        self.submit
            .send(Job {
                worker,
                line,
                deadline,
                reply,
                retryable,
            })
            .map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::BrokenPipe, "fan-out reactor gone")
            })?;
        self.waker.wake();
        Ok(())
    }

    /// Fan one request per worker (`None` skips that worker) with a
    /// shared wall-clock `budget`, and gather every reply. The result is
    /// indexed by worker; skipped workers yield `None`. Never blocks past
    /// `budget` plus a small harvesting slack.
    pub fn call_all(
        &self,
        lines: Vec<Option<String>>,
        budget: Duration,
        retryable: bool,
    ) -> Vec<Option<WorkerReply>> {
        let deadline = Instant::now() + budget;
        let (tx, rx) = mpsc::channel();
        let mut out: Vec<Option<WorkerReply>> = Vec::new();
        out.resize_with(lines.len(), || None);
        let mut submitted = vec![false; out.len()];
        let mut expected = 0usize;
        for (i, line) in lines.into_iter().enumerate() {
            if let Some(line) = line {
                match self.submit(i, line, deadline, tx.clone(), retryable) {
                    Ok(()) => {
                        submitted[i] = true;
                        expected += 1;
                    }
                    Err(e) => {
                        out[i] = Some(WorkerReply {
                            worker: i,
                            addr: String::new(),
                            line: Err(WorkerError::Unavailable(e.to_string())),
                            rtt: Duration::ZERO,
                            retries: 0,
                        });
                    }
                }
            }
        }
        drop(tx);
        // The reactor itself enforces `deadline`; the extra slack only
        // covers reply-channel scheduling, so a wedged worker can never
        // hold the caller past the budget.
        let hard_stop = deadline + Duration::from_millis(500);
        while expected > 0 {
            let now = Instant::now();
            let wait = hard_stop.saturating_duration_since(now);
            match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                Ok(reply) => {
                    let slot = reply.worker;
                    out[slot] = Some(reply);
                    expected -= 1;
                }
                Err(_) if now >= hard_stop => break,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Anything still missing is a reactor-level failure: surface it
        // structurally rather than returning a hole.
        for (i, slot) in out.iter_mut().enumerate() {
            if slot.is_none() && submitted[i] {
                *slot = Some(WorkerReply {
                    worker: i,
                    addr: String::new(),
                    line: Err(WorkerError::Timeout),
                    rtt: budget,
                    retries: 0,
                });
            }
        }
        out
    }
}

impl Drop for FanOut {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

const WAKER_TOKEN: usize = 0;

struct Reactor {
    poller: Poller,
    waker: Arc<Waker>,
    conns: Vec<Conn>,
    config: FanOutConfig,
}

impl Reactor {
    fn new(
        endpoints: Vec<Vec<String>>,
        config: FanOutConfig,
        waker: Arc<Waker>,
    ) -> std::io::Result<Reactor> {
        let mut poller = Poller::new()?;
        poller.register(waker.poll_fd(), WAKER_TOKEN, Interest::READ)?;
        let now = Instant::now();
        let conns = endpoints
            .into_iter()
            .enumerate()
            .map(|(i, eps)| Conn {
                endpoints: if eps.is_empty() {
                    vec![String::new()]
                } else {
                    eps
                },
                endpoint_idx: 0,
                stream: None,
                outbuf: Vec::new(),
                out_pos: 0,
                inbuf: Vec::new(),
                pending: VecDeque::new(),
                consecutive_failures: 0,
                next_attempt_at: now,
                seed: config.seed.wrapping_add(0x9E37_79B9 * (i as u64 + 1)),
            })
            .collect();
        Ok(Reactor {
            poller,
            waker,
            conns,
            config,
        })
    }

    fn run(mut self, jobs: Receiver<Job>, shutdown: Arc<AtomicBool>) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if shutdown.load(Ordering::SeqCst) {
                self.fail_everything("fan-out shutting down");
                return;
            }
            self.waker.drain();
            while let Ok(job) = jobs.try_recv() {
                self.enqueue(job);
            }
            let now = Instant::now();
            for i in 0..self.conns.len() {
                self.expire(i, now);
            }
            for i in 0..self.conns.len() {
                self.ensure_connected(i, now);
            }
            let timeout = self.poll_timeout(Instant::now());
            if self.poller.poll(&mut events, timeout).is_err() {
                // Poller failure is unrecoverable; fail structurally.
                self.fail_everything("fan-out poller failed");
                return;
            }
            let drained: Vec<Event> = std::mem::take(&mut events);
            for ev in drained {
                if ev.token == WAKER_TOKEN {
                    self.waker.drain();
                    continue;
                }
                let idx = ev.token - 1;
                if idx >= self.conns.len() {
                    continue;
                }
                if ev.hangup {
                    self.disconnect(idx, "peer hung up");
                    continue;
                }
                if ev.readable {
                    self.do_read(idx);
                }
                if ev.writable {
                    self.do_write(idx);
                }
            }
        }
    }

    fn enqueue(&mut self, job: Job) {
        let now = Instant::now();
        let conn = &mut self.conns[job.worker];
        let pending = Pending {
            line: job.line,
            reply: job.reply,
            deadline: job.deadline,
            enqueued: now,
            retries: 0,
            retryable: job.retryable,
        };
        if let Some(stream) = &conn.stream {
            conn.outbuf.extend_from_slice(pending.line.as_bytes());
            conn.outbuf.push(b'\n');
            let fd = stream.as_raw_fd();
            let token = job.worker + 1;
            let _ = self.poller.modify(fd, token, Interest::BOTH);
        }
        conn.pending.push_back(pending);
    }

    /// Per-worker deadline sweep. An expired request *poisons* the
    /// connection (its FIFO is ambiguous): expired requests fail with
    /// [`WorkerError::Timeout`], unexpired retryable ones are queued for
    /// resend on a fresh connection, and the socket is closed with the
    /// endpoint rotated onto the next replica.
    fn expire(&mut self, idx: usize, now: Instant) {
        if !self.conns[idx].pending.iter().any(|p| p.deadline <= now) {
            return;
        }
        let addr = self.conns[idx].current_addr().to_string();
        self.close(idx);
        let conn = &mut self.conns[idx];
        let mut kept = VecDeque::new();
        for mut p in std::mem::take(&mut conn.pending) {
            if p.deadline <= now {
                send_reply(&p, idx, &addr, Err(WorkerError::Timeout), now);
            } else if p.retryable && p.retries < self.config.max_retries {
                p.retries += 1;
                kept.push_back(p);
            } else {
                send_reply(
                    &p,
                    idx,
                    &addr,
                    Err(WorkerError::Disconnect(
                        "connection poisoned by a timed-out peer".into(),
                    )),
                    now,
                );
            }
        }
        conn.pending = kept;
        conn.endpoint_idx += 1;
        conn.consecutive_failures += 1;
        let backoff = conn.backoff(&self.config);
        conn.next_attempt_at = now + backoff;
    }

    fn ensure_connected(&mut self, idx: usize, now: Instant) {
        let connect_timeout = self.config.connect_timeout;
        let conn = &mut self.conns[idx];
        if conn.stream.is_some() || conn.pending.is_empty() || now < conn.next_attempt_at {
            return;
        }
        let addr = conn.current_addr().to_string();
        let attempt = (|| -> std::io::Result<TcpStream> {
            let sockaddr = addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addr"))?;
            let stream = TcpStream::connect_timeout(&sockaddr, connect_timeout)?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            Ok(stream)
        })();
        match attempt {
            Ok(stream) => {
                let fd = stream.as_raw_fd();
                conn.consecutive_failures = 0;
                conn.inbuf.clear();
                conn.outbuf.clear();
                conn.out_pos = 0;
                // Resend every queued request, in order, on the fresh
                // connection — the FIFO starts clean.
                for p in &conn.pending {
                    conn.outbuf.extend_from_slice(p.line.as_bytes());
                    conn.outbuf.push(b'\n');
                }
                conn.stream = Some(stream);
                let _ = self.poller.register(fd, idx + 1, Interest::BOTH);
            }
            Err(e) => {
                conn.consecutive_failures += 1;
                conn.endpoint_idx += 1;
                let reason = format!("{addr}: {e}");
                let mut kept = VecDeque::new();
                for mut p in std::mem::take(&mut conn.pending) {
                    if p.retries < self.config.max_retries {
                        p.retries += 1;
                        kept.push_back(p);
                    } else {
                        send_reply(
                            &p,
                            idx,
                            &addr,
                            Err(WorkerError::Unavailable(reason.clone())),
                            now,
                        );
                    }
                }
                conn.pending = kept;
                let backoff = conn.backoff(&self.config);
                conn.next_attempt_at = now + backoff;
            }
        }
    }

    fn poll_timeout(&self, now: Instant) -> Option<Duration> {
        let mut nearest: Option<Instant> = None;
        let mut consider = |t: Instant| match nearest {
            Some(n) if n <= t => {}
            _ => nearest = Some(t),
        };
        for conn in &self.conns {
            for p in &conn.pending {
                consider(p.deadline);
            }
            if conn.stream.is_none() && !conn.pending.is_empty() {
                consider(conn.next_attempt_at);
            }
        }
        nearest.map(|t| t.saturating_duration_since(now))
    }

    fn do_read(&mut self, idx: usize) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(stream) = self.conns[idx].stream.as_mut() else {
                return;
            };
            match stream.read(&mut buf) {
                Ok(0) => {
                    self.disconnect(idx, "peer closed the connection");
                    return;
                }
                Ok(n) => {
                    self.conns[idx].inbuf.extend_from_slice(&buf[..n]);
                    if !self.deliver_lines(idx) {
                        return; // protocol violation → disconnected
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.disconnect(idx, &format!("read failed: {e}"));
                    return;
                }
            }
        }
    }

    /// Split complete lines out of the input buffer and match each to the
    /// oldest outstanding request (FIFO — see the module docs for why
    /// that is sound). Returns `false` after a protocol violation.
    fn deliver_lines(&mut self, idx: usize) -> bool {
        let now = Instant::now();
        loop {
            let conn = &mut self.conns[idx];
            let Some(nl) = conn.inbuf.iter().position(|&b| b == b'\n') else {
                return true;
            };
            let mut line_bytes: Vec<u8> = conn.inbuf.drain(..=nl).collect();
            line_bytes.pop(); // the newline
            if line_bytes.last() == Some(&b'\r') {
                line_bytes.pop();
            }
            let line = String::from_utf8_lossy(&line_bytes).into_owned();
            match conn.pending.pop_front() {
                Some(p) => {
                    let addr = conn.current_addr().to_string();
                    send_reply(&p, idx, &addr, Ok(line), now);
                }
                None => {
                    self.disconnect(idx, "unsolicited response line");
                    return false;
                }
            }
        }
    }

    fn do_write(&mut self, idx: usize) {
        loop {
            let conn = &mut self.conns[idx];
            if conn.out_pos >= conn.outbuf.len() {
                conn.outbuf.clear();
                conn.out_pos = 0;
                if let Some(stream) = conn.stream.as_ref() {
                    let fd = stream.as_raw_fd();
                    let _ = self.poller.modify(fd, idx + 1, Interest::READ);
                }
                return;
            }
            let Some(stream) = conn.stream.as_mut() else {
                return;
            };
            let pos = conn.out_pos;
            match stream.write(&conn.outbuf[pos..]) {
                Ok(0) => {
                    self.disconnect(idx, "write returned 0");
                    return;
                }
                Ok(n) => self.conns[idx].out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.disconnect(idx, &format!("write failed: {e}"));
                    return;
                }
            }
        }
    }

    fn close(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if let Some(stream) = conn.stream.take() {
            let _ = self.poller.deregister(stream.as_raw_fd());
        }
        conn.inbuf.clear();
        conn.outbuf.clear();
        conn.out_pos = 0;
    }

    /// Tear down a connection that died mid-flight: retryable requests
    /// within budget queue for resend, everything else fails with a
    /// structured [`WorkerError::Disconnect`].
    fn disconnect(&mut self, idx: usize, reason: &str) {
        let now = Instant::now();
        let addr = self.conns[idx].current_addr().to_string();
        self.close(idx);
        let max_retries = self.config.max_retries;
        let conn = &mut self.conns[idx];
        let mut kept = VecDeque::new();
        for mut p in std::mem::take(&mut conn.pending) {
            if p.retryable && p.retries < max_retries && p.deadline > now {
                p.retries += 1;
                kept.push_back(p);
            } else {
                send_reply(
                    &p,
                    idx,
                    &addr,
                    Err(WorkerError::Disconnect(reason.to_string())),
                    now,
                );
            }
        }
        conn.pending = kept;
        conn.endpoint_idx += 1;
        conn.consecutive_failures += 1;
        let backoff = conn.backoff(&self.config);
        conn.next_attempt_at = now + backoff;
    }

    fn fail_everything(&mut self, reason: &str) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            self.close(idx);
            let addr = self.conns[idx].current_addr().to_string();
            for p in std::mem::take(&mut self.conns[idx].pending) {
                send_reply(
                    &p,
                    idx,
                    &addr,
                    Err(WorkerError::Unavailable(reason.to_string())),
                    now,
                );
            }
        }
    }
}

fn send_reply(
    p: &Pending,
    worker: usize,
    addr: &str,
    line: Result<String, WorkerError>,
    now: Instant,
) {
    // A dropped receiver means the caller gave up (its own deadline
    // fired); nothing to do.
    let _ = p.reply.send(WorkerReply {
        worker,
        addr: addr.to_string(),
        line,
        rtt: now.saturating_duration_since(p.enqueued),
        retries: p.retries,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// An echo "worker": answers each line with `{"echo":<line>}`.
    fn echo_server() -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut w = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 {
                            return;
                        }
                        let trimmed = line.trim_end().to_string();
                        if trimmed == "STOP" {
                            return;
                        }
                        if w.write_all(format!("ok {trimmed}\n").as_bytes()).is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, handle)
    }

    fn fast_config() -> FanOutConfig {
        FanOutConfig {
            connect_timeout: Duration::from_millis(250),
            max_retries: 2,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
            seed: 42,
        }
    }

    #[test]
    fn pipelined_replies_match_requests_in_order() {
        let (addr, _h) = echo_server();
        let pool = FanOut::new(vec![vec![addr]], fast_config()).unwrap();
        let (tx, rx) = mpsc::channel();
        let deadline = Instant::now() + Duration::from_secs(2);
        for i in 0..32 {
            pool.submit(0, format!("req-{i}"), deadline, tx.clone(), true)
                .unwrap();
        }
        for i in 0..32 {
            let r = rx.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(r.line.as_deref().unwrap(), format!("ok req-{i}"));
            assert_eq!(r.retries, 0);
        }
    }

    #[test]
    fn dead_worker_times_out_within_budget_not_forever() {
        // Reserved-then-freed port: connects are refused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let pool = FanOut::new(vec![vec![addr]], fast_config()).unwrap();
        let t0 = Instant::now();
        let replies = pool.call_all(vec![Some("hello".into())], Duration::from_millis(300), true);
        let elapsed = t0.elapsed();
        let r = replies[0].as_ref().unwrap();
        match r.line.as_ref().unwrap_err() {
            WorkerError::Unavailable(_) | WorkerError::Timeout => {}
            other => panic!("expected unavailable/timeout, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(2),
            "failure must be bounded, took {elapsed:?}"
        );
    }

    #[test]
    fn replica_answers_when_the_primary_is_down() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let (replica, _h) = echo_server();
        let pool = FanOut::new(vec![vec![dead, replica.clone()]], fast_config()).unwrap();
        let replies = pool.call_all(vec![Some("ping".into())], Duration::from_secs(2), true);
        let r = replies[0].as_ref().unwrap();
        assert_eq!(
            r.line.as_deref().unwrap(),
            "ok ping",
            "replica must answer after the primary refuses"
        );
        assert!(r.retries >= 1, "the primary failure must count as a retry");
        assert_eq!(r.addr, replica);
    }

    #[test]
    fn slow_worker_surfaces_a_structured_timeout() {
        // Accepts but never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let _keeper = std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming().take(4) {
                held.push(stream);
                if held.len() >= 4 {
                    break;
                }
            }
            std::thread::sleep(Duration::from_secs(3));
        });
        let pool = FanOut::new(vec![vec![addr]], fast_config()).unwrap();
        let t0 = Instant::now();
        let replies = pool.call_all(vec![Some("q".into())], Duration::from_millis(200), true);
        let r = replies[0].as_ref().unwrap();
        assert_eq!(r.line.as_ref().unwrap_err(), &WorkerError::Timeout);
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn non_retryable_jobs_fail_fast_on_disconnect() {
        // First connection is dropped immediately; a retryable job would
        // resend, a write must not.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let _h = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first);
            // Keep the listener alive so a (wrong) resend would succeed.
            std::thread::sleep(Duration::from_secs(2));
        });
        let pool = FanOut::new(vec![vec![addr]], fast_config()).unwrap();
        let replies = pool.call_all(vec![Some("add".into())], Duration::from_secs(1), false);
        let r = replies[0].as_ref().unwrap();
        assert!(
            matches!(r.line.as_ref().unwrap_err(), WorkerError::Disconnect(_)),
            "{:?}",
            r.line
        );
    }
}
